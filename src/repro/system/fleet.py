"""Vectorized fleet mission engine: batched closed-form rollouts.

:func:`~repro.system.mission.run_mission` simulates ONE (tier, scenario)
pair per call through a time-stepped Python loop — fine for a single
mission, hopeless for the mission-space sweeps the paper's §2.4/§2.6
argument actually needs (tiers × scenarios × Monte Carlo perturbations).
This module evaluates a whole ``(n_rollouts,)`` population at once:

- **Pipeline latency** for every rollout is priced in ONE
  :func:`repro.hw.batch.batch_estimate` call over the population's
  deduplicated platform × frame-profile block (rollouts whose platform
  is not SoA-priceable fall back to scalar ``estimate`` calls, mirroring
  the engine's :class:`~repro.errors.BatchFallback` discipline).
- **Mission outcomes** reduce to closed form: the waypoint chase is
  deterministic given ``safe_speed``, so the dt-quantized traversal is a
  pure function of the step index over the course's cumulative arc
  length.  The first step whose travel budget covers the course is the
  completion step; the first step whose energy draw exceeds the battery
  budget is the cutoff; the timeout bound is the first step at or past
  ``max_duration_s``.  No per-step loop at all — three integer step
  counts per rollout, computed as fused numpy.

**Equivalence contract**: every rollout's :class:`MissionResult` is
**exactly equal**, field for field, to ``run_mission`` on the same
(config, tier) — same dt-quantized time, energy, distance, and failure
reason.  Two ingredients make this hold at the bits:

1. the scalar loop's per-step quantities are multiplication forms
   (``steps * dt``, ``(steps + 1) * step_energy``, ...), never running
   sums, so the closed form evaluates the *same expressions* at the
   final step index; and
2. every vectorized expression mirrors the scalar association order
   with operations that numpy computes identically to Python floats
   (``+ - * /``, ``sqrt``, ``min``/``max``).  The one op where numpy's
   SIMD path rounds differently from CPython — ``x ** 1.5`` inside
   hover power — stays a per-rollout scalar call.

The contract is enforced by ``tests/system/test_fleet.py`` and the
hypothesis suite ``tests/props/test_property_fleet.py``.

On top of the engine, :class:`FleetStudy` runs seeded Monte Carlo
sweeps: per-trial perturbations of battery capacity, payload mass,
sensor rate, and workload scale, shared across tiers (paired draws, so
tier comparisons see the same weather), summarized per tier as success
rates and p50/p90/p99 mission-time / energy statistics.

**Memory architecture** (PR 7): the solve phase writes every column
through explicit ``out=`` ufunc calls into a
:class:`~repro.engine.arena.BatchArena` when one is supplied — same
operations, same association order, so the equivalence contract is
untouched while steady-state sweeps stop allocating.  ``chunk_size``
streams arbitrarily large populations through a fixed-size arena
window, and ``jobs > 1`` ships candidate/result columns through
:mod:`repro.engine.shm` shared-memory views instead of pickling row
objects (``transport="pickle"`` forces the legacy path).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.arena import BatchArena, Workspace
from repro.engine.shm import ColumnBlock, shm_available
from repro.errors import ConfigurationError
from repro.hw.batch import (
    PlatformSoA,
    ProfileSoA,
    batch_estimate,
    is_soa_priceable,
)
from repro.hw.platform import Platform
from repro.system.mission import (
    Course,
    MissionConfig,
    MissionResult,
    plan_course,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import get_alloc_meter
from repro.telemetry.tracer import get_tracer

__all__ = [
    "FleetPerturbation",
    "FleetResult",
    "FleetRollout",
    "FleetStudy",
    "FleetStudyResult",
    "TierStatistics",
    "course_key",
    "ensure_course",
    "run_fleet",
    "tier_rollouts",
]

#: ``(tier name, platform, mass_kg, power_w)`` — the ladder row shape
#: shared with :func:`~repro.system.mission.sweep_compute_tiers`.
Tier = Tuple[str, Platform, float, float]


# -- course sharing ----------------------------------------------------

def course_key(config: MissionConfig) -> Tuple:
    """Cache key for the planning inputs of a mission config.

    Perturbing battery/payload/sensor/workload leaves the planned course
    untouched; only the world, endpoints, inflation radius, and lap
    count matter.  The world participates by identity (worlds are
    arrays; hashing contents would cost more than planning saves).
    """
    return (
        id(config.world),
        tuple(np.asarray(config.start, dtype=float).tolist()),
        tuple(np.asarray(config.goal, dtype=float).tolist()),
        float(config.robot_radius_m),
        int(config.laps),
    )


def ensure_course(config: MissionConfig,
                  cache: Optional[Dict[Tuple, Tuple[object, Course]]] = None,
                  ) -> Course:
    """Plan the config's course, reusing ``cache`` across calls.

    The cache maps :func:`course_key` to ``(world, course)``; keeping
    the world object in the entry pins its ``id`` so a recycled id from
    a garbage-collected world can never alias a stale course.
    """
    if cache is None:
        return plan_course(config)
    key = course_key(config)
    entry = cache.get(key)
    if entry is not None and entry[0] is config.world:
        return entry[1]
    course = plan_course(config)
    cache[key] = (config.world, course)
    return course


# -- the rollout population -------------------------------------------

@dataclass(frozen=True)
class FleetRollout:
    """One (scenario, compute tier) pair in a fleet population.

    Attributes:
        name: Label carried through to statistics grouping (typically
            the tier name).
        config: Mission scenario (possibly a perturbed variant).
        platform: Compute platform model for the tier.
        compute_mass_kg: Installed module mass.
        compute_power_w: Installed module power draw.
    """

    name: str
    config: MissionConfig
    platform: Platform
    compute_mass_kg: float
    compute_power_w: float


def tier_rollouts(config: MissionConfig,
                  tiers: Sequence[Tier]) -> List[FleetRollout]:
    """One rollout per ladder tier — the fleet-engine equivalent of
    :func:`~repro.system.mission.sweep_compute_tiers`."""
    if not tiers:
        raise ConfigurationError("need at least one tier")
    return [FleetRollout(name=name, config=config, platform=platform,
                         compute_mass_kg=mass, compute_power_w=power)
            for name, platform, mass, power in tiers]


@dataclass(frozen=True)
class FleetResult:
    """A priced fleet population.

    Attributes:
        rollouts: The population, exactly as submitted.
        results: Per-rollout :class:`MissionResult`, in input order,
            each exactly equal to ``run_mission`` on that rollout.
        batch_priced: Rollouts whose pipeline latency came from the one
            SoA :func:`~repro.hw.batch.batch_estimate` pass.
        scalar_fallback: Rollouts priced through scalar ``estimate``
            (non-SoA-priceable platforms).
    """

    rollouts: Tuple[FleetRollout, ...]
    results: Tuple[MissionResult, ...]
    batch_priced: int
    scalar_fallback: int
    #: Exact bytes of numpy working set the engine allocated for this
    #: population (the rollout SoA columns + closed-form intermediates;
    #: see ``alloc_bytes_per_rollout``).  The instrument behind the
    #: ROADMAP's allocation-tax item: if bytes/rollout grows with
    #: population size, allocation effects are eating the speedup.
    alloc_bytes: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def alloc_bytes_per_rollout(self) -> float:
        """Engine working-set bytes per rollout (0 on empty fleets)."""
        if not self.results:
            return 0.0
        return self.alloc_bytes / len(self.results)


# -- closed-form step counts ------------------------------------------

def _first_count(unit: np.ndarray, target: np.ndarray,
                 strict: bool, ws: Optional[Workspace] = None,
                 name: str = "count") -> np.ndarray:
    """Smallest integer count ``n >= 0`` with ``n * unit >= target``
    (``>`` when ``strict``), elementwise, under float64 arithmetic.

    Counts are float64 (exact for every reachable step index) with
    ``inf`` where no finite count satisfies the bound.  The seed guess
    comes from a rounded division, then bounded fixup sweeps walk it
    onto the exact threshold of the *product* expression — the
    comparison the scalar loop actually evaluates — so the count is
    right even when ``target / unit`` rounds across an integer.

    Every step is an explicit ``out=`` ufunc (selects are masked
    :func:`numpy.copyto`, value-identical to ``np.where``) so the
    scratch buffers come from ``ws`` — an arena workspace on the hot
    path, fresh allocations otherwise — without changing a single
    operation or its association order.
    """
    unit = np.broadcast_to(np.asarray(unit, dtype=float),
                           np.broadcast(unit, target).shape)
    target = np.broadcast_to(np.asarray(target, dtype=float), unit.shape)
    if ws is None:
        ws = Workspace(None, "")
    shape = unit.shape

    ratio = ws.out(name + ".ratio", shape)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(target, unit, out=ratio)
    n = ws.out(name, shape)
    if strict:
        np.floor(ratio, out=n)
        np.add(n, 1.0, out=n)
    else:
        np.ceil(ratio, out=n)
    np.maximum(n, 0.0, out=n)
    # adjustable = isfinite(target) & isfinite(unit) & (unit > 0)
    #              & isfinite(n)  — evaluated before n's inf fill.
    adjustable = ws.out(name + ".adjustable", shape, np.bool_)
    mask = ws.out(name + ".mask", shape, np.bool_)
    np.isfinite(target, out=adjustable)
    np.isfinite(unit, out=mask)
    np.logical_and(adjustable, mask, out=adjustable)
    np.greater(unit, 0, out=mask)
    np.logical_and(adjustable, mask, out=adjustable)
    np.isfinite(n, out=mask)
    np.logical_and(adjustable, mask, out=adjustable)
    np.logical_not(adjustable, out=mask)
    np.copyto(n, np.inf, where=mask)

    step = ws.out(name + ".step", shape)
    product = ws.out(name + ".product", shape)
    satisfied = ws.out(name + ".satisfied", shape, np.bool_)
    compare = np.greater if strict else np.greater_equal

    # The seed is within a couple of steps of the true threshold; the
    # sweeps are bounded (never `while`) because inf entries would
    # otherwise walk forever (inf - 1 == inf).
    for _ in range(3):
        np.subtract(n, 1.0, out=step)  # down = n - 1
        with np.errstate(invalid="ignore"):
            np.multiply(step, unit, out=product)
        compare(product, target, out=satisfied)
        # n = where(adjustable & (down >= 0) & satisfied(down), down, n)
        np.greater_equal(step, 0.0, out=mask)
        np.logical_and(mask, satisfied, out=mask)
        np.logical_and(adjustable, mask, out=mask)
        np.copyto(n, step, where=mask)
    for _ in range(3):
        with np.errstate(invalid="ignore"):
            np.multiply(n, unit, out=product)
        compare(product, target, out=satisfied)
        # n = where(adjustable & ~satisfied(n), n + 1, n)
        np.logical_not(satisfied, out=satisfied)
        np.logical_and(adjustable, satisfied, out=mask)
        np.add(n, 1.0, out=step)
        np.copyto(n, step, where=mask)
    return n


# -- the engine --------------------------------------------------------

#: Result-column order shared by the emit step and the shared-memory
#: transport (both sides of a :class:`~repro.engine.shm.ColumnBlock`
#: must agree on the layout).
_RESULT_COLUMNS: Tuple[str, ...] = (
    "succeeded", "timed_out", "elapsed", "distance", "energy",
    "mean_speed", "safe_speed", "latency", "compute_power",
    "hover_power", "total_mass", "endurance",
)
_BOOL_COLUMNS = ("succeeded", "timed_out")


def _result_specs(n: int) -> List[Tuple[str, object, Tuple[int, ...]]]:
    """Shared-memory column layout for ``n`` rollout results."""
    return [(name, np.bool_ if name in _BOOL_COLUMNS else np.float64,
             (n,)) for name in _RESULT_COLUMNS]


def run_fleet(rollouts: Sequence[FleetRollout], *,
              metrics: Optional[MetricsRegistry] = None,
              course_cache: Optional[Dict] = None,
              arena: Optional[BatchArena] = None,
              chunk_size: Optional[int] = None) -> FleetResult:
    """Evaluate a whole rollout population in fused numpy.

    Args:
        rollouts: The population; rollouts may freely share worlds,
            platforms, and frame profiles (sharing is what makes the
            batch block small — platforms and profiles are deduplicated
            by identity before pricing).
        metrics: Optional registry receiving ``fleet.rollouts``,
            ``fleet.batch_hits``, ``fleet.batch_fallbacks``, and (when
            chunked) ``fleet.chunks`` / ``fleet.arena_occupancy_pct``.
        course_cache: Optional :func:`ensure_course` cache, shared
            across calls; a fresh private one is used by default (so
            rollouts sharing a world still plan only once per call).
        arena: Optional :class:`~repro.engine.arena.BatchArena` the
            solve phase writes its columns into — bit-identical to the
            allocating path; pass the same arena across calls to stop
            reallocating.  Result arrays inside the return value are
            plain Python objects either way; only the engine's interior
            columns live in the arena.
        chunk_size: Evaluate the population through a fixed-size arena
            window of at most this many rollouts per pass, bounding the
            peak working set to ``O(chunk_size)`` instead of ``O(n)``.
            Results are identical (rollouts are independent; chunking
            changes only where columns land).  A private arena and
            course cache are created if none were passed.

    Returns:
        A :class:`FleetResult` whose per-rollout results are exactly
        equal to :func:`~repro.system.mission.run_mission`.
    """
    rollouts = tuple(rollouts)
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1, got {chunk_size}")
    tracer = get_tracer()
    chunks = 0
    with tracer.wall_span("fleet.run", track="fleet") as span:
        if chunk_size is None or chunk_size >= len(rollouts):
            result = _run_fleet(rollouts, course_cache, arena)
        else:
            if arena is None:
                arena = BatchArena()
            if course_cache is None:
                course_cache = {}
            results: List[MissionResult] = []
            batch_priced = scalar_fallback = alloc_bytes = 0
            for lo in range(0, len(rollouts), chunk_size):
                part = _run_fleet(rollouts[lo:lo + chunk_size],
                                  course_cache, arena)
                results.extend(part.results)
                batch_priced += part.batch_priced
                scalar_fallback += part.scalar_fallback
                alloc_bytes += part.alloc_bytes
                chunks += 1
            result = FleetResult(
                rollouts=rollouts, results=tuple(results),
                batch_priced=batch_priced,
                scalar_fallback=scalar_fallback,
                alloc_bytes=alloc_bytes)
    if tracer.enabled and span.args is None:
        span.args = {"rollouts": len(rollouts),
                     "batch_priced": result.batch_priced,
                     "scalar_fallback": result.scalar_fallback,
                     "alloc_bytes": result.alloc_bytes}
        if chunks:
            span.args["chunks"] = chunks
    if metrics is not None:
        metrics.counter("fleet.rollouts").inc(len(rollouts))
        if result.batch_priced:
            metrics.counter("fleet.batch_hits").inc(result.batch_priced)
        if result.scalar_fallback:
            metrics.counter("fleet.batch_fallbacks").inc(
                result.scalar_fallback)
        if result.alloc_bytes:
            metrics.counter("fleet.alloc_bytes").inc(result.alloc_bytes)
        if chunks:
            metrics.counter("fleet.chunks").inc(chunks)
            metrics.counter("fleet.arena_occupancy_pct").inc(
                int(100 * arena.occupancy()))
    return result


def _run_fleet(rollouts: Tuple[FleetRollout, ...],
               course_cache: Optional[Dict],
               arena: Optional[BatchArena] = None) -> FleetResult:
    if not rollouts:
        return FleetResult(rollouts=(), results=(), batch_priced=0,
                           scalar_fallback=0)
    columns, batch_priced, scalar_fallback, alloc_bytes = _solve_fleet(
        rollouts, course_cache, arena)
    tracer = get_tracer()
    with tracer.profile_span("fleet.emit", track="fleet"):
        results = _emit_results(columns)
    return FleetResult(rollouts=rollouts, results=results,
                       batch_priced=batch_priced,
                       scalar_fallback=scalar_fallback,
                       alloc_bytes=alloc_bytes)


def _solve_fleet(rollouts: Tuple[FleetRollout, ...],
                 course_cache: Optional[Dict],
                 arena: Optional[BatchArena],
                 ) -> Tuple[Dict[str, np.ndarray], int, int, int]:
    """Plan, gather, price, and solve one population into columns.

    Returns ``(columns, batch_priced, scalar_fallback, alloc_bytes)``
    where ``columns`` maps each :data:`_RESULT_COLUMNS` name to its
    ``(n,)`` array.  With an arena the columns are **borrowed** views —
    valid until the next kernel call on the same arena — so callers
    must emit (or copy into shared memory) before re-entering.

    Every solve-phase ufunc writes through ``out=`` in the scalar
    association order; the arena changes where the bytes land, never
    their values (the module docstring's equivalence contract).
    """
    n = len(rollouts)
    ws = Workspace(arena, "fleet.")
    tracer = get_tracer()
    if course_cache is None:
        course_cache = {}
    with tracer.profile_span("fleet.plan", track="fleet"):
        courses = [ensure_course(r.config, course_cache)
                   for r in rollouts]

    # Per-rollout scalar inputs.  hover_power stays a scalar Python call
    # on purpose: numpy's SIMD `x ** 1.5` rounds differently from
    # CPython's pow on a few per mille of inputs, which would break the
    # bit-equality contract; everything downstream vectorizes exactly.
    with tracer.profile_span("fleet.gather", track="fleet"):
        period = ws.out("period", (n,))
        actuation = ws.out("actuation", (n,))
        sensing_range = ws.out("sensing_range", (n,))
        accel = ws.out("accel", (n,))
        max_speed = ws.out("max_speed", (n,))
        dt = ws.out("dt", (n,))
        max_duration = ws.out("max_duration", (n,))
        budget = ws.out("budget", (n,))
        length = ws.out("length", (n,))
        total_mass = ws.out("total_mass", (n,))
        hover_power = ws.out("hover_power", (n,))
        compute_power = ws.out("compute_power", (n,))
        for i, (rollout, course) in enumerate(zip(rollouts, courses)):
            config = rollout.config
            period[i] = 1.0 / config.sensor_rate_hz
            actuation[i] = config.actuation_latency_s
            sensing_range[i] = config.sensing_range_m
            accel[i] = config.uav.max_accel_m_s2
            max_speed[i] = config.uav.max_speed_m_s
            dt[i] = config.time_step_s
            max_duration[i] = config.max_duration_s
            budget[i] = config.battery.usable_energy_j
            length[i] = course.total_length_m
            mass = (config.uav.frame_mass_kg + config.battery.mass_kg
                    + rollout.compute_mass_kg)
            total_mass[i] = mass
            hover_power[i] = config.uav.hover_power_w(mass)
            compute_power[i] = rollout.compute_power_w

    # Frame-pipeline compute latency: one SoA pass over the population's
    # deduplicated (platform, profile) block; scalar estimates only for
    # platforms the kernel cannot reproduce.
    with tracer.profile_span("fleet.price", track="fleet"):
        compute_latency = ws.out("compute_latency", (n,))
        verdicts = [is_soa_priceable(rollout.platform)
                    for rollout in rollouts]
        priceable = [i for i in range(n) if verdicts[i]]
        fallback = [i for i in range(n) if not verdicts[i]]
        if priceable:
            platform_index: Dict[int, int] = {}
            profile_index: Dict[int, int] = {}
            platforms: List[Platform] = []
            profiles: List = []
            # Arena-backed gather indices: (row, col) into the priced
            # block plus the destination rollout index, so the scatter
            # below runs through reused buffers instead of allocating
            # fresh fancy-index arrays every chunk (the last PR 7
            # per-chunk allocation on this path).
            k = len(priceable)
            price_rows = ws.out("price_rows", (k,), np.intp)
            price_cols = ws.out("price_cols", (k,), np.intp)
            price_dest = ws.out("price_dest", (k,), np.intp)
            for j, i in enumerate(priceable):
                platform = rollouts[i].platform
                row = platform_index.get(id(platform))
                if row is None:
                    row = platform_index[id(platform)] = len(platforms)
                    platforms.append(platform)
                profile = rollouts[i].config.frame_profile
                col = profile_index.get(id(profile))
                if col is None:
                    col = profile_index[id(profile)] = len(profiles)
                    profiles.append(profile)
                price_rows[j] = row
                price_cols[j] = col
                price_dest[j] = i
            cost = batch_estimate(
                PlatformSoA.from_platforms(platforms),
                ProfileSoA.from_profiles(profiles),
                arena=arena)
            # Flat gather from the contiguous (rows, cols) block:
            # flat = row * n_profiles + col, taken through out= into a
            # reused buffer, then scattered to the rollout order.
            np.multiply(price_rows, len(profiles), out=price_rows)
            np.add(price_rows, price_cols, out=price_rows)
            price_latency = ws.out("price_latency", (k,))
            np.take(cost.latency_s.ravel(), price_rows,
                    out=price_latency)
            compute_latency[price_dest] = price_latency
        for i in fallback:
            compute_latency[i] = rollouts[i].platform.estimate(
                rollouts[i].config.frame_profile).latency_s

    # Pipeline latency and safe speed — broadcast forms of
    # pipeline_latency_s and UavPhysics.safe_speed_m_s, same
    # association order (see the module docstring's contract).
    with tracer.profile_span("fleet.solve", track="fleet"):
        # staleness = max(compute_latency - period, 0)
        staleness = ws.out("staleness", (n,))
        np.subtract(compute_latency, period, out=staleness)
        np.maximum(staleness, 0.0, out=staleness)
        # latency = 0.5*period + compute_latency + staleness + actuation
        latency = ws.out("latency", (n,))
        np.multiply(0.5, period, out=latency)
        np.add(latency, compute_latency, out=latency)
        np.add(latency, staleness, out=latency)
        np.add(latency, actuation, out=latency)
        # raw = accel * (sqrt(latency^2 + 2*sensing/accel) - latency)
        raw_speed = ws.out("raw_speed", (n,))
        scratch = ws.out("scratch", (n,))
        np.multiply(latency, latency, out=raw_speed)
        np.multiply(2.0, sensing_range, out=scratch)
        np.divide(scratch, accel, out=scratch)
        np.add(raw_speed, scratch, out=raw_speed)
        np.sqrt(raw_speed, out=raw_speed)
        np.subtract(raw_speed, latency, out=raw_speed)
        np.multiply(accel, raw_speed, out=raw_speed)
        safe_speed = ws.out("safe_speed", (n,))
        np.minimum(raw_speed, max_speed, out=safe_speed)

        total_power = ws.out("total_power", (n,))
        np.add(hover_power, compute_power, out=total_power)
        endurance = ws.out("endurance", (n,))
        np.divide(budget, total_power, out=endurance)
        step_travel = ws.out("step_travel", (n,))
        np.multiply(safe_speed, dt, out=step_travel)
        step_energy = ws.out("step_energy", (n,))
        np.multiply(total_power, dt, out=step_energy)

        # Closed-form step counts.  The scalar loop, per iteration at
        # step index `s`: exit on timeout when s*dt >= max_duration;
        # succeed when the course is consumed, i.e. when
        # s*step_travel >= length (and at least one step has run —
        # consumption happens inside iterations); break on battery when
        # (s+1)*step_energy > budget.  Check order fixes the tie
        # precedence: timeout, then success, then battery.
        n_timeout = _first_count(dt, max_duration, strict=False,
                                 ws=ws, name="n_timeout")
        n_complete = _first_count(step_travel, length, strict=False,
                                  ws=ws, name="n_complete")
        np.maximum(n_complete, 1.0, out=n_complete)
        n_battery = _first_count(step_energy, budget, strict=True,
                                 ws=ws, name="n_battery")
        np.subtract(n_battery, 1.0, out=n_battery)

        # steps = min(min(n_timeout, n_complete), n_battery)
        steps = ws.out("steps", (n,))
        np.minimum(n_timeout, n_complete, out=steps)
        np.minimum(steps, n_battery, out=steps)
        # timed_out = n_timeout <= min(n_complete, n_battery)
        np.minimum(n_complete, n_battery, out=scratch)
        timed_out = ws.out("timed_out", (n,), np.bool_)
        np.less_equal(n_timeout, scratch, out=timed_out)
        # succeeded = ~timed_out & (n_complete <= n_battery)
        mask = ws.out("mask", (n,), np.bool_)
        succeeded = ws.out("succeeded", (n,), np.bool_)
        np.less_equal(n_complete, n_battery, out=mask)
        np.logical_not(timed_out, out=succeeded)
        np.logical_and(succeeded, mask, out=succeeded)

        elapsed = ws.out("elapsed", (n,))
        np.multiply(steps, dt, out=elapsed)
        energy = ws.out("energy", (n,))
        np.multiply(steps, step_energy, out=energy)
        distance = ws.out("distance", (n,))
        np.multiply(steps, step_travel, out=distance)
        np.minimum(distance, length, out=distance)
        mean_speed = ws.out("mean_speed", (n,))
        mean_speed.fill(0.0)
        np.greater(elapsed, 0.0, out=mask)
        np.divide(distance, elapsed, out=mean_speed, where=mask)

    # Exact working-set accounting: the engine's named SoA columns for
    # this population (scratch/mask buffers and _first_count interiors
    # are excluded, exactly as the anonymous numpy temporaries they
    # replaced were).  One nbytes sum per call, published as
    # FleetResult.alloc_bytes and, when a measure_allocations() scope
    # is active, on the global meter.  View nbytes ignores arena
    # capacity, so the value is identical with or without an arena —
    # and between serial and sharded runs.
    soa_arrays = (
        period, actuation, sensing_range, accel, max_speed, dt,
        max_duration, budget, length, total_mass, hover_power,
        compute_power, compute_latency, staleness, latency, raw_speed,
        safe_speed, total_power, endurance, step_travel, step_energy,
        n_timeout, n_complete, n_battery, steps, timed_out, succeeded,
        elapsed, energy, distance, mean_speed,
    )
    alloc_bytes = sum(array.nbytes for array in soa_arrays)
    meter = get_alloc_meter()
    if meter.enabled:
        meter.add("system.fleet.run_fleet", *soa_arrays)

    columns = {
        "succeeded": succeeded, "timed_out": timed_out,
        "elapsed": elapsed, "distance": distance, "energy": energy,
        "mean_speed": mean_speed, "safe_speed": safe_speed,
        "latency": latency, "compute_power": compute_power,
        "hover_power": hover_power, "total_mass": total_mass,
        "endurance": endurance,
    }
    return columns, len(priceable), len(fallback), alloc_bytes


def _emit_results(columns: Dict[str, np.ndarray]
                  ) -> Tuple[MissionResult, ...]:
    """Materialize result columns as :class:`MissionResult` rows.

    Bulk-converts columns to Python scalars first (tolist is one C
    pass; 12 per-element float() calls per rollout are not).  Bool
    columns may arrive as float 0/1 from a shared-memory round trip;
    ``bool()`` restores the exact Python values either way.
    """
    rows = zip(*(columns[name].tolist() for name in _RESULT_COLUMNS))
    results = []
    for (ok, late, elapsed_i, distance_i, energy_i, mean_speed_i,
         safe_speed_i, latency_i, compute_power_i, hover_power_i,
         total_mass_i, endurance_i) in rows:
        results.append(MissionResult(
            success=ok,
            failure_reason="" if ok else
            ("timeout" if late else "battery"),
            mission_time_s=elapsed_i,
            distance_m=distance_i,
            energy_j=energy_i,
            mean_speed_m_s=mean_speed_i,
            safe_speed_m_s=safe_speed_i,
            pipeline_latency_s=latency_i,
            compute_power_w=compute_power_i,
            hover_power_w=hover_power_i,
            total_mass_kg=total_mass_i,
            endurance_s=endurance_i,
        ))
    return tuple(results)


def _run_fleet_chunk(task: Tuple[Sequence[FleetRollout], Optional[int]]
                     ) -> Tuple[Tuple[MissionResult, ...], int, int, int]:
    """Pickle-transport pool-worker entry point (module-level for
    picklability).  ``task`` is ``(rollouts, chunk_size)``."""
    rollouts, chunk_size = task
    result = run_fleet(rollouts, chunk_size=chunk_size)
    return (result.results, result.batch_priced,
            result.scalar_fallback, result.alloc_bytes)


def _run_fleet_shard_shm(
    task: Tuple[MissionConfig, Tuple[Tier, ...], int, int, str, str,
                int, int, Optional[int]],
) -> Tuple[int, int, int]:
    """Shared-memory pool-worker entry point.

    Receives only the *spec* of its shard — base config, tiers, a trial
    range, and two segment names — rebuilds its rollouts from the
    factor columns (bit-identical: the factor bytes are mapped, not
    re-encoded), solves with a private arena, and writes result columns
    straight into the parent's result segment at the shard's global row
    offsets.  No row objects cross the process boundary in either
    direction.
    """
    (config, tiers, trial_lo, trial_hi, factors_name, results_name,
     trials, n_tiers, chunk_size) = task
    factors_block = ColumnBlock.attach(
        factors_name, [("factors", np.float64, (trials, 4))])
    results_block = ColumnBlock.attach(
        results_name, _result_specs(trials * n_tiers))
    try:
        factors = factors_block.column("factors")
        shard = _perturbed_population(config, tiers, factors,
                                      trial_lo, trial_hi)
        del factors  # release the segment view before the finally close
        arena = BatchArena()
        course_cache: Dict = {}
        step = chunk_size if chunk_size else max(len(shard), 1)
        offset = trial_lo * n_tiers
        batch_priced = scalar_fallback = alloc_bytes = 0
        for lo in range(0, len(shard), step):
            chunk = tuple(shard[lo:lo + step])
            columns, priced, fell_back, chunk_bytes = _solve_fleet(
                chunk, course_cache, arena)
            hi = offset + len(chunk)
            for name in _RESULT_COLUMNS:
                results_block.column(name)[offset:hi] = columns[name]
            offset = hi
            batch_priced += priced
            scalar_fallback += fell_back
            alloc_bytes += chunk_bytes
        return batch_priced, scalar_fallback, alloc_bytes
    finally:
        factors_block.close()
        results_block.close()


# -- Monte Carlo layer -------------------------------------------------

def _perturbed_population(config: MissionConfig,
                          tiers: Sequence[Tier],
                          factors: np.ndarray,
                          trial_lo: int, trial_hi: int
                          ) -> List[FleetRollout]:
    """Rollouts for trials ``[trial_lo, trial_hi)``, trial-major.

    The single construction path for study populations — the parent's
    :meth:`FleetStudy.rollouts` and the shared-memory shard workers
    both call it, so a shard rebuilt from mapped factor bytes is
    bit-identical to the parent's slice of the full population.
    """
    population: List[FleetRollout] = []
    for trial in range(trial_lo, trial_hi):
        cap, mass, rate, scale = factors[trial]
        perturbed = replace(
            config,
            battery=replace(config.battery,
                            capacity_wh=config.battery.capacity_wh
                            * cap),
            sensor_rate_hz=config.sensor_rate_hz * rate,
            frame_profile=config.frame_profile.scaled(scale),
        )
        for name, platform, module_mass, power in tiers:
            population.append(FleetRollout(
                name=name,
                config=perturbed,
                platform=platform,
                compute_mass_kg=module_mass * mass,
                compute_power_w=power,
            ))
    return population

@dataclass(frozen=True)
class FleetPerturbation:
    """Relative half-widths of the per-trial uniform perturbations.

    Each trial draws one factor per axis from
    ``uniform(1 - width, 1 + width)``; a width of 0 pins that axis.

    Attributes:
        battery_capacity: Pack capacity spread (cell aging, cold packs).
        payload_mass: Compute-module mass spread (cabling, mounts).
        sensor_rate: Camera rate spread (exposure-driven frame drops).
        workload_scale: Per-frame compute spread (scene complexity).
    """

    battery_capacity: float = 0.10
    payload_mass: float = 0.10
    sensor_rate: float = 0.10
    workload_scale: float = 0.25

    def __post_init__(self) -> None:
        for name, value in (
                ("battery_capacity", self.battery_capacity),
                ("payload_mass", self.payload_mass),
                ("sensor_rate", self.sensor_rate),
                ("workload_scale", self.workload_scale)):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} width must be in [0, 1), got {value}")

    def widths(self) -> Tuple[float, float, float, float]:
        return (self.battery_capacity, self.payload_mass,
                self.sensor_rate, self.workload_scale)


@dataclass(frozen=True)
class TierStatistics:
    """Per-tier Monte Carlo summary (times/energies over ALL trials,
    failures included — a dead battery at t=400s is still 400s of
    airtime worth counting).

    Attributes:
        tier: Ladder tier name.
        trials: Trials aggregated.
        success_rate: Fraction of trials that completed the course.
        mission_time_p50_s, mission_time_p90_s, mission_time_p99_s:
            Mission-time percentiles.
        energy_p50_j, energy_p99_j: Energy-draw percentiles.
        failure_counts: ``reason -> count`` over failed trials.
    """

    tier: str
    trials: int
    success_rate: float
    mission_time_p50_s: float
    mission_time_p90_s: float
    mission_time_p99_s: float
    energy_p50_j: float
    energy_p99_j: float
    failure_counts: Dict[str, int]


@dataclass(frozen=True)
class FleetStudyResult:
    """Outcome of a :class:`FleetStudy` run."""

    statistics: Tuple[TierStatistics, ...]
    fleet: FleetResult
    trials: int
    seed: int

    @property
    def batch_priced(self) -> int:
        return self.fleet.batch_priced

    @property
    def scalar_fallback(self) -> int:
        return self.fleet.scalar_fallback

    def best_tier(self) -> TierStatistics:
        """Highest success rate, ties broken by lower median time."""
        return min(self.statistics,
                   key=lambda s: (-s.success_rate, s.mission_time_p50_s))

    def to_rows(self) -> List[Dict]:
        """JSON-friendly per-tier rows (CLI/report format)."""
        return [{
            "tier": s.tier,
            "trials": s.trials,
            "success_rate": round(s.success_rate, 4),
            "mission_time_p50_s": round(s.mission_time_p50_s, 2),
            "mission_time_p90_s": round(s.mission_time_p90_s, 2),
            "mission_time_p99_s": round(s.mission_time_p99_s, 2),
            "energy_p50_j": round(s.energy_p50_j, 1),
            "energy_p99_j": round(s.energy_p99_j, 1),
            "failures": dict(s.failure_counts),
        } for s in self.statistics]


@dataclass
class FleetStudy:
    """A seeded Monte Carlo mission sweep over a compute ladder.

    Every trial draws one perturbation vector (battery capacity,
    payload mass, sensor rate, workload scale) and applies it to EVERY
    tier — paired draws, so tier-vs-tier comparisons are made under
    identical conditions and the between-tier variance is purely the
    compute sizing, not the weather.

    Args:
        config: Baseline mission scenario (the planned course is shared
            by all trials: perturbations never touch the world).
        tiers: Compute ladder, ``(name, platform, mass_kg, power_w)``.
        trials: Monte Carlo trials per tier.
        seed: Perturbation RNG seed (same seed, same study).
        perturbation: Per-axis relative spreads.
    """

    config: MissionConfig
    tiers: Sequence[Tier]
    trials: int = 64
    seed: int = 0
    perturbation: FleetPerturbation = field(
        default_factory=FleetPerturbation)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigurationError("need at least one tier")
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}")

    def factors(self) -> np.ndarray:
        """The ``(trials, 4)`` perturbation factor matrix (pure
        function of ``seed``/``trials``/``perturbation``)."""
        widths = np.array(self.perturbation.widths())
        rng = np.random.default_rng(self.seed)
        return rng.uniform(1.0 - widths, 1.0 + widths,
                           size=(self.trials, 4))

    def rollouts(self) -> List[FleetRollout]:
        """The full population, trial-major: every tier flies every
        perturbed scenario."""
        return _perturbed_population(self.config, self.tiers,
                                     self.factors(), 0, self.trials)

    def run(self, *, jobs: int = 1,
            metrics: Optional[MetricsRegistry] = None,
            chunk_size: Optional[int] = None,
            transport: str = "auto") -> FleetStudyResult:
        """Evaluate the study population and summarize per tier.

        Args:
            jobs: Process-pool width.  ``jobs > 1`` shards the
                population; shards are independent, so results are
                identical to the serial run (each shard re-plans the
                shared course once — planning, not simulation, is the
                only duplicated work).
            metrics: Optional registry for the ``fleet.*`` counters.
            chunk_size: Stream the population (or each shard) through a
                fixed-size arena window of at most this many rollouts,
                bounding the peak working set; results are identical.
            transport: How ``jobs > 1`` ships data: ``"shm"`` maps
                candidate/result columns through shared memory
                (zero-copy, no row pickling), ``"pickle"`` ships row
                objects through the pool, ``"auto"`` (default) uses
                shared memory when the platform supports it.  Results
                are byte-identical across transports.
        """
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if transport not in ("auto", "shm", "pickle"):
            raise ConfigurationError(
                f"transport must be auto|shm|pickle, got {transport!r}")
        population = self.rollouts()
        if jobs == 1 or len(population) <= jobs:
            fleet = run_fleet(population, metrics=metrics,
                              chunk_size=chunk_size)
        else:
            use_shm = (transport == "shm"
                       or (transport == "auto" and shm_available()))
            if use_shm:
                fleet = self._run_parallel_shm(population, jobs,
                                               chunk_size)
            else:
                fleet = self._run_parallel_pickle(population, jobs,
                                                  chunk_size)
            if metrics is not None:
                metrics.counter("fleet.rollouts").inc(len(population))
                if fleet.batch_priced:
                    metrics.counter("fleet.batch_hits").inc(
                        fleet.batch_priced)
                if fleet.scalar_fallback:
                    metrics.counter("fleet.batch_fallbacks").inc(
                        fleet.scalar_fallback)
                if fleet.alloc_bytes:
                    metrics.counter("fleet.alloc_bytes").inc(
                        fleet.alloc_bytes)
        return FleetStudyResult(
            statistics=tuple(self._summarize(fleet)),
            fleet=fleet,
            trials=self.trials,
            seed=self.seed,
        )

    def _run_parallel_pickle(self, population: List[FleetRollout],
                             jobs: int, chunk_size: Optional[int]
                             ) -> FleetResult:
        """Row-object transport: interleaved shards through the pool.

        The legacy path (and the fallback where shared memory is
        unavailable): every rollout is pickled out, every MissionResult
        pickled back.  Bit-identical to serial and to the shm path.
        """
        # Pool workers run run_fleet in their own processes, where
        # no tracer is installed — span the fan-out from the parent
        # so --trace-out still sees the run.
        tracer = get_tracer()
        shards = [(population[i::jobs], chunk_size)
                  for i in range(jobs)]
        with tracer.wall_span("fleet.run", track="fleet") as span:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(_run_fleet_chunk, shards))
        results: List[Optional[MissionResult]] = [None] * len(
            population)
        batch_priced = 0
        scalar_fallback = 0
        alloc_bytes = 0
        for shard_index, (shard_results, hits, misses,
                          shard_alloc) in enumerate(outcomes):
            for offset, value in enumerate(shard_results):
                results[shard_index + offset * jobs] = value
            batch_priced += hits
            scalar_fallback += misses
            alloc_bytes += shard_alloc
        if tracer.enabled and span.args is None:
            span.args = {"rollouts": len(population), "jobs": jobs,
                         "transport": "pickle",
                         "batch_priced": batch_priced,
                         "scalar_fallback": scalar_fallback,
                         "alloc_bytes": alloc_bytes}
        return FleetResult(
            rollouts=tuple(population),
            results=tuple(results),  # type: ignore[arg-type]
            batch_priced=batch_priced,
            scalar_fallback=scalar_fallback,
            alloc_bytes=alloc_bytes)

    def _run_parallel_shm(self, population: List[FleetRollout],
                          jobs: int, chunk_size: Optional[int]
                          ) -> FleetResult:
        """Zero-copy transport: candidate and result columns through
        :class:`~repro.engine.shm.ColumnBlock` segments.

        Workers receive only their shard *spec* (config, tiers, trial
        range, segment names) and rebuild rollouts from the mapped
        factor columns — no row objects are pickled in either
        direction.  Shards are contiguous trial ranges; workers write
        result columns at absolute row offsets, so assembly is just
        mapping the segment back.  Bit-identical to serial (same factor
        bytes, same solve, same emit).
        """
        tracer = get_tracer()
        n = len(population)
        n_tiers = len(self.tiers)
        factors = self.factors()
        workers = min(jobs, self.trials)
        base, extra = divmod(self.trials, workers)
        bounds: List[Tuple[int, int]] = []
        lo = 0
        for w in range(workers):
            hi = lo + base + (1 if w < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        factors_block = ColumnBlock.create(
            [("factors", np.float64, (self.trials, 4))])
        results_block = ColumnBlock.create(_result_specs(n))
        try:
            np.copyto(factors_block.column("factors"), factors)
            tiers = tuple(self.tiers)
            tasks = [(self.config, tiers, t_lo, t_hi,
                      factors_block.name, results_block.name,
                      self.trials, n_tiers, chunk_size)
                     for t_lo, t_hi in bounds if t_hi > t_lo]
            with tracer.wall_span("fleet.run", track="fleet") as span:
                with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                    outcomes = list(pool.map(_run_fleet_shard_shm,
                                             tasks))
            batch_priced = sum(o[0] for o in outcomes)
            scalar_fallback = sum(o[1] for o in outcomes)
            alloc_bytes = sum(o[2] for o in outcomes)
            columns = {name: results_block.column(name)
                       for name in _RESULT_COLUMNS}
            results = _emit_results(columns)
            del columns  # release segment views before destroy()
            if tracer.enabled and span.args is None:
                span.args = {"rollouts": n, "jobs": jobs,
                             "transport": "shm",
                             "batch_priced": batch_priced,
                             "scalar_fallback": scalar_fallback,
                             "alloc_bytes": alloc_bytes}
            return FleetResult(
                rollouts=tuple(population),
                results=results,
                batch_priced=batch_priced,
                scalar_fallback=scalar_fallback,
                alloc_bytes=alloc_bytes)
        finally:
            factors_block.destroy()
            results_block.destroy()

    def _summarize(self, fleet: FleetResult) -> List[TierStatistics]:
        by_tier: Dict[str, List[MissionResult]] = {}
        for rollout, result in zip(fleet.rollouts, fleet.results):
            by_tier.setdefault(rollout.name, []).append(result)
        statistics = []
        for name, _platform, _mass, _power in self.tiers:
            results = by_tier.get(name, [])
            if not results:
                continue
            times = np.array([r.mission_time_s for r in results])
            energies = np.array([r.energy_j for r in results])
            successes = sum(1 for r in results if r.success)
            failures: Dict[str, int] = {}
            for r in results:
                if not r.success:
                    failures[r.failure_reason] = failures.get(
                        r.failure_reason, 0) + 1
            statistics.append(TierStatistics(
                tier=name,
                trials=len(results),
                success_rate=successes / len(results),
                mission_time_p50_s=float(np.percentile(times, 50)),
                mission_time_p90_s=float(np.percentile(times, 90)),
                mission_time_p99_s=float(np.percentile(times, 99)),
                energy_p50_j=float(np.percentile(energies, 50)),
                energy_p99_j=float(np.percentile(energies, 99)),
                failure_counts=failures,
            ))
        return statistics
