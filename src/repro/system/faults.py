"""Fault and degradation models: the real world pushes back (§2.6).

End-to-end evaluation must include "real-world effects like reliability
and robustness to noise".  Two first-order models:

- :class:`FaultSchedule` — timed sensor blackouts during which a
  vehicle must hold position (perception-denied hover), used by
  :func:`run_mission_with_faults`;
- :class:`ThermalModel` — sustained-power throttling: compute whose TDP
  exceeds the airframe's heat-rejection capacity runs at a derated
  clock, lengthening pipeline latency (the quiet failure mode of
  strapping a desktop GPU to a drone).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import ConfigurationError
from repro.hw.platform import Platform
from repro.system.mission import MissionConfig, MissionResult, run_mission


@dataclass(frozen=True)
class FaultSchedule:
    """Sensor blackout windows.

    Attributes:
        windows: ``(start_s, end_s)`` intervals of perception loss.
    """

    windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for start, end in self.windows:
            if end <= start or start < 0:
                raise ConfigurationError(
                    f"bad fault window ({start}, {end})"
                )

    def active(self, time_s: float) -> bool:
        return any(start <= time_s < end
                   for start, end in self.windows)

    def total_outage_s(self) -> float:
        return sum(end - start for start, end in self.windows)


def run_mission_with_faults(config: MissionConfig, platform: Platform,
                            compute_mass_kg: float,
                            compute_power_w: float,
                            faults: FaultSchedule) -> MissionResult:
    """Fly the mission with perception blackouts.

    During a blackout the vehicle hovers in place (no progress) but
    hover + compute power keep draining — so outage time comes straight
    out of the endurance margin.  Implemented by running the nominal
    mission and re-integrating its timeline with the outage inserted;
    the vehicle fails on battery if the margin was thinner than the
    outage.
    """
    nominal = run_mission(config, platform, compute_mass_kg,
                          compute_power_w)
    outage = faults.total_outage_s()
    if outage == 0.0:
        return nominal

    power = nominal.hover_power_w + nominal.compute_power_w
    budget = config.battery.usable_energy_j

    if not nominal.success:
        # Already failing; outage only makes the timeline worse.
        return replace(nominal,
                       mission_time_s=min(nominal.mission_time_s,
                                          budget / power))

    needed_moving_s = nominal.mission_time_s
    total_time = needed_moving_s + outage
    energy = power * total_time
    if energy <= budget and total_time <= config.max_duration_s:
        return replace(nominal,
                       mission_time_s=total_time,
                       energy_j=energy,
                       mean_speed_m_s=nominal.distance_m / total_time)
    # Battery dies partway: time flown = budget / power; moving time is
    # whatever remains after the (front-loaded, conservative) outage.
    time_flown = min(budget / power, config.max_duration_s)
    moving_s = max(0.0, time_flown - outage)
    distance = nominal.mean_speed_m_s * moving_s
    return replace(
        nominal,
        success=False,
        failure_reason="battery",
        mission_time_s=time_flown,
        distance_m=distance,
        energy_j=power * time_flown,
        mean_speed_m_s=distance / time_flown if time_flown > 0 else 0.0,
    )


@dataclass(frozen=True)
class ThermalModel:
    """Steady-state thermal throttling for airframe-mounted compute.

    Attributes:
        heat_rejection_w: Power the mounting can dissipate at full
            clock (airflow, heatsink mass).
        min_throttle: Floor on the clock derating factor.
    """

    heat_rejection_w: float = 30.0
    min_throttle: float = 0.3

    def __post_init__(self) -> None:
        if self.heat_rejection_w <= 0:
            raise ConfigurationError("heat_rejection_w must be > 0")
        if not 0.0 < self.min_throttle <= 1.0:
            raise ConfigurationError("min_throttle must be in (0, 1]")

    def throttle_factor(self, sustained_power_w: float) -> float:
        """Clock derating needed to hold dissipation at capacity.

        Dynamic power scales ~linearly with frequency at fixed voltage,
        so the steady-state factor is ``capacity / demand`` (clamped).
        """
        if sustained_power_w < 0:
            raise ConfigurationError("power must be >= 0")
        if sustained_power_w <= self.heat_rejection_w:
            return 1.0
        return max(self.min_throttle,
                   self.heat_rejection_w / sustained_power_w)

    def throttled_latency_s(self, latency_s: float,
                            sustained_power_w: float) -> float:
        """Latency after throttling (compute slows by the factor)."""
        if latency_s < 0:
            raise ConfigurationError("latency must be >= 0")
        return latency_s / self.throttle_factor(sustained_power_w)
