"""A minimal discrete-event simulation engine.

Deterministic: ties in time break by (priority, insertion order), so runs
are exactly reproducible — a property the test suite leans on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

Callback = Callable[["Simulator"], None]
Listener = Callable[["Simulator", "Event"], None]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback (ordered by time, then priority, then seq)."""

    time: float
    priority: int
    seq: int
    callback: Callback = field(compare=False)


class Simulator:
    """An event-driven simulator with a monotonic clock.

    Usage::

        sim = Simulator()
        sim.schedule(0.1, lambda s: print("at", s.now))
        sim.run(until=1.0)
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._listeners: List[Listener] = []

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callback,
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        return self.schedule_at(self._now + delay, callback,
                                priority=priority)

    def schedule_at(self, time: float, callback: Callback,
                    priority: int = 0) -> Event:
        """Schedule ``callback`` at an absolute time >= now."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        event = Event(time=time, priority=priority,
                      seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def add_listener(self, listener: Listener) -> None:
        """Register a dispatch callback invoked once per processed event
        (after the clock advances, before the event's own callback).

        The telemetry layer uses this to observe every dispatch without
        the engine importing it; with no listeners registered the hot
        path pays a single truthiness test per event.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._processed += 1
        if self._listeners:
            for listener in self._listeners:
                listener(self, event)
        event.callback(self)
        return True

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Run until the queue empties or the clock passes ``until``.

        Args:
            until: Stop once the next event would be later than this.
            max_events: Runaway guard.

        Raises:
            SimulationError: If ``max_events`` is exceeded.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                return
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; livelock?"
                )

    def pending(self) -> int:
        """Number of scheduled, unprocessed events."""
        return len(self._queue)
