"""UAV vehicle physics: mass, hover power, battery.

The physical couplings §2.4 is about live here: every gram of compute
raises hover power superlinearly (actuator-disk ``P ∝ m^1.5``), and every
watt of compute TDP drains the same battery the rotors use.  Calibrated to
small-quadrotor numbers (~1 kg, ~100 W hover).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

GRAVITY = 9.81
AIR_DENSITY = 1.225


@dataclass(frozen=True)
class BatteryModel:
    """A LiPo-class battery.

    Attributes:
        capacity_wh: Nameplate energy.
        mass_kg: Pack mass.
        usable_fraction: Depth-of-discharge limit (LiPo packs are not
            drained past ~80-90%).
    """

    capacity_wh: float = 50.0
    mass_kg: float = 0.35
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0 or self.mass_kg <= 0:
            raise ConfigurationError(
                "battery capacity and mass must be > 0"
            )
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError(
                "usable_fraction must be in (0, 1]"
            )

    @property
    def usable_energy_j(self) -> float:
        return self.capacity_wh * 3600.0 * self.usable_fraction

    @staticmethod
    def from_capacity(capacity_wh: float,
                      specific_energy_wh_per_kg: float = 150.0
                      ) -> "BatteryModel":
        """Size a pack by capacity at LiPo-class specific energy."""
        if capacity_wh <= 0 or specific_energy_wh_per_kg <= 0:
            raise ConfigurationError("capacity and density must be > 0")
        return BatteryModel(
            capacity_wh=capacity_wh,
            mass_kg=capacity_wh / specific_energy_wh_per_kg,
        )


@dataclass(frozen=True)
class UavPhysics:
    """A small multirotor airframe.

    Attributes:
        frame_mass_kg: Airframe + motors + avionics (no battery/compute).
        rotor_disk_area_m2: Total actuator disk area.
        figure_of_merit: Rotor+ESC efficiency (ideal power / real power).
        max_speed_m_s: Structural/controller speed limit.
        max_accel_m_s2: Braking deceleration available for stopping.
        avionics_power_w: Always-on base electronics power.
    """

    frame_mass_kg: float = 0.8
    rotor_disk_area_m2: float = 0.13
    figure_of_merit: float = 0.6
    max_speed_m_s: float = 15.0
    max_accel_m_s2: float = 5.0
    avionics_power_w: float = 3.0

    def __post_init__(self) -> None:
        if self.frame_mass_kg <= 0 or self.rotor_disk_area_m2 <= 0:
            raise ConfigurationError("mass and disk area must be > 0")
        if not 0.0 < self.figure_of_merit <= 1.0:
            raise ConfigurationError("figure_of_merit must be in (0, 1]")
        if self.max_speed_m_s <= 0 or self.max_accel_m_s2 <= 0:
            raise ConfigurationError("speed and accel limits must be > 0")

    def hover_power_w(self, total_mass_kg: float) -> float:
        """Momentum-theory hover power at the given all-up mass."""
        if total_mass_kg <= 0:
            raise ConfigurationError(
                f"total mass must be > 0, got {total_mass_kg}"
            )
        thrust = total_mass_kg * GRAVITY
        ideal = thrust ** 1.5 / math.sqrt(
            2.0 * AIR_DENSITY * self.rotor_disk_area_m2
        )
        return ideal / self.figure_of_merit + self.avionics_power_w

    def safe_speed_m_s(self, sensing_range_m: float,
                       response_latency_s: float) -> float:
        """Max speed at which the vehicle can stop inside its sensing
        horizon given its perception-to-action latency.

        The vehicle travels ``v * t_lat`` before reacting, then brakes
        over ``v^2 / (2 a)``; both must fit inside ``sensing_range``::

            v t + v^2 / 2a <= d   =>   v = a (sqrt(t^2 + 2 d / a) - t)

        This is the latency-to-velocity coupling at the heart of the
        §2.4 experiment: faster compute → shorter ``t`` → higher safe
        speed, with diminishing returns once braking dominates.
        """
        if sensing_range_m <= 0:
            raise ConfigurationError("sensing_range_m must be > 0")
        if response_latency_s < 0:
            raise ConfigurationError("response_latency_s must be >= 0")
        a = self.max_accel_m_s2
        t = response_latency_s
        v = a * (math.sqrt(t * t + 2.0 * sensing_range_m / a) - t)
        return min(v, self.max_speed_m_s)

    def flight_time_s(self, battery: BatteryModel,
                      compute_mass_kg: float,
                      compute_power_w: float) -> float:
        """Hover endurance with the given compute payload installed."""
        if compute_mass_kg < 0 or compute_power_w < 0:
            raise ConfigurationError(
                "compute mass and power must be >= 0"
            )
        total_mass = (self.frame_mass_kg + battery.mass_kg
                      + compute_mass_kg)
        power = self.hover_power_w(total_mass) + compute_power_w
        return battery.usable_energy_j / power
