"""I/O and data-marshalling cost model: the "AI tax" of §2.6.

Real pipelines spend time *between* kernels: serializing messages,
crossing middleware (ROS topics), DMA-ing into accelerators.  These costs
are invisible in kernel benchmarks and decisive end-to-end; this model
prices them so experiment E6 can show kernel speedups evaporating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IoModel:
    """Per-hop data movement cost.

    ``time = fixed_overhead_s + nbytes / bandwidth`` and
    ``energy = nbytes * energy_per_byte``.

    Attributes:
        name: Label (e.g. ``"ros2-dds"``, ``"shared-memory"``).
        fixed_overhead_s: Per-message cost (serialization, syscalls,
            publish/subscribe machinery).
        bandwidth: Payload bandwidth (B/s).
        energy_per_byte: Movement energy (J/B).
    """

    name: str = "direct"
    fixed_overhead_s: float = 0.0
    bandwidth: float = 10e9
    energy_per_byte: float = 5e-12

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"io model {self.name!r}: bandwidth must be > 0"
            )
        if self.fixed_overhead_s < 0 or self.energy_per_byte < 0:
            raise ConfigurationError(
                f"io model {self.name!r}: costs must be >= 0"
            )

    def transfer_time_s(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.fixed_overhead_s + nbytes / self.bandwidth

    def transfer_energy_j(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.energy_per_byte


def ros_like_middleware() -> IoModel:
    """A ROS 2 / DDS-class hop: serialization + loopback networking.

    Public ROS 2 latency studies put intra-host image-topic latency in the
    hundreds of microseconds to low milliseconds; we calibrate the fixed
    term at 0.5 ms and bandwidth at 2 GB/s (loopback + serialization).
    """
    return IoModel(name="ros2-dds", fixed_overhead_s=0.5e-3,
                   bandwidth=2e9, energy_per_byte=8e-12)


def shared_memory_transport() -> IoModel:
    """A zero-copy shared-memory hop (what optimized deployments use)."""
    return IoModel(name="shared-memory", fixed_overhead_s=20e-6,
                   bandwidth=20e9, energy_per_byte=2e-12)


def datacenter_ingest() -> IoModel:
    """WAN ingest for cloud-offloaded inference (the datacenter AI tax)."""
    return IoModel(name="wan-ingest", fixed_overhead_s=20e-3,
                   bandwidth=100e6, energy_per_byte=60e-12)
