"""Zero-copy shared-memory column transport for multi-process shards.

Pickling a rollout population to pool workers — and pickling every
result row back — is row-oriented transport: per-object overhead on
exactly the path the SoA kernels vectorized.  This module ships the
*columns* instead: one ``multiprocessing.shared_memory`` segment per
direction, laid out as named fixed-dtype arrays.  The parent writes
candidate columns once, workers map the segment and write result
columns at their shard's row offsets, and nobody serializes a row
object — the "minimize data movement" half of the paper's
memory/communication challenge applied to the evaluation fabric
itself.

Byte-exactness is the design invariant: a float64 written on one side
is mapped, not re-encoded, on the other, so the serial == parallel ==
cache-warm equivalence contracts hold bit-for-bit through this
transport (pickle preserves float bytes too — this path just stops
paying per-row CPU and memory for the privilege).

:class:`ColumnBlock` is deliberately dumb: a layout is a tuple of
``(name, dtype, shape)`` specs known to both sides (no header in the
segment), offsets are 8-byte aligned, and attach/close/destroy map the
create/close/unlink lifecycle.  The parent owns the segment: it
creates and destroys; workers attach and close.

CPython quirk (bpo-38119): a process that merely *attaches* to a
segment still registers it with its ``resource_tracker``.  Under the
default ``fork`` start method workers share the parent's tracker, whose
registry is a set — the duplicate registration dedupes and the parent's
``unlink`` clears the single entry, so the standard lifecycle is clean
and no unregister workaround is needed (an extra worker-side
``unregister`` would *remove the parent's entry* and produce tracker
noise).  Under ``spawn``, a worker's private tracker may unlink the
segment at worker exit; that is tolerable here because POSIX keeps
existing mappings valid after unlink, workers outlive all attaches, and
the owner's :meth:`ColumnBlock.destroy` treats an already-unlinked
segment as destroyed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ColumnBlock", "shm_available"]

#: One column: (name, dtype, shape).  Both sides must pass the same
#: layout; the segment itself carries no metadata.
ColumnSpec = Tuple[str, object, Tuple[int, ...]]

_ALIGN = 8

_available: "bool | None" = None


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed once).

    False on platforms/sandboxes without ``/dev/shm`` or with
    ``shm_open`` denied; callers then fall back to pickle transport.
    """
    global _available
    if _available is None:
        try:
            from multiprocessing import shared_memory
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def _layout(specs: Sequence[ColumnSpec]) -> Tuple[Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]], int]:
    """Offsets for each column and the total segment size."""
    offsets: Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]] = {}
    cursor = 0
    for name, dtype, shape in specs:
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= int(dim)
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets[name] = (cursor, dt, tuple(int(d) for d in shape))
        cursor += count * dt.itemsize
    return offsets, max(cursor, 1)


class ColumnBlock:
    """Named numpy columns backed by one shared-memory segment.

    Create on the parent, attach in workers (same ``specs``), address
    columns by name on either side.  Views returned by :meth:`column`
    alias the segment directly — writes are visible to every process
    with zero copies — and die with :meth:`close`.
    """

    def __init__(self, shm, specs: Sequence[ColumnSpec],
                 owner: bool) -> None:
        self._shm = shm
        self._offsets, self._size = _layout(specs)
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, specs: Sequence[ColumnSpec]) -> "ColumnBlock":
        """Allocate a fresh segment sized for ``specs`` (parent side)."""
        from multiprocessing import shared_memory
        _, size = _layout(specs)
        shm = shared_memory.SharedMemory(create=True, size=size)
        return cls(shm, specs, owner=True)

    @classmethod
    def attach(cls, name: str, specs: Sequence[ColumnSpec]
               ) -> "ColumnBlock":
        """Map an existing segment by name (worker side).

        Ownership stays with the creator: workers only ``close()``
        (see the module docstring for how the resource tracker's
        attach-time registration resolves under fork vs spawn).
        """
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, specs, owner=False)

    @property
    def name(self) -> str:
        """Segment name (pass to :meth:`attach` in workers)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total segment size in bytes."""
        return self._size

    def column(self, name: str) -> np.ndarray:
        """The named column as a writable view of the segment."""
        offset, dt, shape = self._offsets[name]
        count = 1
        for dim in shape:
            count *= dim
        flat = np.frombuffer(self._shm.buf, dtype=dt, count=count,
                             offset=offset)
        return flat.reshape(shape)

    def columns(self) -> List[str]:
        return list(self._offsets)

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if not self._closed:
            try:
                self._shm.close()
                self._closed = True
            except BufferError:
                # Live views still reference the buffer; the mapping is
                # released when they are collected.  Unlink (below) is
                # name-based and unaffected.
                pass

    def destroy(self) -> None:
        """Close and unlink the segment (owner side)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "ColumnBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy() if self._owner else self.close()
