"""Canonical fingerprints: content addresses for candidates and specs.

The evaluation engine caches results by *what was evaluated*, not by
object identity, so two structurally identical candidates — built in
different processes, with dict keys inserted in different orders, or
round-tripped through JSON — must hash to the same key.  This module
defines that canonical form:

- dicts are emitted with sorted keys; tuples and lists are equivalent;
  sets are sorted by their canonical encoding;
- enums, numpy scalars, and numpy arrays are reduced to tagged plain
  values;
- dataclasses are encoded as ``{"__dataclass__": <type>, <fields...>}``;
- any object may opt in by implementing ``fingerprint_spec()`` returning
  a JSON-able description of everything that affects its evaluation
  semantics (see :class:`repro.hw.platform.Platform` and
  :class:`repro.hw.mapping.HeterogeneousSoC`).

The fingerprint is the SHA-256 of the canonical JSON.  Stability across
process boundaries follows from the encoding depending only on values,
never on ``id()``, ``hash()`` randomization, or insertion order.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from typing import Any, Optional

from repro.errors import EngineError

__all__ = ["canonical_json", "fingerprint", "try_fast_json"]

try:  # numpy is a hard dependency of the repo, but keep the import soft
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is always present in CI
    _np = None


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-able structure with deterministic form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json emits NaN/Infinity tokens deterministically; tag NaN so
        # the (ill-advised) NaN candidate still gets a stable address.
        if math.isnan(obj):
            return {"__float__": "nan"}
        return obj
    if _np is not None:
        if isinstance(obj, _np.bool_):
            return bool(obj)
        if isinstance(obj, _np.integer):
            return int(obj)
        if isinstance(obj, _np.floating):
            return _canonical(float(obj))
        if isinstance(obj, _np.ndarray):
            return {"__ndarray__": list(obj.shape),
                    "values": _canonical(obj.tolist())}
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__name__}.{obj.name}"}
    if isinstance(obj, dict):
        encoded = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                key = json.dumps(_canonical(key), sort_keys=True)
            if key in encoded:
                raise EngineError(
                    f"fingerprint: key collision on {key!r} after"
                    f" canonicalization"
                )
            encoded[key] = _canonical(value)
        return encoded
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [_canonical(item) for item in obj]
        items.sort(key=lambda i: json.dumps(i, sort_keys=True))
        return {"__set__": items}
    spec = getattr(obj, "fingerprint_spec", None)
    if callable(spec):
        return {"__spec__": type(obj).__name__,
                "spec": _canonical(spec())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    raise EngineError(
        f"cannot fingerprint object of type {type(obj).__name__}:"
        f" implement fingerprint_spec() or pass plain data"
    )


#: Reused encoder for the fast path below (json.dumps with keyword
#: arguments constructs a fresh JSONEncoder per call — at ~6 us that
#: would be most of the fast path's budget).
_FAST_ENCODE = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), allow_nan=False).encode


def try_fast_json(obj: Any) -> Optional[str]:
    """The fast-path canonical encoding of ``obj``, or ``None`` when it
    needs the full :func:`_canonical` reduction.

    For plain JSON data (nested dicts/lists/tuples of strings, bools,
    ints, and finite floats — the shape of every DSE candidate and
    cache-key wrapper, fingerprinted once per candidate on the engine's
    hottest path) a direct sorted-keys dump *is* the canonical form:
    ``_canonical`` maps such values to themselves, and the encoder
    coerces non-string scalar keys exactly as the slow path does.
    Everything ``_canonical`` treats specially is rejected and returns
    ``None``: NaN/Infinity raise ValueError (``allow_nan=False``);
    numpy scalars/arrays, enums, sets, dataclasses, and
    ``fingerprint_spec`` objects raise TypeError as non-serializable.
    (Plain-Enum instances are rejected because none of the repo's
    enums mix in int/str; keep it that way or encodings drift.)

    JSON encoding is compositional, so callers holding precomputed
    fragments may splice a fast-encoded value into a larger canonical
    document (see ``Evaluator.key_for``) — the result is identical to
    fast-encoding the whole document at once.
    """
    try:
        return _FAST_ENCODE(obj)
    except (TypeError, ValueError, OverflowError):
        return None


def canonical_json(obj: Any) -> str:
    """The canonical JSON encoding of ``obj`` (stable across processes,
    dict orderings, and tuple-vs-list construction)."""
    fast = try_fast_json(obj)
    if fast is not None:
        return fast
    return json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


def fingerprint(obj: Any) -> str:
    """The SHA-256 hex digest of :func:`canonical_json` of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
