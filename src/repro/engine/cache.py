"""Content-addressed result cache: in-memory always, on-disk optionally.

Keys are :func:`repro.engine.fingerprint.fingerprint` digests, so a
cache directory can be shared between runs, strategies, and processes:
any evaluation of a structurally identical candidate under the same
evaluator context resolves to the same file.

Values must round-trip through JSON.  For richer values (e.g.
:class:`~repro.benchmarksuite.runner.BenchmarkRow`) pass ``encode`` /
``decode`` callables; floats survive exactly (Python's ``json`` emits
shortest round-trip representations, and ``inf`` is legal).

Long-running processes (the ``repro serve`` daemon) can bound the
resident memory level with ``max_entries``: the least recently used
entry is evicted on overflow.  Eviction touches only the memory level —
entries persisted to a cache directory stay on disk and are promoted
back on the next lookup, so a bounded cache trades re-read cost for
memory, never correctness.  With a ``metrics`` registry attached, the
cache publishes ``engine.cache.hits`` / ``.misses`` / ``.disk_hits`` /
``.evictions`` counters as they happen (the serve layer additionally
namespaces the same counters by tenant label).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import EngineError

__all__ = ["ResultCache"]

_MISS = object()


class ResultCache:
    """A two-level (memory, optional disk) store of evaluation results.

    Args:
        directory: When given, every entry is also persisted as
            ``<directory>/<key>.json`` and lookups fall through to disk
            on a memory miss (then promote).  The directory is created
            on first write.
        encode: Value -> JSON-able structure (default: identity).
        decode: JSON-able structure -> value (default: identity).
        max_entries: Bound on the in-memory level (``None`` =
            unbounded).  On overflow the least recently used entry is
            evicted (``evictions`` counts them); the disk level, when
            enabled, is never evicted.
        metrics: Optional :class:`~repro.telemetry.metrics.MetricsRegistry`
            receiving ``engine.cache.*`` counters at event time.

    Attributes:
        hits: Lookups answered from memory or disk.
        misses: Lookups answered by neither.
        disk_hits: The subset of ``hits`` that had to touch disk.
        evictions: Memory-level entries dropped by the
            ``max_entries`` bound.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 encode: Optional[Callable[[Any], Any]] = None,
                 decode: Optional[Callable[[Any], Any]] = None,
                 max_entries: Optional[int] = None,
                 metrics: Optional[Any] = None):
        if max_entries is not None and max_entries < 1:
            raise EngineError(
                f"max_entries must be >= 1 (got {max_entries})")
        self._memory: Dict[str, Any] = {}
        self.directory = Path(directory) if directory else None
        self._encode = encode if encode is not None else (lambda v: v)
        self._decode = decode if decode is not None else (lambda v: v)
        self.max_entries = max_entries
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"engine.cache.{name}").inc()

    def _touch(self, key: str, value: Any) -> None:
        """Move ``key`` to the most-recently-used end (dicts preserve
        insertion order, so re-insertion is the LRU bookkeeping)."""
        if self.max_entries is not None:
            self._memory.pop(key, None)
        self._memory[key] = value

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key`` (``(False, None)`` on a miss)."""
        value = self._memory.get(key, _MISS)
        if value is not _MISS:
            self._touch(key, value)
            self.hits += 1
            self._count("hits")
            return True, value
        if self.directory is not None:
            path = self._path(key)
            if path.exists():
                try:
                    with open(path) as handle:
                        document = json.load(handle)
                    value = self._decode(document["value"])
                except (json.JSONDecodeError, KeyError, OSError) as error:
                    raise EngineError(
                        f"corrupt cache entry {path}: {error}"
                    ) from error
                self._insert(key, value)
                self.hits += 1
                self.disk_hits += 1
                self._count("hits")
                self._count("disk_hits")
                return True, value
        self.misses += 1
        self._count("misses")
        return False, None

    def _insert(self, key: str, value: Any) -> None:
        """Memory-level insert with LRU eviction at ``max_entries``."""
        self._touch(key, value)
        if self.max_entries is None:
            return
        while len(self._memory) > self.max_entries:
            oldest = next(iter(self._memory))
            del self._memory[oldest]
            self.evictions += 1
            self._count("evictions")

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (memory, and disk when enabled).

        Disk writes are atomic (temp file + rename) so a cache directory
        shared by parallel workers never exposes torn entries.
        """
        self._insert(key, value)
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {"key": key, "value": self._encode(value)}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory level (and the disk level when asked)."""
        self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink()

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus current entry count."""
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
        }
