"""Preallocated, reusable SoA batch arenas.

The batch kernels (:func:`repro.hw.batch.batch_estimate`,
:func:`repro.system.fleet.run_fleet`) price a population in
structure-of-arrays form: a few dozen column arrays whose length is the
population size.  Allocating those columns fresh on every call is what
flattens the batch speedup at production sweep sizes — the framework
echo of the paper's memory/communication-bottleneck challenge: past
~10k rollouts the working set stops fitting the allocator's fast paths
and the kernels spend their time in page faults, not arithmetic.

:class:`BatchArena` fixes the churn without touching the arithmetic:

- **Named buffers** — each column a kernel needs is requested by name
  (``arena.array("fleet.latency", (n,))``); the arena owns one backing
  buffer per ``(name, dtype)`` and hands out a length-``n`` view of it.
- **Capacity doubling** — a buffer grows geometrically (to at least
  twice its previous capacity) and never shrinks, so a steady-state
  ask/tell loop or Monte Carlo sweep performs **zero** allocations per
  generation after warm-up, for any non-decreasing or oscillating
  population size.
- **Bit-identical results** — the arena only changes *where* outputs
  land, never what is computed: kernels write into views with explicit
  ``out=`` ufunc calls in the same association order as the allocating
  path.  The scalar-equivalence contracts extend unchanged (enforced by
  ``tests/props/test_property_arena.py``).

Ownership / lifetime contract (see DESIGN.md for the long form):

- The **caller** owns the arena and its lifetime; kernels only borrow
  it for the duration of one call.
- Views returned by :meth:`BatchArena.array` — including arrays inside
  a :class:`~repro.hw.batch.BatchCost` or ``FleetResult`` priced
  through an arena — are **borrowed**: they are valid until the next
  kernel call on the same arena, which may hand the same memory to the
  next generation.  Consume (or copy) them before re-entering a kernel.
- A buffer's contents between calls are *undefined*: kernels must fully
  overwrite every view they request (fill + masked-write patterns for
  selects), never read-modify-write.
- Arenas are **not** shared across threads or processes; each worker in
  a process pool builds its own.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.telemetry.profiling import get_alloc_meter

__all__ = ["BatchArena", "Workspace"]


class BatchArena:
    """A pool of named, capacity-doubling numpy buffers.

    ``array(name, shape, dtype)`` returns a contiguous view of the
    backing buffer registered under ``(name, dtype)``, growing it
    geometrically when the request exceeds capacity.  The view's
    contents are undefined (the buffer is never zeroed); callers must
    fully overwrite it.

    Telemetry counters (:meth:`stats`) make reuse observable: after
    warm-up a steady-state loop shows ``grows`` flat and ``reuses``
    climbing, with ``grow_bytes`` bounding the peak working set.
    """

    __slots__ = ("_buffers", "_live", "grows", "reuses",
                 "grow_bytes", "reused_bytes")

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}
        #: requested bytes of the most recent view per buffer (for
        #: occupancy: how much of the capacity the last call used).
        self._live: Dict[Tuple[str, np.dtype], int] = {}
        self.grows = 0
        self.reuses = 0
        self.grow_bytes = 0
        self.reused_bytes = 0

    def array(self, name: str, shape: Tuple[int, ...],
              dtype=np.float64) -> np.ndarray:
        """A writable ``shape`` view of the buffer named ``name``.

        Contents are undefined; the caller must fully overwrite the
        view.  The view is invalidated by the next ``array`` call with
        the same ``(name, dtype)``.
        """
        dt = np.dtype(dtype)
        key = (name, dt)
        n = 1
        for dim in shape:
            n *= int(dim)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < n:
            capacity = n if buffer is None else max(n, 2 * buffer.size)
            buffer = np.empty(capacity, dtype=dt)
            self._buffers[key] = buffer
            self.grows += 1
            self.grow_bytes += buffer.nbytes
            meter = get_alloc_meter()
            if meter.enabled:
                meter.add_bytes("engine.arena.grow", buffer.nbytes)
        else:
            self.reuses += 1
            self.reused_bytes += n * dt.itemsize
        self._live[key] = n * dt.itemsize
        return buffer[:n].reshape(shape)

    @property
    def capacity_bytes(self) -> int:
        """Total bytes currently held by all backing buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def occupancy(self) -> float:
        """Fraction of capacity used by the most recent generation.

        1.0 when every buffer's last view filled it exactly; lower when
        the population shrank below a high-water mark.  0.0 before any
        request.
        """
        capacity = self.capacity_bytes
        if capacity == 0:
            return 0.0
        return sum(self._live.values()) / capacity

    def clear(self) -> None:
        """Release every backing buffer (counters are kept)."""
        self._buffers.clear()
        self._live.clear()

    def stats(self) -> Dict[str, float]:
        """Reuse telemetry: grows/reuses, bytes, capacity, occupancy."""
        return {
            "buffers": float(len(self._buffers)),
            "grows": float(self.grows),
            "reuses": float(self.reuses),
            "grow_bytes": float(self.grow_bytes),
            "reused_bytes": float(self.reused_bytes),
            "capacity_bytes": float(self.capacity_bytes),
            "occupancy": self.occupancy(),
        }


class Workspace:
    """Per-call output buffers for one kernel invocation.

    A thin adapter kernels use so one code path serves both memory
    modes: ``out(name, shape)`` returns an arena view when an arena was
    supplied, a fresh allocation otherwise.  Either way the kernel
    writes results with explicit ``out=`` ufunc calls, so both modes
    execute the identical operation sequence — the arena changes where
    bytes land, never their values.
    """

    __slots__ = ("_arena", "_prefix")

    def __init__(self, arena: Optional[BatchArena], prefix: str) -> None:
        self._arena = arena
        self._prefix = prefix

    def out(self, name: str, shape: Tuple[int, ...],
            dtype=np.float64) -> np.ndarray:
        """An uninitialized output array (arena view or fresh)."""
        if self._arena is None:
            return np.empty(shape, dtype=dtype)
        return self._arena.array(self._prefix + name, shape, dtype)
