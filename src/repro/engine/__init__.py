"""The unified evaluation engine: fingerprints, cache, Evaluator, ask/tell.

"ML for system design" (paper §3.1) needs the simulator behind a
service boundary: candidate evaluation must be **content-addressed**
(so results are shareable and re-runs are free), **batched** (so a
process pool can price a generation at once), and **observable** (so
optimization loops can be audited).  This package is that boundary:

- :mod:`~repro.engine.arena`       — preallocated, capacity-doubling
  :class:`BatchArena` buffers so batch kernels stop reallocating their
  SoA columns every generation;
- :mod:`~repro.engine.fingerprint` — canonical JSON + SHA-256 content
  addresses for configs, workloads, platforms, and SoCs;
- :mod:`~repro.engine.cache`       — in-memory + on-disk result cache;
- :mod:`~repro.engine.evaluator`   — the :class:`Evaluator`: batch
  pricing with deterministic per-candidate seeding, serial or via a
  process pool, bit-identical either way;
- :mod:`~repro.engine.protocol`    — the ask/tell
  :class:`SearchStrategy` protocol and the :func:`run_search` driver;
- :mod:`~repro.engine.shm`         — zero-copy shared-memory column
  transport for multi-process shards.

Consumers: every :mod:`repro.dse` strategy and
:class:`repro.benchmarksuite.runner.SuiteRunner`.
"""

from repro.engine.arena import BatchArena, Workspace
from repro.engine.cache import ResultCache
from repro.engine.evaluator import EvalResult, Evaluator
from repro.engine.fingerprint import canonical_json, fingerprint
from repro.engine.protocol import (
    BatchObjective,
    FidelityTier,
    SearchStrategy,
    TieredObjective,
    fidelity_tiers,
    run_search,
    supports_batch,
    supports_tiers,
)

__all__ = [
    "BatchArena",
    "BatchObjective",
    "EvalResult",
    "Evaluator",
    "FidelityTier",
    "ResultCache",
    "SearchStrategy",
    "TieredObjective",
    "Workspace",
    "canonical_json",
    "fidelity_tiers",
    "fingerprint",
    "run_search",
    "supports_batch",
    "supports_tiers",
]
