"""The ask/tell search protocol.

Search strategies used to own their evaluation loops; under ask/tell
they only *propose* and *ingest*:

- :meth:`SearchStrategy.ask` returns the next batch of candidates the
  strategy wants priced (one config for intrinsically sequential
  methods, a whole generation or warm-up set for batchable ones);
- the :class:`~repro.engine.evaluator.Evaluator` prices the batch
  (cache, parallelism, telemetry — none of which the strategy sees);
- :meth:`SearchStrategy.tell` feeds the priced batch back, in the exact
  order it was asked for.

Because all scheduling lives in the Evaluator, adding parallelism or a
cache to *every* strategy is one code path, and a strategy's trajectory
is a pure function of its own RNG plus the values it is told — which is
what makes serial, parallel, and cache-warm runs bit-identical.
"""

from __future__ import annotations

import abc
from typing import Any, List, Sequence

from repro.engine.evaluator import EvalResult, Evaluator

__all__ = ["SearchStrategy", "run_search"]


class SearchStrategy(abc.ABC):
    """A candidate proposer/ingester driven by :func:`run_search`."""

    @abc.abstractmethod
    def ask(self) -> List[Any]:
        """The next batch of candidates to price (may be empty when the
        strategy has nothing further to propose)."""

    @abc.abstractmethod
    def tell(self, results: Sequence[EvalResult]) -> None:
        """Ingest priced candidates, in the order :meth:`ask` proposed
        them."""

    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether the search is complete (budget spent, space
        exhausted, or converged)."""

    @abc.abstractmethod
    def result(self) -> Any:
        """The strategy's final result object."""


def run_search(strategy: SearchStrategy, evaluator: Evaluator) -> Any:
    """Drive a strategy against an evaluator until it finishes."""
    while not strategy.finished():
        batch = strategy.ask()
        if not batch:
            break
        strategy.tell(evaluator.map_batch(batch))
    return strategy.result()
