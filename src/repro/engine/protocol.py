"""The ask/tell search protocol.

Search strategies used to own their evaluation loops; under ask/tell
they only *propose* and *ingest*:

- :meth:`SearchStrategy.ask` returns the next batch of candidates the
  strategy wants priced (one config for intrinsically sequential
  methods, a whole generation or warm-up set for batchable ones);
- the :class:`~repro.engine.evaluator.Evaluator` prices the batch
  (cache, parallelism, telemetry — none of which the strategy sees);
- :meth:`SearchStrategy.tell` feeds the priced batch back, in the exact
  order it was asked for.

Because all scheduling lives in the Evaluator, adding parallelism or a
cache to *every* strategy is one code path, and a strategy's trajectory
is a pure function of its own RNG plus the values it is told — which is
what makes serial, parallel, and cache-warm runs bit-identical.
"""

from __future__ import annotations

import abc
from typing import Any, List, Protocol, Sequence, runtime_checkable

from repro.engine.evaluator import EvalResult, Evaluator

__all__ = ["BatchObjective", "SearchStrategy", "run_search",
           "supports_batch"]


@runtime_checkable
class BatchObjective(Protocol):
    """An objective the Evaluator can price a whole population through.

    Beyond the plain ``candidate -> value`` call, a batch objective
    exposes ``evaluate_batch(candidates) -> values`` (or
    ``evaluate_batch(candidates, seeds)`` for seeded evaluators), which
    the :class:`~repro.engine.evaluator.Evaluator` uses as a fast path
    for every cache-miss set.  The contract:

    - values are returned in candidate order, one per candidate;
    - values are **identical** to what per-candidate ``__call__`` would
      produce (bit-for-bit: the batch path must be a vectorization of
      the scalar path, not an approximation of it — see
      :mod:`repro.hw.batch` for the discipline);
    - a batch the objective cannot vectorize is declined by raising
      :class:`~repro.errors.BatchFallback`, never by silently pricing
      it differently.

    Caching, fingerprints, per-candidate seeds, and dedup all happen in
    the Evaluator *before* this is called, so a batch objective only
    ever sees distinct cache-miss candidates.

    **Chunk invariance**: the Evaluator may split the cache-miss set
    into fixed-size windows (``chunk_size``) and call
    ``evaluate_batch`` once per window.  A conforming batch objective
    is elementwise over candidates — candidate *i*'s value depends only
    on candidate *i* — so any chunking of a batch computes the same
    values as one call over the whole batch.  Objectives whose batch
    path couples candidates (e.g. population-level normalization) must
    decline with :class:`~repro.errors.BatchFallback` instead.
    """

    def __call__(self, candidate: Any) -> Any: ...

    def evaluate_batch(self, candidates: Sequence[Any]) -> Sequence[Any]:
        ...


def supports_batch(objective: Any) -> bool:
    """Whether the Evaluator will take the vectorized fast path for
    this objective (i.e. it has a callable ``evaluate_batch``)."""
    return callable(getattr(objective, "evaluate_batch", None))


class SearchStrategy(abc.ABC):
    """A candidate proposer/ingester driven by :func:`run_search`."""

    @abc.abstractmethod
    def ask(self) -> List[Any]:
        """The next batch of candidates to price (may be empty when the
        strategy has nothing further to propose)."""

    @abc.abstractmethod
    def tell(self, results: Sequence[EvalResult]) -> None:
        """Ingest priced candidates, in the order :meth:`ask` proposed
        them."""

    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether the search is complete (budget spent, space
        exhausted, or converged)."""

    @abc.abstractmethod
    def result(self) -> Any:
        """The strategy's final result object."""


def run_search(strategy: SearchStrategy, evaluator: Evaluator) -> Any:
    """Drive a strategy against an evaluator until it finishes."""
    while not strategy.finished():
        batch = strategy.ask()
        if not batch:
            break
        strategy.tell(evaluator.map_batch(batch))
    return strategy.result()
