"""The ask/tell search protocol.

Search strategies used to own their evaluation loops; under ask/tell
they only *propose* and *ingest*:

- :meth:`SearchStrategy.ask` returns the next batch of candidates the
  strategy wants priced (one config for intrinsically sequential
  methods, a whole generation or warm-up set for batchable ones);
- the :class:`~repro.engine.evaluator.Evaluator` prices the batch
  (cache, parallelism, telemetry — none of which the strategy sees);
- :meth:`SearchStrategy.tell` feeds the priced batch back, in the exact
  order it was asked for.

Because all scheduling lives in the Evaluator, adding parallelism or a
cache to *every* strategy is one code path, and a strategy's trajectory
is a pure function of its own RNG plus the values it is told — which is
what makes serial, parallel, and cache-warm runs bit-identical.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (Any, Callable, List, Optional, Protocol, Sequence,
                    Tuple, runtime_checkable)

from repro.engine.evaluator import EvalResult, Evaluator
from repro.errors import EngineError

__all__ = ["BatchObjective", "FidelityTier", "SearchStrategy",
           "TieredObjective", "fidelity_tiers", "run_search",
           "supports_batch", "supports_tiers"]


@runtime_checkable
class BatchObjective(Protocol):
    """An objective the Evaluator can price a whole population through.

    Beyond the plain ``candidate -> value`` call, a batch objective
    exposes ``evaluate_batch(candidates) -> values`` (or
    ``evaluate_batch(candidates, seeds)`` for seeded evaluators), which
    the :class:`~repro.engine.evaluator.Evaluator` uses as a fast path
    for every cache-miss set.  The contract:

    - values are returned in candidate order, one per candidate;
    - values are **identical** to what per-candidate ``__call__`` would
      produce (bit-for-bit: the batch path must be a vectorization of
      the scalar path, not an approximation of it — see
      :mod:`repro.hw.batch` for the discipline);
    - a batch the objective cannot vectorize is declined by raising
      :class:`~repro.errors.BatchFallback`, never by silently pricing
      it differently.

    Caching, fingerprints, per-candidate seeds, and dedup all happen in
    the Evaluator *before* this is called, so a batch objective only
    ever sees distinct cache-miss candidates.

    **Chunk invariance**: the Evaluator may split the cache-miss set
    into fixed-size windows (``chunk_size``) and call
    ``evaluate_batch`` once per window.  A conforming batch objective
    is elementwise over candidates — candidate *i*'s value depends only
    on candidate *i* — so any chunking of a batch computes the same
    values as one call over the whole batch.  Objectives whose batch
    path couples candidates (e.g. population-level normalization) must
    decline with :class:`~repro.errors.BatchFallback` instead.
    """

    def __call__(self, candidate: Any) -> Any: ...

    def evaluate_batch(self, candidates: Sequence[Any]) -> Sequence[Any]:
        ...


def supports_batch(objective: Any) -> bool:
    """Whether the Evaluator will take the vectorized fast path for
    this objective (i.e. it has a callable ``evaluate_batch``)."""
    return callable(getattr(objective, "evaluate_batch", None))


@dataclass(frozen=True)
class FidelityTier:
    """One rung of a multi-fidelity objective ladder.

    A tier is a cheaper (or full-price) stand-in for the objective: the
    same candidates go in, a comparable-but-not-identical score comes
    out, at a fraction of the cost.  Tiers obey the same discipline as
    :class:`BatchObjective` *within* themselves — ``evaluate_batch``
    (when present) must be an elementwise, chunk-invariant
    vectorization of ``evaluate`` — but different tiers may (and
    usually do) disagree with each other: that disagreement is exactly
    the fidelity gap a funnel's promotion gates manage.

    Attributes:
        name: Stable identifier; lower tiers namespace their cache
            entries under it, so renaming a tier orphans its results.
        evaluate: Scalar ``candidate -> value`` at this fidelity.
        evaluate_batch: Optional vectorized
            ``candidates -> values`` fast path (the
            :class:`BatchObjective` contract, scoped to this tier).
        cost_hint: Relative per-candidate cost (arbitrary units,
            consistent within one ladder); used for budget accounting
            and reporting, never for correctness.
    """

    name: str
    evaluate: Callable[[Any], Any]
    evaluate_batch: Optional[Callable[[Sequence[Any]], Sequence[Any]]] \
        = None
    cost_hint: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise EngineError("FidelityTier.name must be a non-empty"
                              f" string (got {self.name!r})")
        if not callable(self.evaluate):
            raise EngineError(
                f"tier {self.name!r}: evaluate must be callable")
        if self.evaluate_batch is not None \
                and not callable(self.evaluate_batch):
            raise EngineError(
                f"tier {self.name!r}: evaluate_batch must be callable"
                " or None")
        if not self.cost_hint > 0:
            raise EngineError(
                f"tier {self.name!r}: cost_hint must be > 0"
                f" (got {self.cost_hint!r})")

    @property
    def batch_capable(self) -> bool:
        """Whether this tier has a vectorized fast path."""
        return self.evaluate_batch is not None


@runtime_checkable
class TieredObjective(Protocol):
    """An objective exposing an ordered ladder of fidelity tiers.

    ``fidelity_tiers()`` returns the ladder cheapest-first.  The
    **tier-equivalence contract** (test-enforced): the *top* tier is
    the objective itself — ``tiers[-1].evaluate is objective`` — so
    top-tier values, fingerprints, cache keys, and derived seeds are
    identical to direct full-fidelity evaluation.  A funnel-primed
    cache therefore replays a direct run with zero oracle calls, and
    vice versa.  Lower tiers are namespaced by tier name in the cache
    and carry no such guarantee against each other.
    """

    def __call__(self, candidate: Any) -> Any: ...

    def fidelity_tiers(self) -> Sequence[FidelityTier]: ...


def supports_tiers(objective: Any) -> bool:
    """Whether the objective declares its own fidelity ladder."""
    return callable(getattr(objective, "fidelity_tiers", None))


def fidelity_tiers(objective: Any) -> Tuple[FidelityTier, ...]:
    """The objective's fidelity ladder, cheapest tier first.

    Objectives without a declared ladder get a single implicit
    full-fidelity tier named ``"full"`` wrapping the objective itself,
    so every objective is funnel-able (a one-tier funnel degenerates to
    its inner strategy).  Declared ladders are validated: non-empty,
    unique names, non-decreasing ``cost_hint``, and the top tier must
    *be* the objective (the tier-equivalence contract).
    """
    if not supports_tiers(objective):
        return (FidelityTier(
            name="full", evaluate=objective,
            evaluate_batch=getattr(objective, "evaluate_batch", None),
        ),)
    tiers = tuple(objective.fidelity_tiers())
    if not tiers:
        raise EngineError(
            f"{type(objective).__name__}.fidelity_tiers() returned an"
            " empty ladder")
    names = [tier.name for tier in tiers]
    if len(set(names)) != len(names):
        raise EngineError(
            f"duplicate tier names in fidelity ladder: {names}")
    for cheap, costly in zip(tiers, tiers[1:]):
        if cheap.cost_hint > costly.cost_hint:
            raise EngineError(
                "fidelity ladder must be ordered cheapest-first:"
                f" {cheap.name!r} (cost {cheap.cost_hint}) precedes"
                f" {costly.name!r} (cost {costly.cost_hint})")
    top = tiers[-1]
    if top.evaluate is not objective \
            and getattr(top.evaluate, "__self__", None) is not objective:
        raise EngineError(
            f"tier-equivalence violation: top tier {top.name!r} must"
            " evaluate through the objective itself")
    return tiers


class SearchStrategy(abc.ABC):
    """A candidate proposer/ingester driven by :func:`run_search`."""

    @abc.abstractmethod
    def ask(self) -> List[Any]:
        """The next batch of candidates to price (may be empty when the
        strategy has nothing further to propose)."""

    @abc.abstractmethod
    def tell(self, results: Sequence[EvalResult]) -> None:
        """Ingest priced candidates, in the order :meth:`ask` proposed
        them."""

    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether the search is complete (budget spent, space
        exhausted, or converged)."""

    @abc.abstractmethod
    def result(self) -> Any:
        """The strategy's final result object."""


def run_search(strategy: SearchStrategy, evaluator: Evaluator) -> Any:
    """Drive a strategy against an evaluator until it finishes.

    Strategies may additionally expose ``ask_tier() -> str`` naming the
    fidelity tier the batch they just proposed should be priced at
    (:class:`~repro.dse.funnel.FunnelStrategy` does); plain strategies
    are priced at full fidelity, exactly as before.
    """
    ask_tier = getattr(strategy, "ask_tier", None)
    while not strategy.finished():
        batch = strategy.ask()
        if not batch:
            break
        if ask_tier is not None:
            results = evaluator.map_batch(batch, tier=ask_tier())
        else:
            results = evaluator.map_batch(batch)
        strategy.tell(results)
    return strategy.result()
