"""The Evaluator: candidate pricing as a cacheable, parallel service.

Every search loop and suite run in the repo used to own a private
``evaluate`` closure; this class centralizes that responsibility:

- **Content addressing** — each candidate is fingerprinted together
  with the evaluator's ``context`` (a description of *what question* is
  being asked: objective identity, mapping policy, ...), so results are
  shareable across runs and processes without identity games.
- **Caching** — a :class:`~repro.engine.cache.ResultCache` absorbs
  repeated candidates; a warm cache answers a whole re-run with zero
  oracle calls.
- **Batch parallelism** — :meth:`map_batch` prices a batch serially or
  on a ``concurrent.futures`` process pool.  Results come back in input
  order and each candidate gets a seed derived from its fingerprint,
  never from batch position, so a parallel run is bit-identical to the
  serial one.
- **Vectorized batch pricing** — objectives exposing ``evaluate_batch``
  (the :class:`~repro.engine.protocol.BatchObjective` shape) get the
  whole pending set in one call, so a structure-of-arrays kernel can
  price a population at once instead of candidate-by-candidate.  The
  fast path changes only *how* values are computed: fingerprints,
  cache keys, per-candidate seeds, and result order are identical to
  the scalar path, and values must be too (batch objectives in this
  repo are bit-identical by construction — see :mod:`repro.hw.batch`).
  An objective can decline a batch by raising
  :class:`~repro.errors.BatchFallback`, which falls back to the scalar
  path transparently.
- **Sharded batch pricing** — with ``jobs > 1``, a large enough
  ``evaluate_batch`` window is split into contiguous shards priced on
  the process pool and concatenated back in order.  The elementwise
  contract that makes chunking value-neutral makes sharding
  value-neutral for the same reason; small windows stay in-process
  (pool spin-up would dominate), and a window whose objective cannot
  pickle falls back to the in-process batch call transparently.
- **Chunked streaming** — with ``chunk_size`` set, :meth:`map_batch`
  pushes the pending set through the oracle in fixed-size windows, so
  an arbitrarily large population evaluates under a bounded working
  set (an arena-backed batch objective reuses the same buffers every
  chunk).  Chunking changes neither values nor order: candidates are
  independent, seeds are fingerprint-derived, and batch objectives are
  elementwise, so any chunking of the pending set computes the same
  results.

Telemetry: oracle calls, cache hits/misses, batch-path hits/fallbacks,
chunk counts/occupancy, and per-candidate wall times are published
through :mod:`repro.telemetry` when a registry or tracer is supplied.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from hashlib import sha256
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import ResultCache
from repro.engine.fingerprint import fingerprint, try_fast_json
from repro.errors import BatchFallback, EngineError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = ["EvalResult", "Evaluator"]

Objective = Callable[..., Any]

#: Mask keeping derived seeds inside numpy's legal seed range.
_SEED_MASK = (1 << 63) - 1

#: Smallest evaluate_batch window worth sharding across a process
#: pool; below this, pool spin-up and pickling dominate the kernel.
_SHARD_FLOOR = 64


@dataclass(frozen=True)
class EvalResult:
    """One priced candidate.

    Attributes:
        candidate: The candidate exactly as submitted.
        value: The objective's result for it.
        key: The content address the result is cached under.
        cached: Whether the value came from the cache (no oracle call).
        wall_time_s: Wall-clock cost of the oracle call (0 for hits;
            an even share of the batch call for candidates priced
            through an ``evaluate_batch`` fast path).
        seed: The deterministic per-candidate seed used (or available)
            for the evaluation.
    """

    candidate: Any
    value: Any
    key: str
    cached: bool
    wall_time_s: float
    seed: int


def _timed_call(objective: Objective, candidate: Any, seed: int,
                seeded: bool) -> Tuple[Any, float]:
    """Invoke the objective and self-time it (runs in pool workers too,
    hence module-level for picklability)."""
    started = time.perf_counter()
    value = objective(candidate, seed) if seeded else objective(candidate)
    return value, time.perf_counter() - started


def _batch_call(batch_fn: Callable[..., Any], candidates: List[Any],
                seeds: List[int], seeded: bool) -> List[Any]:
    """One evaluate_batch shard (runs in pool workers, hence
    module-level for picklability)."""
    return list(batch_fn(candidates, seeds) if seeded
                else batch_fn(candidates))


class Evaluator:
    """Prices candidates through an objective, with caching and batching.

    Args:
        objective: ``candidate -> value``; with ``seeded=True``,
            ``(candidate, seed) -> value``.  Must be picklable (a
            module-level callable or an instance of a module-level
            class) when ``jobs > 1``.
        jobs: Process-pool width for :meth:`map_batch` (1 = in-process
            serial evaluation).
        cache: Result store (a private in-memory one by default).  Pass
            a :class:`ResultCache` with a directory for cross-run reuse.
        seed: Base seed mixed into every per-candidate seed.
        context: Anything fingerprintable describing the evaluation
            question (objective name/version, policy knobs).  Two
            evaluators sharing a cache directory MUST use distinct
            contexts unless their objectives agree.
        seeded: Whether the objective takes a per-candidate seed.
        chunk_size: Evaluate at most this many pending candidates per
            oracle pass (None = the whole pending set at once).  Bounds
            the peak working set without changing values, order, seeds,
            or cache keys.
        metrics: Registry receiving ``engine.*`` counters/histograms.
        tracer: Tracer receiving per-batch wall spans (defaults to the
            process-global tracer).
    """

    def __init__(self, objective: Objective, *, jobs: int = 1,
                 cache: Optional[ResultCache] = None, seed: int = 0,
                 context: Any = None, seeded: bool = False,
                 chunk_size: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1 (got {jobs})")
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1 (got {chunk_size})")
        self.objective = objective
        self.jobs = int(jobs)
        self.cache = cache if cache is not None else ResultCache()
        self.seed = int(seed)
        self.seeded = bool(seeded)
        self.chunk_size = int(chunk_size) if chunk_size else None
        self.metrics = metrics
        self._tracer = tracer
        self._context_fp = fingerprint(context) if context is not None \
            else ""
        self._key_suffixes: Dict[Optional[str], str] = {}
        self.oracle_calls = 0
        self.batches = 0
        self.batch_hits = 0
        self.batch_fallbacks = 0
        self.batch_shards = 0
        self.chunks = 0
        self._tier_counters: Dict[str, Dict[str, int]] = {}
        self._tiers_cache: Optional[Tuple[Any, ...]] = None

    # -- content addressing -------------------------------------------

    def key_for(self, candidate: Any,
                tier: Optional[str] = None) -> str:
        """The content address of ``candidate`` under this context.

        ``tier`` names the fidelity namespace: ``None`` (the default,
        and the top tier) keys exactly as always, so full-fidelity
        results are shared between direct and funnel-driven runs;
        lower tiers mix their name into the fingerprint so a cheap
        screen can never masquerade as a full-price result.
        """
        # Fast path: the wrapper's canonical JSON is assembled from a
        # precomputed context/tier suffix and the fast-encoded candidate
        # ("candidate" < "context" < "tier" under the sorted-keys
        # encoding, and JSON composes), so only the candidate is encoded
        # per call.  Candidates needing the full canonical reduction
        # fall back to fingerprinting the whole wrapper — which takes
        # the identical slow path, so keys agree either way.
        body = try_fast_json(candidate)
        if body is None:
            if tier is None:
                return fingerprint({"context": self._context_fp,
                                    "candidate": candidate})
            return fingerprint({"context": self._context_fp,
                                "tier": tier, "candidate": candidate})
        suffix = self._key_suffixes.get(tier)
        if suffix is None:
            suffix = ',"context":' + try_fast_json(self._context_fp)
            if tier is not None:
                suffix += ',"tier":' + try_fast_json(tier)
            suffix += "}"
            self._key_suffixes[tier] = suffix
        return sha256(('{"candidate":' + body + suffix)
                      .encode("utf-8")).hexdigest()

    def seed_for(self, key: str) -> int:
        """Per-candidate seed: a pure function of (base seed, key).

        The key is the candidate's content fingerprint, so the seed is
        independent of batch composition, evaluation order, chunking,
        process-pool sharding, and transport — the same candidate gets
        the same seed whether it is priced serially, in a pickled pool
        shard, or through the shared-memory column transport.  That
        invariance is what makes parallel and chunked runs reproduce
        serial ones exactly (enforced by
        ``tests/engine/test_evaluator.py``).
        """
        return (self.seed ^ int(key[:16], 16)) & _SEED_MASK

    # -- evaluation ---------------------------------------------------

    def _fidelity_tiers(self) -> Tuple[Any, ...]:
        if self._tiers_cache is None:
            from repro.engine.protocol import fidelity_tiers
            self._tiers_cache = fidelity_tiers(self.objective)
        return self._tiers_cache

    def _resolve_tier(self, tier: Any) -> Any:
        """Map a tier name (or FidelityTier) to the objective's
        declared tier; None passes through (legacy full fidelity)."""
        if tier is None:
            return None
        name = getattr(tier, "name", tier)
        for declared in self._fidelity_tiers():
            if declared.name == name:
                return declared
        raise EngineError(
            f"objective does not declare fidelity tier {name!r};"
            f" declared: {[t.name for t in self._fidelity_tiers()]}")

    def evaluate(self, candidate: Any) -> Any:
        """Price a single candidate (cache-transparent)."""
        return self.map_batch([candidate])[0].value

    def map_batch(self, candidates: Sequence[Any], *,
                  tier: Any = None) -> List[EvalResult]:
        """Price a batch; results are returned in input order.

        Duplicate candidates within the batch are priced once; repeat
        occurrences (and anything already cached) are marked
        ``cached=True``.

        ``tier`` selects a fidelity rung by name (or
        :class:`~repro.engine.protocol.FidelityTier`) from the
        objective's declared ladder.  ``None`` — and, by the
        tier-equivalence contract, the *top* tier — prices at full
        fidelity under the unchanged legacy cache keys; lower tiers
        evaluate through their own ``evaluate``/``evaluate_batch`` and
        cache under a per-tier namespace.  Chunking, dedup, seeds, and
        parallelism behave identically at every tier.
        """
        resolved = self._resolve_tier(tier)
        tracer = self._tracer if self._tracer is not None else get_tracer()
        with tracer.wall_span("engine.map_batch", track="engine") as span:
            results = self._map_batch(list(candidates), resolved)
        if tracer.enabled and span.args is None:
            fresh = sum(1 for r in results if not r.cached)
            span.args = {"batch": len(results), "oracle_calls": fresh,
                         "jobs": self.jobs}
            if resolved is not None:
                span.args["tier"] = resolved.name
        return results

    def _map_batch(self, candidates: List[Any],
                   tier: Any = None) -> List[EvalResult]:
        if tier is None:
            namespace = None
            scalar_fn = self.objective
            batch_fn = getattr(self.objective, "evaluate_batch", None)
            tier_name = None
        else:
            is_top = tier is self._fidelity_tiers()[-1]
            namespace = None if is_top else tier.name
            scalar_fn = tier.evaluate
            batch_fn = tier.evaluate_batch
            tier_name = tier.name
        keys = [self.key_for(candidate, namespace)
                for candidate in candidates]
        values: Dict[str, Any] = {}
        fresh_keys: set = set()
        pending: Dict[str, Any] = {}
        for key, candidate in zip(keys, candidates):
            if key in values or key in pending:
                continue
            hit, value = self.cache.get(key)
            if hit:
                values[key] = value
            else:
                pending[key] = candidate
        wall: Dict[str, float] = {}
        if pending:
            order = list(pending)
            step = self.chunk_size or len(order)
            chunks = 0
            for lo in range(0, len(order), step):
                window = order[lo:lo + step]
                outcomes = self._run_pending(
                    [pending[k] for k in window],
                    [self.seed_for(k) for k in window],
                    scalar_fn, batch_fn, tier_name,
                )
                for key, (value, wall_s) in zip(window, outcomes):
                    self.cache.put(key, value)
                    values[key] = value
                    wall[key] = wall_s
                    fresh_keys.add(key)
                chunks += 1
            self.oracle_calls += len(order)
            self.chunks += chunks
            if self.metrics is not None and self.chunk_size is not None:
                self.metrics.counter("engine.chunks").inc(chunks)
                occupancy = self.metrics.histogram(
                    "engine.chunk_occupancy")
                for lo in range(0, len(order), step):
                    occupancy.record(
                        min(step, len(order) - lo) / step)
        self.batches += 1
        if tier_name is not None:
            counters = self._tier_counter(tier_name)
            counters["candidates"] += len(candidates)
            counters["oracle_calls"] += len(pending)
            counters["cache_hits"] += len(candidates) - len(pending)
        self._publish(len(candidates), len(pending), wall, tier_name)

        results: List[EvalResult] = []
        seen: set = set()
        for key, candidate in zip(keys, candidates):
            first_fresh = key in fresh_keys and key not in seen
            seen.add(key)
            results.append(EvalResult(
                candidate=candidate,
                value=values[key],
                key=key,
                cached=not first_fresh,
                wall_time_s=wall.get(key, 0.0) if first_fresh else 0.0,
                seed=self.seed_for(key),
            ))
        return results

    def _run_pending(self, candidates: List[Any], seeds: List[int],
                     scalar_fn: Objective,
                     batch_fn: Optional[Callable[..., Any]],
                     tier_name: Optional[str]
                     ) -> List[Tuple[Any, float]]:
        if batch_fn is not None:
            started = time.perf_counter()
            try:
                values = self._call_batch(batch_fn, candidates, seeds)
            except BatchFallback:
                self.batch_fallbacks += len(candidates)
                if tier_name is not None:
                    self._tier_counter(tier_name)["batch_fallbacks"] \
                        += len(candidates)
                if self.metrics is not None:
                    self.metrics.counter("engine.batch_fallbacks").inc(
                        len(candidates))
                    if tier_name is not None:
                        self.metrics.counter(
                            f"engine.tier.{tier_name}.batch_fallbacks"
                        ).inc(len(candidates))
            else:
                if len(values) != len(candidates):
                    raise EngineError(
                        f"evaluate_batch returned {len(values)} values"
                        f" for {len(candidates)} candidates")
                elapsed = time.perf_counter() - started
                self.batch_hits += len(values)
                if tier_name is not None:
                    self._tier_counter(tier_name)["batch_hits"] \
                        += len(values)
                if self.metrics is not None:
                    self.metrics.counter("engine.batch_hits").inc(
                        len(values))
                    if tier_name is not None:
                        self.metrics.counter(
                            f"engine.tier.{tier_name}.batch_hits"
                        ).inc(len(values))
                share = elapsed / len(values) if values else 0.0
                return [(value, share) for value in values]
        if self.jobs == 1 or len(candidates) == 1:
            return [_timed_call(scalar_fn, candidate, seed,
                                self.seeded)
                    for candidate, seed in zip(candidates, seeds)]
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(
                    _timed_call,
                    [scalar_fn] * len(candidates),
                    candidates,
                    seeds,
                    [self.seeded] * len(candidates),
                ))
        except (AttributeError, TypeError) as error:
            # Most commonly: an unpicklable closure objective.
            raise EngineError(
                f"parallel evaluation (jobs={self.jobs}) requires a"
                f" picklable objective and candidates: {error}"
            ) from error

    def _call_batch(self, batch_fn: Callable[..., Any],
                    candidates: List[Any],
                    seeds: List[int]) -> List[Any]:
        """One oracle window through ``evaluate_batch``.

        With ``jobs > 1`` and a window large enough to amortize pool
        spin-up, the window is split into ``jobs`` contiguous shards
        priced concurrently and concatenated back in submission order —
        value-identical to the single call because batch objectives are
        elementwise and seeds are fingerprint-derived (the same
        contract that makes chunking neutral).  A shard raising
        :class:`BatchFallback` falls the whole window back to the
        scalar path; an objective that cannot pickle falls back to the
        in-process batch call.
        """
        total = len(candidates)
        if self.jobs > 1 and total >= max(2 * self.jobs, _SHARD_FLOOR):
            step = -(-total // self.jobs)  # ceil division
            bounds = [(lo, min(lo + step, total))
                      for lo in range(0, total, step)]
            try:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    parts = list(pool.map(
                        _batch_call,
                        [batch_fn] * len(bounds),
                        [candidates[lo:hi] for lo, hi in bounds],
                        [seeds[lo:hi] for lo, hi in bounds],
                        [self.seeded] * len(bounds),
                    ))
            except BatchFallback:
                raise
            except (pickle.PicklingError, AttributeError,
                    TypeError):
                parts = None  # unpicklable objective: price in-process
            if parts is not None:
                for (lo, hi), part in zip(bounds, parts):
                    if len(part) != hi - lo:
                        raise EngineError(
                            f"evaluate_batch shard returned"
                            f" {len(part)} values for {hi - lo}"
                            f" candidates")
                self.batch_shards += len(bounds)
                if self.metrics is not None:
                    self.metrics.counter("engine.batch_shards").inc(
                        len(bounds))
                return [value for part in parts for value in part]
        return list(batch_fn(candidates, seeds) if self.seeded
                    else batch_fn(candidates))

    def _publish(self, batch: int, fresh: int, wall: Dict[str, float],
                 tier_name: Optional[str] = None) -> None:
        if self.metrics is None:
            return
        self.metrics.counter("engine.batches").inc()
        self.metrics.counter("engine.candidates").inc(batch)
        if fresh:
            self.metrics.counter("engine.oracle_calls").inc(fresh)
        if batch > fresh:
            self.metrics.counter("engine.cache_hits").inc(batch - fresh)
        histogram = self.metrics.histogram("engine.eval_wall_s")
        for wall_s in wall.values():
            histogram.record(wall_s)
        if tier_name is not None:
            prefix = f"engine.tier.{tier_name}"
            self.metrics.counter(f"{prefix}.candidates").inc(batch)
            if fresh:
                self.metrics.counter(f"{prefix}.oracle_calls").inc(fresh)
            if batch > fresh:
                self.metrics.counter(f"{prefix}.cache_hits").inc(
                    batch - fresh)
            tier_hist = self.metrics.histogram(f"{prefix}.eval_wall_s")
            for wall_s in wall.values():
                tier_hist.record(wall_s)

    # -- introspection ------------------------------------------------

    def _tier_counter(self, tier_name: str) -> Dict[str, int]:
        return self._tier_counters.setdefault(tier_name, {
            "candidates": 0, "oracle_calls": 0, "cache_hits": 0,
            "batch_hits": 0, "batch_fallbacks": 0})

    def tier_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier counters, keyed by tier name.

        Only batches priced through an explicit ``tier=`` are counted
        here (legacy ``map_batch`` calls land in :meth:`stats` alone);
        the same numbers are published as ``engine.tier.<name>.*``
        metrics when a registry is attached.
        """
        return {name: dict(counters)
                for name, counters in self._tier_counters.items()}

    def stats(self) -> Dict[str, int]:
        """Oracle/batch counters merged with the cache's own stats."""
        return {"oracle_calls": self.oracle_calls,
                "batches": self.batches,
                "batch_hits": self.batch_hits,
                "batch_fallbacks": self.batch_fallbacks,
                "batch_shards": self.batch_shards,
                "chunks": self.chunks,
                **self.cache.stats()}
