"""Iterative LQR: nonlinear trajectory optimization.

The workhorse of modern whole-body/agile control (and the outer loop
around the batched-dynamics kernels of the robomorphic line): linearize
the dynamics along a nominal trajectory, solve the time-varying LQR
backward pass, roll forward with a line search, repeat.  Jacobians come
from finite differences by default so any black-box dynamics plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError

Dynamics = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class IlqrProblem:
    """A finite-horizon optimal-control problem.

    Attributes:
        dynamics: ``x_next = f(x, u)``.
        state_dim, control_dim: Dimensions.
        q, r, q_terminal: Quadratic cost weights (state, control,
            terminal state) about ``x_goal``.
        x_goal: Target state.
        horizon: Number of control steps.
    """

    dynamics: Dynamics
    state_dim: int
    control_dim: int
    q: np.ndarray
    r: np.ndarray
    q_terminal: np.ndarray
    x_goal: np.ndarray
    horizon: int = 50

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        n, m = self.state_dim, self.control_dim
        self.q = np.asarray(self.q, dtype=float)
        self.r = np.asarray(self.r, dtype=float)
        self.q_terminal = np.asarray(self.q_terminal, dtype=float)
        self.x_goal = np.asarray(self.x_goal, dtype=float)
        if self.q.shape != (n, n) or self.q_terminal.shape != (n, n):
            raise ConfigurationError("Q/Qf must be (n, n)")
        if self.r.shape != (m, m):
            raise ConfigurationError("R must be (m, m)")
        if self.x_goal.shape != (n,):
            raise ConfigurationError("x_goal must be (n,)")

    def stage_cost(self, x: np.ndarray, u: np.ndarray) -> float:
        dx = x - self.x_goal
        return float(dx @ self.q @ dx + u @ self.r @ u)

    def terminal_cost(self, x: np.ndarray) -> float:
        dx = x - self.x_goal
        return float(dx @ self.q_terminal @ dx)

    def trajectory_cost(self, states: np.ndarray,
                        controls: np.ndarray) -> float:
        cost = sum(self.stage_cost(x, u)
                   for x, u in zip(states[:-1], controls))
        return cost + self.terminal_cost(states[-1])


@dataclass
class IlqrResult:
    """Solver output.

    Attributes:
        states: ``(horizon + 1, n)`` optimized trajectory.
        controls: ``(horizon, m)`` optimized inputs.
        cost_trace: Total cost per iteration (including the initial
            rollout).
        converged: Whether the relative cost improvement fell below
            tolerance before the iteration cap.
    """

    states: np.ndarray
    controls: np.ndarray
    cost_trace: List[float]
    converged: bool


def finite_difference_jacobians(dynamics: Dynamics, x: np.ndarray,
                                u: np.ndarray, epsilon: float = 1e-6
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Central-difference Jacobians ``(df/dx, df/du)``."""
    n, m = x.shape[0], u.shape[0]
    a = np.zeros((n, n))
    b = np.zeros((n, m))
    for i in range(n):
        dx = np.zeros(n)
        dx[i] = epsilon
        a[:, i] = (dynamics(x + dx, u) - dynamics(x - dx, u)) \
            / (2 * epsilon)
    for j in range(m):
        du = np.zeros(m)
        du[j] = epsilon
        b[:, j] = (dynamics(x, u + du) - dynamics(x, u - du)) \
            / (2 * epsilon)
    return a, b


class IlqrSolver:
    """iLQR with Levenberg-style regularization and line search."""

    def __init__(self, problem: IlqrProblem,
                 max_iterations: int = 50, tolerance: float = 1e-6,
                 counter: Optional[OpCounter] = None):
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.problem = problem
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.counter = counter if counter is not None \
            else OpCounter(name="ilqr")

    def _rollout(self, x0: np.ndarray,
                 controls: np.ndarray) -> np.ndarray:
        states = [np.asarray(x0, dtype=float)]
        for u in controls:
            states.append(self.problem.dynamics(states[-1], u))
        return np.stack(states)

    def _backward_pass(self, states, controls, regularization):
        problem = self.problem
        n, m = problem.state_dim, problem.control_dim
        big_n = problem.horizon
        vx = 2.0 * problem.q_terminal @ (states[-1] - problem.x_goal)
        vxx = 2.0 * problem.q_terminal
        gains_k = np.zeros((big_n, m))
        gains_kx = np.zeros((big_n, m, n))
        for t in range(big_n - 1, -1, -1):
            x, u = states[t], controls[t]
            a, b = finite_difference_jacobians(problem.dynamics, x, u)
            lx = 2.0 * problem.q @ (x - problem.x_goal)
            lu = 2.0 * problem.r @ u
            qx = lx + a.T @ vx
            qu = lu + b.T @ vx
            qxx = 2.0 * problem.q + a.T @ vxx @ a
            quu = 2.0 * problem.r + b.T @ vxx @ b \
                + regularization * np.eye(m)
            qux = b.T @ vxx @ a
            try:
                quu_inv = np.linalg.inv(quu)
            except np.linalg.LinAlgError:
                return None
            gains_k[t] = -quu_inv @ qu
            gains_kx[t] = -quu_inv @ qux
            vx = qx + gains_kx[t].T @ quu @ gains_k[t] \
                + gains_kx[t].T @ qu + qux.T @ gains_k[t]
            vxx = qxx + gains_kx[t].T @ quu @ gains_kx[t] \
                + gains_kx[t].T @ qux + qux.T @ gains_kx[t]
            vxx = 0.5 * (vxx + vxx.T)
            self.counter.add_flops(
                4.0 * n ** 3 + 6.0 * n * n * m + m ** 3
            )
        return gains_k, gains_kx

    def solve(self, x0: np.ndarray,
              initial_controls: Optional[np.ndarray] = None
              ) -> IlqrResult:
        """Optimize from initial state ``x0``."""
        problem = self.problem
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (problem.state_dim,):
            raise ConfigurationError(
                f"x0 must be ({problem.state_dim},), got {x0.shape}"
            )
        if initial_controls is None:
            controls = np.zeros((problem.horizon,
                                 problem.control_dim))
        else:
            controls = np.array(initial_controls, dtype=float)
            if controls.shape != (problem.horizon,
                                  problem.control_dim):
                raise ConfigurationError("initial_controls shape")

        states = self._rollout(x0, controls)
        cost = problem.trajectory_cost(states, controls)
        trace = [cost]
        regularization = 1e-6
        converged = False

        for _ in range(self.max_iterations):
            backward = self._backward_pass(states, controls,
                                           regularization)
            if backward is None:
                regularization = min(regularization * 10.0, 1e6)
                continue
            gains_k, gains_kx = backward

            improved = False
            for step in (1.0, 0.5, 0.25, 0.1, 0.03):
                new_controls = np.zeros_like(controls)
                new_states = [x0]
                for t in range(problem.horizon):
                    deviation = new_states[t] - states[t]
                    new_controls[t] = (controls[t]
                                       + step * gains_k[t]
                                       + gains_kx[t] @ deviation)
                    new_states.append(problem.dynamics(
                        new_states[t], new_controls[t]
                    ))
                candidate_states = np.stack(new_states)
                candidate_cost = problem.trajectory_cost(
                    candidate_states, new_controls
                )
                if candidate_cost < cost:
                    improvement = (cost - candidate_cost) \
                        / max(cost, 1e-12)
                    states, controls = candidate_states, new_controls
                    cost = candidate_cost
                    trace.append(cost)
                    regularization = max(regularization / 10.0, 1e-9)
                    improved = True
                    if improvement < self.tolerance:
                        converged = True
                    break
            if not improved:
                regularization = min(regularization * 10.0, 1e6)
                if regularization >= 1e6:
                    break
            if converged:
                break

        return IlqrResult(states=states, controls=controls,
                          cost_trace=trace, converged=converged)

    def profile(self) -> WorkloadProfile:
        """Measured profile (small dense linear algebra, sequential
        backward recursion)."""
        return self.counter.profile(parallel_fraction=0.7,
                                    divergence=DivergenceClass.LOW,
                                    op_class="linalg")


def unicycle_dynamics(dt: float = 0.1) -> Dynamics:
    """Discrete unicycle: state ``[x, y, theta]``, control ``[v, w]``."""
    if dt <= 0:
        raise ConfigurationError("dt must be > 0")

    def step(x: np.ndarray, u: np.ndarray) -> np.ndarray:
        return np.array([
            x[0] + dt * u[0] * np.cos(x[2]),
            x[1] + dt * u[0] * np.sin(x[2]),
            x[2] + dt * u[1],
        ])

    return step
