"""Discrete-time LQR via Riccati iteration."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError


def dlqr(a: np.ndarray, b: np.ndarray, q: np.ndarray, r: np.ndarray,
         iterations: int = 10000, tolerance: float = 1e-10,
         counter: Optional[OpCounter] = None
         ) -> Tuple[np.ndarray, np.ndarray]:
    """Infinite-horizon discrete LQR gain.

    Iterates the discrete algebraic Riccati equation to convergence.

    Returns:
        ``(K, P)`` with the control law ``u = -K x`` and the value matrix
        ``P``.

    Raises:
        ConfigurationError: On shape mismatch or non-convergence.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    q = np.asarray(q, dtype=float)
    r = np.asarray(r, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ConfigurationError(f"A must be square, got {a.shape}")
    if b.shape[0] != n:
        raise ConfigurationError(
            f"B rows ({b.shape[0]}) must match A ({n})"
        )
    m = b.shape[1]
    if q.shape != (n, n) or r.shape != (m, m):
        raise ConfigurationError("Q/R shapes inconsistent with A/B")

    p = q.copy()
    for _ in range(iterations):
        bt_p = b.T @ p
        gain_denominator = r + bt_p @ b
        k = np.linalg.solve(gain_denominator, bt_p @ a)
        p_next = q + a.T @ p @ (a - b @ k)
        if counter is not None:
            counter.add_gemm(m, n, n)
            counter.add_gemm(m, m, n)
            counter.add_gemm(n, n, n)
            counter.add_gemm(n, n, n)
            counter.add_flops(m ** 3 / 3.0)
        delta = float(np.max(np.abs(p_next - p)))
        p = 0.5 * (p_next + p_next.T)
        if delta < tolerance:
            k = np.linalg.solve(r + b.T @ p @ b, b.T @ p @ a)
            return k, p
    raise ConfigurationError(
        f"Riccati iteration did not converge in {iterations} steps"
        " (is (A, B) stabilizable?)"
    )


def double_integrator(dt: float = 0.05
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Discrete 1-D double integrator ``(A, B)`` — the UAV axis model."""
    if dt <= 0:
        raise ConfigurationError(f"dt must be > 0, got {dt}")
    a = np.array([[1.0, dt], [0.0, 1.0]])
    b = np.array([[0.5 * dt * dt], [dt]])
    return a, b


def lqr_profile(state_dim: int, control_dim: int,
                riccati_iterations: int = 100,
                name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form profile of one LQR synthesis (small dense GEMMs)."""
    if state_dim < 1 or control_dim < 1:
        raise ConfigurationError("dims must be >= 1")
    n, m = state_dim, control_dim
    counter = OpCounter(name=name or f"lqr-{n}x{m}")
    per_iter = (2.0 * m * n * n + 2.0 * m * m * n
                + 4.0 * n ** 3 + m ** 3 / 3.0)
    counter.add_flops(per_iter * riccati_iterations)
    counter.add_read(8.0 * (n * n * 3 + n * m) * riccati_iterations)
    counter.add_write(8.0 * n * n * riccati_iterations)
    counter.note_working_set(8.0 * (3 * n * n + 2 * n * m))
    return counter.profile(parallel_fraction=0.85,
                           divergence=DivergenceClass.LOW,
                           op_class="gemm")
