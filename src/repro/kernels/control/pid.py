"""PID control with anti-windup.

The humble baseline controller: nearly free to compute, which is exactly
why it anchors the "do not always accelerate" comparisons — a pipeline
whose control stage is PID gains nothing from a control accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class PidController:
    """A scalar PID controller with output clamping and anti-windup.

    Attributes:
        kp, ki, kd: Gains.
        output_limit: Symmetric output saturation (``None`` = unbounded).
        integral_limit: Symmetric clamp on the integral term.
    """

    kp: float = 1.0
    ki: float = 0.0
    kd: float = 0.0
    output_limit: float = float("inf")
    integral_limit: float = float("inf")

    def __post_init__(self) -> None:
        if self.output_limit <= 0 or self.integral_limit <= 0:
            raise ConfigurationError("limits must be > 0")
        self._integral = 0.0
        self._previous_error: float = 0.0
        self._primed = False

    def reset(self) -> None:
        """Clear integral and derivative memory."""
        self._integral = 0.0
        self._previous_error = 0.0
        self._primed = False

    def update(self, error: float, dt: float) -> float:
        """One control step; returns the (saturated) command."""
        if dt <= 0:
            raise ConfigurationError(f"dt must be > 0, got {dt}")
        self._integral += error * dt
        self._integral = max(-self.integral_limit,
                             min(self.integral_limit, self._integral))
        derivative = 0.0
        if self._primed:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error
        self._primed = True

        raw = (self.kp * error + self.ki * self._integral
               + self.kd * derivative)
        limited = max(-self.output_limit, min(self.output_limit, raw))
        if limited != raw:
            # Anti-windup: bleed the integral when saturated.
            self._integral -= error * dt
        return limited
