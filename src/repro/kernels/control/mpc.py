"""Linear model-predictive control with box input constraints.

Condensed formulation: the horizon's states are eliminated, leaving a QP
in the input sequence, solved by projected gradient descent (exact for
the unconstrained case in the limit; monotone and constraint-satisfying
always).  MPC is the compute-hungry controller — its per-step cost scales
with horizon^2 — making it the stage that *tempts* acceleration in the
E4 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError


@dataclass
class MpcConfig:
    """MPC problem description.

    Attributes:
        a, b: Discrete dynamics ``x+ = A x + B u``.
        q, r: Stage cost weights (state / input).
        horizon: Prediction horizon length.
        u_min, u_max: Box input constraints.
        solver_iterations: Projected-gradient iterations per solve.
    """

    a: np.ndarray
    b: np.ndarray
    q: np.ndarray
    r: np.ndarray
    horizon: int = 10
    u_min: float = -np.inf
    u_max: float = np.inf
    solver_iterations: int = 100

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=float)
        self.b = np.asarray(self.b, dtype=float)
        self.q = np.asarray(self.q, dtype=float)
        self.r = np.asarray(self.r, dtype=float)
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.u_min >= self.u_max:
            raise ConfigurationError("u_min must be < u_max")
        n = self.a.shape[0]
        if self.a.shape != (n, n) or self.b.shape[0] != n:
            raise ConfigurationError("A/B shapes inconsistent")


class LinearMpc:
    """Condensed linear MPC solved by projected gradient descent."""

    def __init__(self, config: MpcConfig,
                 counter: Optional[OpCounter] = None):
        self.config = config
        self.counter = counter if counter is not None \
            else OpCounter(name="mpc")
        self._build_condensed()

    def _build_condensed(self) -> None:
        """Precompute prediction matrices ``X = S x0 + T U``."""
        cfg = self.config
        n = cfg.a.shape[0]
        m = cfg.b.shape[1]
        big_n = cfg.horizon
        s = np.zeros((n * big_n, n))
        t = np.zeros((n * big_n, m * big_n))
        a_power = np.eye(n)
        for i in range(big_n):
            a_power = a_power @ cfg.a
            s[n * i:n * (i + 1), :] = a_power
            block = cfg.b.copy()
            for j in range(i, -1, -1):
                t[n * i:n * (i + 1), m * j:m * (j + 1)] = block
                block = cfg.a @ block
        q_bar = np.kron(np.eye(big_n), cfg.q)
        r_bar = np.kron(np.eye(big_n), cfg.r)
        self._s = s
        self._t = t
        self._hessian = 2.0 * (t.T @ q_bar @ t + r_bar)
        self._q_bar = q_bar
        self._m = m
        # Lipschitz constant of the gradient -> fixed step size.
        eigenvalues = np.linalg.eigvalsh(self._hessian)
        self._step = 1.0 / float(eigenvalues.max())

    def solve(self, x0: np.ndarray,
              x_ref: Optional[np.ndarray] = None) -> np.ndarray:
        """Solve for the optimal input sequence from state ``x0``.

        Args:
            x0: Current state.
            x_ref: Optional constant state reference (defaults to origin).

        Returns:
            ``(horizon, m)`` input sequence (apply row 0).
        """
        cfg = self.config
        x0 = np.asarray(x0, dtype=float)
        n = cfg.a.shape[0]
        if x0.shape != (n,):
            raise ConfigurationError(
                f"x0 must have shape ({n},), got {x0.shape}"
            )
        big_n = cfg.horizon
        if x_ref is None:
            ref = np.zeros(n * big_n)
        else:
            x_ref = np.asarray(x_ref, dtype=float)
            ref = np.tile(x_ref, big_n)

        linear = 2.0 * self._t.T @ (self._q_bar @ (self._s @ x0 - ref))
        u = np.zeros(self._m * big_n)
        for _ in range(cfg.solver_iterations):
            gradient = self._hessian @ u + linear
            u = u - self._step * gradient
            u = np.clip(u, cfg.u_min, cfg.u_max)
        dims = self._hessian.shape[0]
        self.counter.add_gemm(dims, 1, dims)
        self.counter.add_flops(2.0 * dims * cfg.solver_iterations)
        self.counter.note_working_set(8.0 * dims * dims)
        return u.reshape(big_n, self._m)

    def control(self, x0: np.ndarray,
                x_ref: Optional[np.ndarray] = None) -> np.ndarray:
        """First input of the optimal sequence (receding horizon)."""
        return self.solve(x0, x_ref)[0]

    def profile(self) -> WorkloadProfile:
        """Measured profile (dense GEMV iterations)."""
        return self.counter.profile(parallel_fraction=0.9,
                                    divergence=DivergenceClass.LOW,
                                    op_class="gemm")


def mpc_profile(state_dim: int, control_dim: int, horizon: int,
                solver_iterations: int = 100,
                name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form per-solve MPC profile."""
    if min(state_dim, control_dim, horizon) < 1:
        raise ConfigurationError("dims and horizon must be >= 1")
    dims = control_dim * horizon
    counter = OpCounter(name=name or f"mpc-h{horizon}")
    counter.add_flops(2.0 * dims * dims * solver_iterations)
    counter.add_read(8.0 * dims * dims * solver_iterations)
    counter.add_write(8.0 * dims * solver_iterations)
    counter.note_working_set(8.0 * dims * dims)
    return counter.profile(parallel_fraction=0.9,
                           divergence=DivergenceClass.LOW,
                           op_class="gemm")
