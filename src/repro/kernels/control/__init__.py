"""Control kernels: PID, LQR, and linear MPC.

The actuator-facing end of the autonomy pipeline.  Control kernels are
small but *latency-critical* — they sit on the deadline path of the
closed-loop experiments (E4/E6), where a missed control deadline costs
mission performance rather than just throughput.
"""

from repro.kernels.control.ilqr import (
    IlqrProblem,
    IlqrResult,
    IlqrSolver,
    unicycle_dynamics,
)
from repro.kernels.control.lqr import dlqr, double_integrator, lqr_profile
from repro.kernels.control.mpc import LinearMpc, MpcConfig
from repro.kernels.control.pid import PidController

__all__ = [
    "IlqrProblem",
    "IlqrResult",
    "IlqrSolver",
    "LinearMpc",
    "MpcConfig",
    "PidController",
    "dlqr",
    "double_integrator",
    "lqr_profile",
    "unicycle_dynamics",
]
