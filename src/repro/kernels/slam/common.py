"""Shared SLAM scaffolding: scenario generation and accuracy metrics.

A scenario is a ground-truth unicycle trajectory through a field of point
landmarks, with noisy odometry and noisy range-bearing observations
(known data association — the standard simplification for comparing
estimator *backends*; frontend association is exercised separately in
:mod:`repro.kernels.vision`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.geometry import wrap_angle


@dataclass(frozen=True)
class Observation:
    """One range-bearing measurement.

    Attributes:
        landmark_id: Index of the observed landmark (known association).
        range_m: Measured distance.
        bearing_rad: Measured bearing in the robot frame, wrapped.
    """

    landmark_id: int
    range_m: float
    bearing_rad: float


@dataclass
class SlamScenario:
    """A complete synthetic SLAM dataset.

    Attributes:
        landmarks: ``(n_landmarks, 2)`` ground-truth positions.
        true_poses: ``(n_steps + 1, 3)`` ground-truth ``[x, y, theta]``.
        odometry: ``(n_steps, 2)`` noisy ``[v dt, omega dt]`` increments.
        observations: Per-step observation lists (length ``n_steps``),
            observations taken *after* each motion.
        motion_noise: Std devs of ``[translation, rotation]`` noise
            actually injected per unit motion.
        measurement_noise: Std devs of ``[range, bearing]`` noise.
        max_range: Sensor range.
    """

    landmarks: np.ndarray
    true_poses: np.ndarray
    odometry: np.ndarray
    observations: List[List[Observation]]
    motion_noise: Tuple[float, float]
    measurement_noise: Tuple[float, float]
    max_range: float

    @property
    def n_steps(self) -> int:
        return self.odometry.shape[0]

    @property
    def n_landmarks(self) -> int:
        return self.landmarks.shape[0]


def motion_model(pose: np.ndarray, control: np.ndarray) -> np.ndarray:
    """Unicycle step: ``control = [ds, dtheta]`` applied to ``[x, y, th]``."""
    x, y, theta = pose
    ds, dtheta = control
    return np.array([
        x + ds * np.cos(theta),
        y + ds * np.sin(theta),
        wrap_angle(theta + dtheta),
    ])


def observe(pose: np.ndarray, landmark: np.ndarray) -> Tuple[float, float]:
    """Noise-free range and bearing of a landmark from a pose."""
    dx = landmark[0] - pose[0]
    dy = landmark[1] - pose[1]
    rng = float(np.hypot(dx, dy))
    bearing = wrap_angle(float(np.arctan2(dy, dx)) - pose[2])
    return rng, bearing


def make_scenario(
    n_steps: int = 100,
    n_landmarks: int = 20,
    arena: float = 20.0,
    speed: float = 0.5,
    turn_rate: float = 0.12,
    motion_noise: Tuple[float, float] = (0.05, 0.01),
    measurement_noise: Tuple[float, float] = (0.1, 0.02),
    max_range: float = 8.0,
    seed: int = 0,
) -> SlamScenario:
    """Generate a loop trajectory through a random landmark field.

    The robot drives a rough circle inside the arena (guaranteeing loop
    closures), seeing every landmark within ``max_range`` at every step.
    """
    if n_steps < 1 or n_landmarks < 1:
        raise ConfigurationError("need n_steps >= 1 and n_landmarks >= 1")
    rng = np.random.default_rng(seed)
    landmarks = rng.uniform(0.0, arena, size=(n_landmarks, 2))

    center = arena / 2.0
    radius = arena / 3.0
    pose = np.array([center + radius, center, np.pi / 2.0])
    true_poses = [pose.copy()]
    odometry = np.zeros((n_steps, 2))
    observations: List[List[Observation]] = []

    for step in range(n_steps):
        true_control = np.array([speed, turn_rate])
        pose = motion_model(pose, true_control)
        true_poses.append(pose.copy())
        noisy = true_control + rng.normal(
            0.0, [motion_noise[0], motion_noise[1]]
        )
        odometry[step] = noisy

        step_obs: List[Observation] = []
        for lm_id in range(n_landmarks):
            true_range, true_bearing = observe(pose, landmarks[lm_id])
            if true_range > max_range:
                continue
            step_obs.append(Observation(
                landmark_id=lm_id,
                range_m=max(1e-6, true_range
                            + rng.normal(0.0, measurement_noise[0])),
                bearing_rad=wrap_angle(
                    true_bearing + rng.normal(0.0, measurement_noise[1])
                ),
            ))
        observations.append(step_obs)

    return SlamScenario(
        landmarks=landmarks,
        true_poses=np.stack(true_poses),
        odometry=odometry,
        observations=observations,
        motion_noise=motion_noise,
        measurement_noise=measurement_noise,
        max_range=max_range,
    )


def ate_rmse(estimated: np.ndarray, ground_truth: np.ndarray) -> float:
    """Absolute trajectory error (RMSE over x, y), the §2.2 task-quality
    metric for SLAM.

    Both arrays are ``(n, >= 2)``; only the position columns are compared.
    """
    estimated = np.asarray(estimated, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    if estimated.shape[0] != ground_truth.shape[0]:
        raise ConfigurationError(
            f"trajectory lengths differ: {estimated.shape[0]} vs"
            f" {ground_truth.shape[0]}"
        )
    diff = estimated[:, :2] - ground_truth[:, :2]
    return float(np.sqrt(np.mean(np.sum(diff * diff, axis=1))))


def dead_reckoning(scenario: SlamScenario) -> np.ndarray:
    """Integrate odometry only (the no-SLAM baseline trajectory)."""
    pose = scenario.true_poses[0].copy()
    poses = [pose.copy()]
    for control in scenario.odometry:
        pose = motion_model(pose, control)
        poses.append(pose.copy())
    return np.stack(poses)
