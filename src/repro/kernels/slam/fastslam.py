"""FastSLAM 1.0: Rao-Blackwellized particle-filter SLAM (mid-2000s).

Each particle carries a pose hypothesis plus an independent 2x2 EKF per
landmark.  This is the deliberately *dated* algorithm of the §2.1
experiment: a perfectly respectable kernel to accelerate in 2008, and a
mistake to accelerate today without asking a domain expert — resampling
is branch-heavy and particle-serial, and the field moved to graph
optimization.  The workload profile it reports is correspondingly
divergent and low-parallel-fraction, which is what makes the E1 result
come out the way practitioners observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.kernels.geometry import wrap_angle
from repro.kernels.slam.common import Observation, SlamScenario, motion_model


@dataclass
class _LandmarkFilter:
    mean: np.ndarray  # (2,)
    cov: np.ndarray   # (2, 2)


@dataclass
class _Particle:
    pose: np.ndarray
    weight: float
    landmarks: Dict[int, _LandmarkFilter] = field(default_factory=dict)


class FastSlam:
    """FastSLAM 1.0 with known data association.

    Args:
        initial_pose: ``[x, y, theta]``.
        n_particles: Particle count (accuracy/compute knob).
        motion_noise: Std devs of ``[translation, rotation]`` per step.
        measurement_noise: Std devs of ``[range, bearing]``.
        seed: RNG seed.
        counter: Optional instrumentation.
    """

    def __init__(self, initial_pose, n_particles: int = 50,
                 motion_noise=(0.05, 0.01), measurement_noise=(0.1, 0.02),
                 seed: int = 0, counter: Optional[OpCounter] = None):
        if n_particles < 1:
            raise ConfigurationError("n_particles must be >= 1")
        initial = np.asarray(initial_pose, dtype=float)
        self.particles = [
            _Particle(pose=initial.copy(), weight=1.0 / n_particles)
            for _ in range(n_particles)
        ]
        self.motion_noise = motion_noise
        self.measurement_noise = measurement_noise
        self.rng = np.random.default_rng(seed)
        self.counter = counter if counter is not None \
            else OpCounter(name="fastslam")

    @property
    def n_particles(self) -> int:
        return len(self.particles)

    def pose(self) -> np.ndarray:
        """Weighted mean pose (circular mean for heading)."""
        weights = np.array([p.weight for p in self.particles])
        weights = weights / weights.sum()
        poses = np.stack([p.pose for p in self.particles])
        x = float(weights @ poses[:, 0])
        y = float(weights @ poses[:, 1])
        sin = float(weights @ np.sin(poses[:, 2]))
        cos = float(weights @ np.cos(poses[:, 2]))
        return np.array([x, y, np.arctan2(sin, cos)])

    def predict(self, control) -> None:
        """Sample each particle's motion with injected noise."""
        sigma_t, sigma_r = self.motion_noise
        for particle in self.particles:
            noisy = np.asarray(control, dtype=float) + self.rng.normal(
                0.0, [sigma_t, sigma_r]
            )
            particle.pose = motion_model(particle.pose, noisy)
        self.counter.add_flops(20.0 * self.n_particles)

    def _update_particle(self, particle: _Particle,
                         obs: Observation) -> float:
        sigma_r, sigma_b = self.measurement_noise
        r_noise = np.diag([sigma_r ** 2, sigma_b ** 2])
        x, y, theta = particle.pose

        if obs.landmark_id not in particle.landmarks:
            lx = x + obs.range_m * np.cos(theta + obs.bearing_rad)
            ly = y + obs.range_m * np.sin(theta + obs.bearing_rad)
            # Initialize covariance through the inverse measurement model.
            dx, dy = lx - x, ly - y
            q = dx * dx + dy * dy
            sqrt_q = np.sqrt(q)
            h = np.array([[dx / sqrt_q, dy / sqrt_q],
                          [-dy / q, dx / q]])
            h_inv = np.linalg.inv(h)
            particle.landmarks[obs.landmark_id] = _LandmarkFilter(
                mean=np.array([lx, ly]),
                cov=h_inv @ r_noise @ h_inv.T,
            )
            self.counter.add_flops(60.0)
            return 1.0  # uninformative weight on initialization

        lm = particle.landmarks[obs.landmark_id]
        dx = lm.mean[0] - x
        dy = lm.mean[1] - y
        q = dx * dx + dy * dy
        sqrt_q = np.sqrt(q)
        if sqrt_q < 1e-9:
            return 1e-12
        predicted = np.array([
            sqrt_q, wrap_angle(np.arctan2(dy, dx) - theta),
        ])
        innovation = np.array([
            obs.range_m - predicted[0],
            wrap_angle(obs.bearing_rad - predicted[1]),
        ])
        h = np.array([[dx / sqrt_q, dy / sqrt_q],
                      [-dy / q, dx / q]])
        s = h @ lm.cov @ h.T + r_noise
        s_inv = np.linalg.inv(s)
        k = lm.cov @ h.T @ s_inv
        lm.mean = lm.mean + k @ innovation
        lm.cov = (np.eye(2) - k @ h) @ lm.cov
        self.counter.add_flops(120.0)

        det = float(np.linalg.det(2.0 * np.pi * s))
        det = max(det, 1e-300)
        exponent = -0.5 * float(innovation @ s_inv @ innovation)
        return float(np.exp(np.clip(exponent, -500.0, 0.0))
                     / np.sqrt(det))

    def update(self, observations: List[Observation]) -> None:
        """Weight particles by likelihood, then resample if degenerate."""
        for particle in self.particles:
            likelihood = 1.0
            for obs in observations:
                likelihood *= self._update_particle(particle, obs)
            particle.weight *= max(likelihood, 1e-300)

        total = sum(p.weight for p in self.particles)
        if total <= 0:
            for p in self.particles:
                p.weight = 1.0 / self.n_particles
        else:
            for p in self.particles:
                p.weight /= total

        effective = 1.0 / sum(p.weight ** 2 for p in self.particles)
        self.counter.add_flops(3.0 * self.n_particles)
        if effective < self.n_particles / 2.0:
            self._resample()

    def _resample(self) -> None:
        """Low-variance (systematic) resampling."""
        n = self.n_particles
        weights = np.array([p.weight for p in self.particles])
        positions = (self.rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0
        indices = np.searchsorted(cumulative, positions)
        new_particles = []
        for idx in indices:
            src = self.particles[int(idx)]
            new_particles.append(_Particle(
                pose=src.pose.copy(),
                weight=1.0 / n,
                landmarks={
                    lid: _LandmarkFilter(lm.mean.copy(), lm.cov.copy())
                    for lid, lm in src.landmarks.items()
                },
            ))
        self.particles = new_particles
        self.counter.add_int_ops(20.0 * n)
        self.counter.add_read(8.0 * n * 8)
        self.counter.add_write(8.0 * n * 8)

    def run(self, scenario: SlamScenario) -> np.ndarray:
        """Process a whole scenario; returns the estimated trajectory."""
        trajectory = [self.pose()]
        for step in range(scenario.n_steps):
            self.predict(scenario.odometry[step])
            self.update(scenario.observations[step])
            trajectory.append(self.pose())
        return np.stack(trajectory)

    def profile(self) -> WorkloadProfile:
        """Measured profile: particle-parallel but branchy (resampling,
        per-particle map divergence)."""
        return self.counter.profile(
            parallel_fraction=0.8,
            divergence=DivergenceClass.HIGH,
            op_class="particle",
        )
