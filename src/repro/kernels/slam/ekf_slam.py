"""EKF-SLAM: the classic joint-state extended Kalman filter.

State is ``[x, y, theta, lm0x, lm0y, lm1x, lm1y, ...]`` with a dense
covariance — the O(n^2)-per-update structure whose linear-algebra core
(small GEMMs, rank updates) is exactly the cross-cutting kernel class the
paper's §2.3 favors.  Instrumented per update so the measured profile
scales with the *actual* number of landmarks in view.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.kernels.geometry import wrap_angle
from repro.kernels.slam.common import Observation, SlamScenario, motion_model


class EkfSlam:
    """EKF-SLAM with known data association.

    Args:
        initial_pose: ``[x, y, theta]`` prior mean.
        motion_noise: Std devs of ``[translation, rotation]`` per step.
        measurement_noise: Std devs of ``[range, bearing]``.
        counter: Optional op instrumentation.
    """

    def __init__(self, initial_pose, motion_noise=(0.05, 0.01),
                 measurement_noise=(0.1, 0.02),
                 counter: Optional[OpCounter] = None):
        self.mean = np.asarray(initial_pose, dtype=float).copy()
        if self.mean.shape != (3,):
            raise ConfigurationError("initial_pose must be [x, y, theta]")
        self.cov = np.diag([1e-6, 1e-6, 1e-6])
        self.motion_noise = motion_noise
        self.measurement_noise = measurement_noise
        self.landmark_index = {}  # landmark_id -> state offset
        self.counter = counter if counter is not None \
            else OpCounter(name="ekf-slam")

    @property
    def n_landmarks(self) -> int:
        return len(self.landmark_index)

    @property
    def state_dim(self) -> int:
        return self.mean.shape[0]

    def pose(self) -> np.ndarray:
        return self.mean[:3].copy()

    def landmark(self, landmark_id: int) -> np.ndarray:
        offset = self.landmark_index[landmark_id]
        return self.mean[offset:offset + 2].copy()

    def predict(self, control) -> None:
        """Propagate pose mean/covariance through the unicycle model."""
        ds, dtheta = control
        theta = self.mean[2]
        self.mean[:3] = motion_model(self.mean[:3], np.asarray(control))

        n = self.state_dim
        g = np.eye(n)
        g[0, 2] = -ds * np.sin(theta)
        g[1, 2] = ds * np.cos(theta)

        sigma_t, sigma_r = self.motion_noise
        v = np.zeros((n, 2))
        v[0, 0] = np.cos(theta)
        v[1, 0] = np.sin(theta)
        v[2, 1] = 1.0
        q = np.diag([sigma_t ** 2, sigma_r ** 2])

        self.cov = g @ self.cov @ g.T + v @ q @ v.T
        self.counter.add_gemm(n, n, n)
        self.counter.add_gemm(n, n, n)
        self.counter.add_flops(4.0 * n)

    def _initialize_landmark(self, obs: Observation) -> None:
        x, y, theta = self.mean[:3]
        lx = x + obs.range_m * np.cos(theta + obs.bearing_rad)
        ly = y + obs.range_m * np.sin(theta + obs.bearing_rad)
        offset = self.state_dim
        self.landmark_index[obs.landmark_id] = offset
        self.mean = np.concatenate([self.mean, [lx, ly]])
        n = self.state_dim
        new_cov = np.zeros((n, n))
        new_cov[:n - 2, :n - 2] = self.cov
        # Large prior uncertainty; the next update collapses it.
        new_cov[n - 2:, n - 2:] = np.eye(2) * 100.0
        self.cov = new_cov

    def update(self, observations: List[Observation]) -> None:
        """Sequential EKF updates for one step's observations."""
        sigma_r, sigma_b = self.measurement_noise
        r_noise = np.diag([sigma_r ** 2, sigma_b ** 2])
        for obs in observations:
            if obs.landmark_id not in self.landmark_index:
                self._initialize_landmark(obs)
            offset = self.landmark_index[obs.landmark_id]
            n = self.state_dim

            dx = self.mean[offset] - self.mean[0]
            dy = self.mean[offset + 1] - self.mean[1]
            q = dx * dx + dy * dy
            sqrt_q = np.sqrt(q)
            if sqrt_q < 1e-9:
                continue  # landmark on top of robot: Jacobian singular

            predicted = np.array([
                sqrt_q,
                wrap_angle(np.arctan2(dy, dx) - self.mean[2]),
            ])
            innovation = np.array([
                obs.range_m - predicted[0],
                wrap_angle(obs.bearing_rad - predicted[1]),
            ])

            h = np.zeros((2, n))
            h[0, 0] = -dx / sqrt_q
            h[0, 1] = -dy / sqrt_q
            h[1, 0] = dy / q
            h[1, 1] = -dx / q
            h[1, 2] = -1.0
            h[0, offset] = dx / sqrt_q
            h[0, offset + 1] = dy / sqrt_q
            h[1, offset] = -dy / q
            h[1, offset + 1] = dx / q

            ph_t = self.cov @ h.T
            s = h @ ph_t + r_noise
            k = ph_t @ np.linalg.inv(s)
            self.mean = self.mean + k @ innovation
            self.mean[2] = wrap_angle(self.mean[2])
            self.cov = (np.eye(n) - k @ h) @ self.cov
            self.cov = 0.5 * (self.cov + self.cov.T)  # keep symmetric

            self.counter.add_gemm(n, 2, n)   # P H^T
            self.counter.add_gemm(2, 2, n)   # S
            self.counter.add_gemm(n, 2, 2)   # K
            self.counter.add_gemm(n, n, 2)   # K H
            self.counter.add_gemm(n, n, n)   # (I - KH) P
            self.counter.add_flops(30.0)     # innovation terms
            self.counter.note_working_set(8.0 * n * n)

    def run(self, scenario: SlamScenario) -> np.ndarray:
        """Process a whole scenario; returns the estimated trajectory."""
        trajectory = [self.pose()]
        for step in range(scenario.n_steps):
            self.predict(scenario.odometry[step])
            self.update(scenario.observations[step])
            trajectory.append(self.pose())
        return np.stack(trajectory)

    def profile(self) -> WorkloadProfile:
        """Measured profile: dense small-GEMM dominated.

        Per-landmark updates within a step are independent given the
        predicted state, so batched formulations expose nearly all of
        the arithmetic; the serial residue is the per-step predict
        chain.
        """
        return self.counter.profile(
            parallel_fraction=0.995,
            divergence=DivergenceClass.LOW,
            op_class="gemm",
        )
