"""Simultaneous localization and mapping (SLAM) kernels.

Three generations of 2-D landmark/pose SLAM, all runnable on the same
synthetic scenario generator so they are directly comparable:

- :mod:`~repro.kernels.slam.fastslam`   — FastSLAM 1.0 (particle filter,
  mid-2000s vintage): the "obsolete algorithm" of the §2.1 experiment;
- :mod:`~repro.kernels.slam.ekf_slam`   — EKF-SLAM (classic baseline);
- :mod:`~repro.kernels.slam.graph_slam` — pose-graph optimization
  (Gauss-Newton on SE(2)), the structure modern "active SLAM" systems
  build on and what domain experts would actually ask to accelerate.

A 2023 survey found 24 representative active-SLAM approaches (§2.1) —
the lesson encoded here is not "these three are the field" but that the
*choice among generations* changes what deserves silicon.
"""

from repro.kernels.slam.common import (
    Observation,
    SlamScenario,
    ate_rmse,
    make_scenario,
)
from repro.kernels.slam.common import dead_reckoning
from repro.kernels.slam.ekf_slam import EkfSlam
from repro.kernels.slam.fastslam import FastSlam
from repro.kernels.slam.graph_slam import GraphSlam, PoseGraph, build_pose_graph

__all__ = [
    "EkfSlam",
    "FastSlam",
    "GraphSlam",
    "build_pose_graph",
    "dead_reckoning",
    "Observation",
    "PoseGraph",
    "SlamScenario",
    "ate_rmse",
    "make_scenario",
]
