"""Pose-graph SLAM: Gauss-Newton optimization on SE(2).

The modern estimator backbone (g2o/GTSAM-style): poses are nodes,
odometry and loop closures are relative-pose edges, and the MAP estimate
comes from iterated linearization and a sparse normal-equations solve.
This is the algorithm a 2020s SLAM expert would actually nominate for
acceleration (§2.1) — and its hot kernel is *sparse linear algebra*, a
cross-cutting class, not a bespoke particle pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.kernels.geometry import wrap_angle
from repro.kernels.slam.common import SlamScenario


def _rot(theta: float) -> np.ndarray:
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


@dataclass(frozen=True)
class PoseEdge:
    """A relative-pose constraint ``measurement = X_i^{-1} X_j`` (noisy).

    Attributes:
        i, j: Node indices.
        measurement: ``[dx, dy, dtheta]`` in frame ``i``.
        information: 3x3 information (inverse covariance) matrix.
    """

    i: int
    j: int
    measurement: np.ndarray
    information: np.ndarray


class PoseGraph:
    """A 2-D pose graph with odometry and loop-closure edges."""

    def __init__(self, initial_poses: np.ndarray):
        poses = np.asarray(initial_poses, dtype=float)
        if poses.ndim != 2 or poses.shape[1] != 3:
            raise ConfigurationError(
                f"initial_poses must be (n, 3), got {poses.shape}"
            )
        self.poses = poses.copy()
        self.edges: List[PoseEdge] = []

    @property
    def n_poses(self) -> int:
        return self.poses.shape[0]

    def add_edge(self, i: int, j: int, measurement,
                 information=None) -> None:
        if not (0 <= i < self.n_poses and 0 <= j < self.n_poses):
            raise ConfigurationError(
                f"edge ({i}, {j}) references unknown node"
            )
        measurement = np.asarray(measurement, dtype=float)
        if information is None:
            information = np.eye(3)
        self.edges.append(PoseEdge(
            i=i, j=j, measurement=measurement,
            information=np.asarray(information, dtype=float),
        ))

    @staticmethod
    def relative_pose(pose_i: np.ndarray,
                      pose_j: np.ndarray) -> np.ndarray:
        """``X_i^{-1} X_j`` as ``[dx, dy, dtheta]``."""
        ri = _rot(pose_i[2])
        dt = ri.T @ (pose_j[:2] - pose_i[:2])
        return np.array([dt[0], dt[1],
                         wrap_angle(pose_j[2] - pose_i[2])])

    def edge_error(self, edge: PoseEdge) -> np.ndarray:
        """Residual of one edge at the current estimate."""
        predicted = self.relative_pose(self.poses[edge.i],
                                       self.poses[edge.j])
        error = predicted - edge.measurement
        error[2] = wrap_angle(error[2])
        return error

    def chi2(self) -> float:
        """Total weighted squared error (the Gauss-Newton objective)."""
        total = 0.0
        for edge in self.edges:
            e = self.edge_error(edge)
            total += float(e @ edge.information @ e)
        return total


class GraphSlam:
    """Gauss-Newton pose-graph optimizer.

    Args:
        graph: The pose graph (modified in place by :meth:`optimize`).
        counter: Optional instrumentation.
    """

    def __init__(self, graph: PoseGraph,
                 counter: Optional[OpCounter] = None):
        self.graph = graph
        self.counter = counter if counter is not None \
            else OpCounter(name="graph-slam")

    def _jacobians(self, edge: PoseEdge) -> Tuple[np.ndarray, np.ndarray]:
        pose_i = self.graph.poses[edge.i]
        pose_j = self.graph.poses[edge.j]
        theta_i = pose_i[2]
        ri = _rot(theta_i)
        dri_dtheta = np.array([
            [-np.sin(theta_i), np.cos(theta_i)],
            [-np.cos(theta_i), -np.sin(theta_i)],
        ])  # d(R_i^T)/dtheta
        dt = pose_j[:2] - pose_i[:2]

        a = np.zeros((3, 3))
        a[:2, :2] = -ri.T
        a[:2, 2] = dri_dtheta @ dt
        a[2, 2] = -1.0

        b = np.zeros((3, 3))
        b[:2, :2] = ri.T
        b[2, 2] = 1.0
        return a, b

    def optimize(self, iterations: int = 10,
                 tolerance: float = 1e-6) -> List[float]:
        """Run Gauss-Newton; returns the chi2 trace (one entry per
        iteration, including the initial value)."""
        graph = self.graph
        n = graph.n_poses
        trace = [graph.chi2()]
        for _ in range(iterations):
            h = np.zeros((3 * n, 3 * n))
            b = np.zeros(3 * n)
            for edge in graph.edges:
                e = graph.edge_error(edge)
                a_jac, b_jac = self._jacobians(edge)
                omega = edge.information
                si, sj = 3 * edge.i, 3 * edge.j
                h[si:si + 3, si:si + 3] += a_jac.T @ omega @ a_jac
                h[si:si + 3, sj:sj + 3] += a_jac.T @ omega @ b_jac
                h[sj:sj + 3, si:si + 3] += b_jac.T @ omega @ a_jac
                h[sj:sj + 3, sj:sj + 3] += b_jac.T @ omega @ b_jac
                b[si:si + 3] += a_jac.T @ omega @ e
                b[sj:sj + 3] += b_jac.T @ omega @ e
                self.counter.add_flops(400.0)  # 3x3 products per edge
            # Gauge freedom: anchor the first pose.
            h[:3, :3] += np.eye(3) * 1e9

            dx = np.linalg.solve(h, -b)
            # A sparse pose-graph solve costs ~O(edges * block^3) with a
            # good ordering; we charge the sparse count even though the
            # prototype solves densely.
            self.counter.add_flops(27.0 * 30.0 * len(graph.edges))
            self.counter.add_read(8.0 * 9.0 * len(graph.edges))
            self.counter.add_write(8.0 * 3.0 * n)
            self.counter.note_working_set(8.0 * 9.0 * len(graph.edges))

            for k in range(n):
                graph.poses[k] += dx[3 * k:3 * k + 3]
                graph.poses[k, 2] = wrap_angle(graph.poses[k, 2])
            chi2 = graph.chi2()
            trace.append(chi2)
            if abs(trace[-2] - chi2) < tolerance:
                break
        return trace

    def profile(self) -> WorkloadProfile:
        """Measured profile: sparse linear algebra (cross-cutting)."""
        return self.counter.profile(
            parallel_fraction=0.9,
            divergence=DivergenceClass.LOW,
            op_class="linalg",
        )


def build_pose_graph(scenario: SlamScenario,
                     initial: Optional[np.ndarray] = None,
                     closure_interval: int = 25,
                     closure_distance: float = 2.0,
                     closure_noise: Tuple[float, float] = (0.05, 0.01),
                     seed: int = 0) -> PoseGraph:
    """Build a pose graph from a scenario's odometry plus loop closures.

    Odometry edges connect consecutive poses with the measured increment.
    Loop closures are generated by a simulated place-recognition frontend:
    pose pairs at least ``closure_interval`` steps apart whose *true*
    positions are within ``closure_distance`` get a noisy relative-pose
    edge (this stands in for a visual frontend; see DESIGN.md).
    """
    from repro.kernels.slam.common import dead_reckoning

    rng = np.random.default_rng(seed)
    initial_poses = dead_reckoning(scenario) if initial is None \
        else np.asarray(initial, dtype=float)
    graph = PoseGraph(initial_poses)

    odo_info = np.diag([1.0 / scenario.motion_noise[0] ** 2,
                        1.0 / scenario.motion_noise[0] ** 2,
                        1.0 / scenario.motion_noise[1] ** 2])
    for step in range(scenario.n_steps):
        ds, dtheta = scenario.odometry[step]
        graph.add_edge(step, step + 1,
                       np.array([ds, 0.0, dtheta]), odo_info)

    closure_info = np.diag([1.0 / closure_noise[0] ** 2,
                            1.0 / closure_noise[0] ** 2,
                            1.0 / closure_noise[1] ** 2])
    true = scenario.true_poses
    for i in range(0, true.shape[0], 5):
        for j in range(i + closure_interval, true.shape[0], 5):
            if np.linalg.norm(true[j, :2] - true[i, :2]) \
                    > closure_distance:
                continue
            rel = PoseGraph.relative_pose(true[i], true[j])
            noisy = rel + np.array([
                rng.normal(0.0, closure_noise[0]),
                rng.normal(0.0, closure_noise[0]),
                rng.normal(0.0, closure_noise[1]),
            ])
            noisy[2] = wrap_angle(noisy[2])
            graph.add_edge(i, j, noisy, closure_info)
    return graph
