"""Instrumented dense linear algebra.

These wrappers do the math with numpy and *count* it with an
:class:`~repro.core.OpCounter`, so higher-level kernels (EKF updates,
MPC solves, network layers) report exact operation totals that track their
actual control flow.  Standard FLOP-count conventions are used (a fused
multiply-add counts as 2).

Profiles produced here use ``op_class="gemm"`` for matrix products (the
cross-cutting kernel of §2.3) and ``op_class="linalg"`` for factorizations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError

_F64 = 8  # bytes per double


def matmul(a: np.ndarray, b: np.ndarray,
           counter: Optional[OpCounter] = None) -> np.ndarray:
    """``a @ b`` with exact FLOP/byte accounting."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigurationError(
            f"matmul: incompatible shapes {a.shape} x {b.shape}"
        )
    if counter is not None:
        m, k = a.shape
        n = b.shape[1]
        counter.add_gemm(m, n, k, dtype_bytes=_F64)
    return a @ b

def matvec(a: np.ndarray, x: np.ndarray,
           counter: Optional[OpCounter] = None) -> np.ndarray:
    """``a @ x`` for a vector ``x``."""
    if a.ndim != 2 or x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise ConfigurationError(
            f"matvec: incompatible shapes {a.shape} x {x.shape}"
        )
    if counter is not None:
        m, n = a.shape
        counter.add_flops(2.0 * m * n)
        counter.add_read(_F64 * (m * n + n))
        counter.add_write(_F64 * m)
    return a @ x


def cholesky(a: np.ndarray,
             counter: Optional[OpCounter] = None) -> np.ndarray:
    """Lower-triangular Cholesky factor of an SPD matrix.

    Counts the classic ``n^3 / 3`` FLOPs.  Raises
    :class:`numpy.linalg.LinAlgError` on non-SPD input (same contract as
    numpy).
    """
    n = a.shape[0]
    if a.shape != (n, n):
        raise ConfigurationError(f"cholesky: matrix must be square, got {a.shape}")
    if counter is not None:
        counter.add_flops(n ** 3 / 3.0 + n ** 2)
        counter.add_read(_F64 * n * n)
        counter.add_write(_F64 * n * (n + 1) / 2)
        counter.note_working_set(_F64 * n * n)
    return np.linalg.cholesky(a)


def solve_triangular(m: np.ndarray, b: np.ndarray, lower: bool = True,
                     counter: Optional[OpCounter] = None) -> np.ndarray:
    """Solve ``L x = b`` (or ``U x = b``) by substitution.

    Implemented directly (scipy-free) so the op count matches the code.
    """
    n = m.shape[0]
    if m.shape != (n, n):
        raise ConfigurationError("solve_triangular: matrix must be square")
    b = np.asarray(b, dtype=float)
    x = np.zeros_like(b, dtype=float)
    indices = range(n) if lower else range(n - 1, -1, -1)
    for i in indices:
        if lower:
            acc = m[i, :i] @ x[:i] if i > 0 else 0.0
        else:
            acc = m[i, i + 1:] @ x[i + 1:] if i < n - 1 else 0.0
        if m[i, i] == 0:
            raise ConfigurationError("solve_triangular: singular matrix")
        x[i] = (b[i] - acc) / m[i, i]
    if counter is not None:
        extra = b.shape[1] if b.ndim == 2 else 1
        counter.add_flops(float(n) * n * extra)
        counter.add_read(_F64 * (n * n / 2 + n * extra))
        counter.add_write(_F64 * n * extra)
    return x


def solve_spd(a: np.ndarray, b: np.ndarray,
              counter: Optional[OpCounter] = None) -> np.ndarray:
    """Solve ``A x = b`` for SPD ``A`` via Cholesky + two substitutions."""
    low = cholesky(a, counter=counter)
    y = solve_triangular(low, b, lower=True, counter=counter)
    return solve_triangular(low.T, y, lower=False, counter=counter)


def qr_decomposition(a: np.ndarray,
                     counter: Optional[OpCounter] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Householder QR with the ``2mn^2 - 2n^3/3`` FLOP count."""
    m, n = a.shape
    if counter is not None:
        counter.add_flops(2.0 * m * n * n - 2.0 * n ** 3 / 3.0)
        counter.add_read(_F64 * m * n)
        counter.add_write(_F64 * (m * m + m * n))
        counter.note_working_set(_F64 * (m * m + m * n))
    q, r = np.linalg.qr(a)
    return q, r


def gemm_profile(m: int, n: int, k: int,
                 dtype_bytes: int = 8,
                 name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form profile of one ``m x k @ k x n`` GEMM.

    GEMM is embarrassingly parallel and branch-free: the canonical
    cross-cutting kernel (§2.3).
    """
    counter = OpCounter(name=name or f"gemm-{m}x{n}x{k}")
    counter.add_gemm(m, n, k, dtype_bytes=dtype_bytes)
    return counter.profile(parallel_fraction=1.0,
                           divergence=DivergenceClass.NONE,
                           op_class="gemm")


def cholesky_profile(n: int, name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form profile of one ``n x n`` Cholesky factorization.

    Factorizations have a dependent critical path: parallel fraction falls
    with the ``O(n)`` sequential panel chain (modeled as ``1 - 2/n``).
    """
    if n < 1:
        raise ConfigurationError(f"cholesky_profile: n must be >= 1, got {n}")
    counter = OpCounter(name=name or f"cholesky-{n}")
    counter.add_flops(n ** 3 / 3.0 + n ** 2)
    counter.add_read(_F64 * n * n)
    counter.add_write(_F64 * n * (n + 1) / 2)
    counter.note_working_set(_F64 * n * n)
    parallel = max(0.0, 1.0 - 2.0 / n)
    return counter.profile(parallel_fraction=parallel,
                           divergence=DivergenceClass.LOW,
                           op_class="linalg")


def gemv_profile(m: int, n: int, name: Optional[str] = None
                 ) -> WorkloadProfile:
    """Closed-form profile of one matrix-vector product (memory-bound)."""
    counter = OpCounter(name=name or f"gemv-{m}x{n}")
    counter.add_flops(2.0 * m * n)
    counter.add_read(_F64 * (m * n + n))
    counter.add_write(_F64 * m)
    counter.note_working_set(_F64 * m * n)
    return counter.profile(parallel_fraction=0.99,
                           divergence=DivergenceClass.NONE,
                           op_class="gemm")
