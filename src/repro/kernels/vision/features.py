"""Harris corner detection (dense stencil workload).

The per-pixel structure-tensor computation is a textbook stencil kernel:
dense, regular, and embarrassingly parallel — the opposite end of the
spectrum from tree search, and a natural FPGA/ASIC target.  Instrumented
per pixel so the profile scales with image size.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box filter via cumulative sums (O(1) per pixel)."""
    padded = np.pad(image, radius, mode="edge")
    csum = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    csum = np.pad(csum, ((1, 0), (1, 0)))
    size = 2 * radius + 1
    h, w = image.shape
    total = (csum[size:size + h, size:size + w]
             - csum[:h, size:size + w]
             - csum[size:size + h, :w]
             + csum[:h, :w])
    return total / (size * size)


def harris_corners(image: np.ndarray, max_corners: int = 50,
                   k: float = 0.04, quality: float = 0.01,
                   window_radius: int = 2, nms_radius: int = 3,
                   counter: Optional[OpCounter] = None) -> np.ndarray:
    """Detect Harris corners.

    Args:
        image: 2-D float image.
        max_corners: Keep at most this many strongest corners.
        k: Harris sensitivity constant.
        quality: Response threshold as a fraction of the peak response.
        window_radius: Structure-tensor window radius.
        nms_radius: Non-maximum-suppression radius.
        counter: Optional instrumentation.

    Returns:
        ``(n, 2)`` array of ``(x, y)`` pixel coordinates (column, row),
        sorted by decreasing response.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ConfigurationError(f"image must be 2-D, got {image.shape}")
    h, w = image.shape

    # Central-difference gradients.
    gx = np.zeros_like(image)
    gy = np.zeros_like(image)
    gx[:, 1:-1] = (image[:, 2:] - image[:, :-2]) / 2.0
    gy[1:-1, :] = (image[2:, :] - image[:-2, :]) / 2.0

    ixx = _box_filter(gx * gx, window_radius)
    iyy = _box_filter(gy * gy, window_radius)
    ixy = _box_filter(gx * gy, window_radius)

    det = ixx * iyy - ixy * ixy
    trace = ixx + iyy
    response = det - k * trace * trace

    if counter is not None:
        pixels = float(h * w)
        counter.add_flops(pixels * 30.0)  # grads, tensor, response
        counter.add_read(8.0 * pixels * 6.0)
        counter.add_write(8.0 * pixels * 4.0)
        counter.note_working_set(8.0 * pixels * 4.0)

    peak = float(response.max())
    if peak <= 0:
        return np.zeros((0, 2))
    threshold = quality * peak

    # Greedy NMS over sorted candidates.
    candidates = np.argwhere(response > threshold)
    strengths = response[candidates[:, 0], candidates[:, 1]]
    order = np.argsort(strengths)[::-1]
    suppressed = np.zeros((h, w), dtype=bool)
    corners = []
    for idx in order:
        r, c = candidates[idx]
        if suppressed[r, c]:
            continue
        corners.append((c, r))
        if len(corners) >= max_corners:
            break
        r0, r1 = max(0, r - nms_radius), min(h, r + nms_radius + 1)
        c0, c1 = max(0, c - nms_radius), min(w, c + nms_radius + 1)
        suppressed[r0:r1, c0:c1] = True
    return np.array(corners, dtype=float).reshape(-1, 2)


def harris_profile(image_size: int,
                   name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form profile of Harris detection on a square image."""
    if image_size < 1:
        raise ConfigurationError("image_size must be >= 1")
    pixels = float(image_size * image_size)
    counter = OpCounter(name=name or f"harris-{image_size}")
    counter.add_flops(pixels * 30.0)
    counter.add_read(8.0 * pixels * 6.0)
    counter.add_write(8.0 * pixels * 4.0)
    counter.note_working_set(8.0 * pixels * 4.0)
    return counter.profile(parallel_fraction=0.98,
                           divergence=DivergenceClass.NONE,
                           op_class="stencil")
