"""Block-matching stereo disparity.

Classic SAD block matching along epipolar lines — the dense, regular,
integer-heavy kernel that early vision ASICs and FPGA pipelines targeted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError


def block_matching_disparity(left: np.ndarray, right: np.ndarray,
                             max_disparity: int = 16,
                             block_radius: int = 2,
                             counter: Optional[OpCounter] = None
                             ) -> np.ndarray:
    """Dense disparity by SAD block matching (left as reference).

    Args:
        left, right: Rectified 2-D float images of equal shape.
        max_disparity: Search range in pixels.
        block_radius: Half-size of the matching block.
        counter: Optional instrumentation.

    Returns:
        Integer disparity map (same shape; border cells are 0).
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.shape != right.shape:
        raise ConfigurationError("stereo pair must have equal shapes")
    if max_disparity < 1:
        raise ConfigurationError("max_disparity must be >= 1")
    h, w = left.shape
    block = 2 * block_radius + 1
    if w <= max_disparity + block:
        raise ConfigurationError(
            f"image width {w} too small for disparity range"
            f" {max_disparity} and block {block}"
        )

    best_cost = np.full((h, w), np.inf)
    disparity = np.zeros((h, w), dtype=np.int32)
    pad = block_radius

    # Vectorized over pixels; loop over disparity hypotheses.
    padded_left = np.pad(left, pad, mode="edge")
    for d in range(max_disparity + 1):
        shifted = np.roll(right, d, axis=1)
        shifted[:, :d] = right[:, [0]]
        padded_shift = np.pad(shifted, pad, mode="edge")
        abs_diff = np.abs(padded_left - padded_shift)
        # Box sum via cumulative sums.
        csum = np.cumsum(np.cumsum(abs_diff, axis=0), axis=1)
        csum = np.pad(csum, ((1, 0), (1, 0)))
        cost = (csum[block:block + h, block:block + w]
                - csum[:h, block:block + w]
                - csum[block:block + h, :w]
                + csum[:h, :w])
        better = cost < best_cost
        best_cost[better] = cost[better]
        disparity[better] = d

    if counter is not None:
        pixels = float(h * w)
        hypotheses = float(max_disparity + 1)
        counter.add_int_ops(pixels * hypotheses * 8.0)  # SAD + compare
        counter.add_read(8.0 * pixels * hypotheses * 2.0)
        counter.add_write(4.0 * pixels)
        counter.note_working_set(8.0 * pixels * 3.0)

    disparity[:pad, :] = 0
    disparity[-pad:, :] = 0
    disparity[:, :pad] = 0
    disparity[:, -pad:] = 0
    return disparity


def stereo_profile(image_size: int, max_disparity: int = 16,
                   name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form block-matching profile (integer stencil class)."""
    pixels = float(image_size * image_size)
    hypotheses = float(max_disparity + 1)
    counter = OpCounter(name=name or f"stereo-{image_size}")
    counter.add_int_ops(pixels * hypotheses * 8.0)
    counter.add_read(8.0 * pixels * hypotheses * 2.0)
    counter.add_write(4.0 * pixels)
    counter.note_working_set(8.0 * pixels * 3.0)
    return counter.profile(parallel_fraction=0.98,
                           divergence=DivergenceClass.NONE,
                           op_class="stencil")
