"""Planar visual-inertial odometry: the full pipeline, end to end.

Every stage is the real kernel from this package running on rendered
images — capture → Harris corners → Lucas-Kanade tracking → RANSAC rigid
motion → IMU-fused pose composition.  The per-stage instrumentation
counters are kept separate so experiment E6 can ask the honest question:
*if I accelerate stage X alone, what happens to the pipeline?*

Geometry note: with the downward orthographic camera of
:mod:`repro.kernels.vision.synthetic`, the pixel-space rigid transform
between consecutive frames encodes the body motion exactly::

    p2 = C + R(th1 - th2) (p1 - C) + S R(-th2) (x1 - x2)

so ``dtheta = -angle(R_img)`` and the world displacement follows from the
current heading estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.profile import (
    DivergenceClass,
    OpCounter,
    WorkloadProfile,
)
from repro.kernels.geometry import wrap_angle
from repro.kernels.slam.common import SlamScenario
from repro.kernels.vision.features import harris_corners
from repro.kernels.vision.optical_flow import lucas_kanade
from repro.kernels.vision.synthetic import CameraModel, render_landmark_image
from repro.kernels.vision.vo import ransac_rigid_2d


@dataclass
class VioConfig:
    """Pipeline configuration.

    Attributes:
        camera: Camera model used to render frames.
        max_corners: Features detected per keyframe.
        min_tracked: Below this tracked-feature count the frame falls back
            to IMU-only propagation.
        gyro_noise_std: Additive noise on the simulated gyro increment.
        odo_noise_std: Additive noise on the simulated speed increment.
        ransac_threshold_px: Inlier threshold for motion estimation.
        seed: RNG seed for rendering/sensor noise.
    """

    camera: CameraModel = field(default_factory=CameraModel)
    max_corners: int = 40
    min_tracked: int = 6
    gyro_noise_std: float = 0.002
    odo_noise_std: float = 0.02
    ransac_threshold_px: float = 1.5
    seed: int = 0


@dataclass
class VioResult:
    """Output of a VIO run.

    Attributes:
        trajectory: ``(n_frames, 3)`` estimated poses.
        tracked_counts: Tracked features per frame transition.
        vision_failures: Frames that fell back to IMU-only propagation.
        stage_profiles: Measured per-stage workload profiles.
    """

    trajectory: np.ndarray
    tracked_counts: List[int]
    vision_failures: int
    stage_profiles: Dict[str, WorkloadProfile]


class PlanarVio:
    """Frame-to-frame planar VIO with IMU fallback."""

    def __init__(self, config: Optional[VioConfig] = None):
        self.config = config or VioConfig()
        self.counters = {
            "detect": OpCounter(name="vio-detect"),
            "track": OpCounter(name="vio-track"),
            "estimate": OpCounter(name="vio-estimate"),
            "fuse": OpCounter(name="vio-fuse"),
        }

    def _stage_profiles(self) -> Dict[str, WorkloadProfile]:
        return {
            "detect": self.counters["detect"].profile(
                parallel_fraction=0.98,
                divergence=DivergenceClass.NONE, op_class="stencil"),
            "track": self.counters["track"].profile(
                parallel_fraction=0.95,
                divergence=DivergenceClass.LOW, op_class="stencil"),
            "estimate": self.counters["estimate"].profile(
                parallel_fraction=0.7,
                divergence=DivergenceClass.HIGH, op_class="linalg"),
            "fuse": self.counters["fuse"].profile(
                parallel_fraction=0.5,
                divergence=DivergenceClass.LOW, op_class="linalg"),
        }

    def run(self, scenario: SlamScenario) -> VioResult:
        """Run the pipeline over a scenario's trajectory and landmarks."""
        cfg = self.config
        camera = cfg.camera
        rng = np.random.default_rng(cfg.seed)
        true_poses = scenario.true_poses
        landmarks = scenario.landmarks

        pose = true_poses[0].copy()
        estimated = [pose.copy()]
        tracked_counts: List[int] = []
        failures = 0

        prev_image = render_landmark_image(camera, true_poses[0],
                                           landmarks, seed=cfg.seed)
        prev_corners = harris_corners(prev_image,
                                      max_corners=cfg.max_corners,
                                      counter=self.counters["detect"])

        center = camera.image_size / 2.0
        for frame in range(1, true_poses.shape[0]):
            image = render_landmark_image(camera, true_poses[frame],
                                          landmarks,
                                          seed=cfg.seed + frame)
            # Simulated IMU/odometer increments (ground truth + noise).
            true_rel = true_poses[frame] - true_poses[frame - 1]
            ds = float(np.hypot(true_rel[0], true_rel[1])
                       + rng.normal(0.0, cfg.odo_noise_std))
            dtheta_imu = float(wrap_angle(true_rel[2])
                               + rng.normal(0.0, cfg.gyro_noise_std))

            used_vision = False
            if prev_corners.shape[0] >= cfg.min_tracked:
                tracked, status = lucas_kanade(
                    prev_image, image, prev_corners,
                    counter=self.counters["track"],
                )
                good = status
                tracked_counts.append(int(good.sum()))
                if good.sum() >= cfg.min_tracked:
                    src = prev_corners[good] - center
                    dst = tracked[good] - center
                    rotation, translation, inliers = ransac_rigid_2d(
                        src, dst,
                        inlier_threshold=cfg.ransac_threshold_px,
                        seed=cfg.seed + frame,
                        counter=self.counters["estimate"],
                    )
                    if inliers.sum() >= cfg.min_tracked // 2:
                        dtheta = float(-np.arctan2(rotation[1, 0],
                                                   rotation[0, 0]))
                        new_theta = wrap_angle(pose[2] + dtheta)
                        c, s = np.cos(new_theta), np.sin(new_theta)
                        r_new = np.array([[c, -s], [s, c]])
                        delta_world = -(r_new @ translation) \
                            / camera.pixels_per_meter
                        pose = np.array([
                            pose[0] + delta_world[0],
                            pose[1] + delta_world[1],
                            new_theta,
                        ])
                        used_vision = True
            else:
                tracked_counts.append(0)

            if not used_vision:
                failures += 1
                theta = wrap_angle(pose[2] + dtheta_imu)
                pose = np.array([
                    pose[0] + ds * np.cos(theta),
                    pose[1] + ds * np.sin(theta),
                    theta,
                ])
            self.counters["fuse"].add_flops(40.0)

            estimated.append(pose.copy())
            prev_image = image
            prev_corners = harris_corners(
                image, max_corners=cfg.max_corners,
                counter=self.counters["detect"],
            )

        return VioResult(
            trajectory=np.stack(estimated),
            tracked_counts=tracked_counts,
            vision_failures=failures,
            stage_profiles=self._stage_profiles(),
        )


def run_vio(scenario: SlamScenario,
            config: Optional[VioConfig] = None) -> VioResult:
    """Convenience: run :class:`PlanarVio` over a scenario."""
    return PlanarVio(config).run(scenario)
