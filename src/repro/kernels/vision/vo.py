"""Rigid 2-D motion estimation from matched point sets.

The geometric core of visual odometry: given points observed in two
frames, recover the rotation + translation between frames (Umeyama /
Procrustes), optionally inside a RANSAC loop for outlier rejection.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError


def estimate_rigid_2d(src: np.ndarray, dst: np.ndarray,
                      counter: Optional[OpCounter] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Least-squares rigid transform mapping ``src`` onto ``dst``.

    Solves ``dst ≈ R @ src + t`` for 2x2 rotation ``R`` and 2-vector ``t``
    (Umeyama without scale, via SVD of the cross-covariance).

    Raises:
        ConfigurationError: Fewer than 2 points or shape mismatch.
    """
    src = np.atleast_2d(np.asarray(src, dtype=float))
    dst = np.atleast_2d(np.asarray(dst, dtype=float))
    if src.shape != dst.shape or src.shape[1] != 2:
        raise ConfigurationError(
            f"point sets must both be (n, 2); got {src.shape}, {dst.shape}"
        )
    n = src.shape[0]
    if n < 2:
        raise ConfigurationError("need >= 2 point pairs")

    mu_src = src.mean(axis=0)
    mu_dst = dst.mean(axis=0)
    cov = (dst - mu_dst).T @ (src - mu_src) / n
    u, _, vt = np.linalg.svd(cov)
    d = np.sign(np.linalg.det(u @ vt))
    rotation = u @ np.diag([1.0, d]) @ vt
    translation = mu_dst - rotation @ mu_src
    if counter is not None:
        counter.add_flops(n * 16.0 + 100.0)
        counter.add_read(8.0 * n * 4.0)
        counter.add_write(8.0 * 6.0)
    return rotation, translation


def rigid_residuals(src: np.ndarray, dst: np.ndarray,
                    rotation: np.ndarray,
                    translation: np.ndarray) -> np.ndarray:
    """Per-point distances ``|dst - (R src + t)|``."""
    mapped = src @ rotation.T + translation
    return np.linalg.norm(dst - mapped, axis=1)


def ransac_rigid_2d(src: np.ndarray, dst: np.ndarray,
                    inlier_threshold: float = 0.1,
                    iterations: int = 50, seed: int = 0,
                    counter: Optional[OpCounter] = None
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """RANSAC wrapper around :func:`estimate_rigid_2d`.

    Returns:
        ``(rotation, translation, inlier_mask)``.  Falls back to the
        all-points fit when no hypothesis finds >= 2 inliers.
    """
    src = np.atleast_2d(np.asarray(src, dtype=float))
    dst = np.atleast_2d(np.asarray(dst, dtype=float))
    n = src.shape[0]
    if n < 2:
        raise ConfigurationError("need >= 2 point pairs")
    rng = np.random.default_rng(seed)

    best_mask = np.zeros(n, dtype=bool)
    for _ in range(iterations):
        pick = rng.choice(n, size=2, replace=False)
        try:
            rotation, translation = estimate_rigid_2d(
                src[pick], dst[pick], counter=counter
            )
        except ConfigurationError:
            continue
        residuals = rigid_residuals(src, dst, rotation, translation)
        mask = residuals < inlier_threshold
        if counter is not None:
            counter.add_flops(n * 10.0)
        if mask.sum() > best_mask.sum():
            best_mask = mask
    if best_mask.sum() < 2:
        rotation, translation = estimate_rigid_2d(src, dst,
                                                  counter=counter)
        return rotation, translation, np.ones(n, dtype=bool)
    rotation, translation = estimate_rigid_2d(
        src[best_mask], dst[best_mask], counter=counter
    )
    return rotation, translation, best_mask
