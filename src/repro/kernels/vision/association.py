"""Data association: matching detections to tracks.

The glue kernel of every perception frontend (feature matching, multi-
object tracking, SLAM loop verification).  Two solvers over the same
cost matrix:

- :func:`greedy_assignment` — the O(n^2 log n) heuristic real-time
  stacks often ship;
- :func:`optimal_assignment` — the Hungarian optimum (via scipy's
  ``linear_sum_assignment``), the accuracy reference.

The gap between them is another §2.2 metric story: greedy is faster and
usually close, but adversarial geometries make it arbitrarily worse —
so "assignment throughput" alone is not the number to optimize.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError


def _validate(cost: np.ndarray) -> np.ndarray:
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2 or cost.size == 0:
        raise ConfigurationError(
            f"cost matrix must be non-empty 2-D, got {cost.shape}"
        )
    if np.isnan(cost).any():
        raise ConfigurationError("cost matrix contains NaN")
    return cost


def greedy_assignment(cost: np.ndarray,
                      max_cost: float = float("inf"),
                      counter: Optional[OpCounter] = None
                      ) -> List[Tuple[int, int]]:
    """Greedy matching: repeatedly take the globally cheapest pair.

    Args:
        cost: ``(n_tracks, n_detections)`` cost matrix.
        max_cost: Gate — pairs above this are never matched.
        counter: Optional instrumentation.

    Returns:
        ``(row, col)`` pairs, each row/col used at most once, sorted by
        row for determinism.
    """
    cost = _validate(cost)
    n_rows, n_cols = cost.shape
    order = np.argsort(cost, axis=None)
    used_rows = np.zeros(n_rows, dtype=bool)
    used_cols = np.zeros(n_cols, dtype=bool)
    matches: List[Tuple[int, int]] = []
    for flat in order:
        row, col = divmod(int(flat), n_cols)
        if used_rows[row] or used_cols[col]:
            continue
        if cost[row, col] > max_cost:
            break  # sorted order: everything after is also gated out
        used_rows[row] = True
        used_cols[col] = True
        matches.append((row, col))
        if used_rows.all() or used_cols.all():
            break
    if counter is not None:
        size = float(n_rows * n_cols)
        counter.add_int_ops(size * np.log2(size + 1) + size)
        counter.add_read(8.0 * size)
        counter.add_write(8.0 * min(n_rows, n_cols) * 2)
    matches.sort()
    return matches


def optimal_assignment(cost: np.ndarray,
                       max_cost: float = float("inf"),
                       counter: Optional[OpCounter] = None
                       ) -> List[Tuple[int, int]]:
    """Minimum-cost assignment (Hungarian), with gating applied after.

    Pairs whose cost exceeds ``max_cost`` are dropped from the optimal
    solution (standard practice: gate, don't force).
    """
    cost = _validate(cost)
    rows, cols = linear_sum_assignment(cost)
    if counter is not None:
        n = float(max(cost.shape))
        counter.add_int_ops(n ** 3)
        counter.add_read(8.0 * cost.size)
        counter.add_write(8.0 * min(cost.shape) * 2)
    return sorted(
        (int(r), int(c)) for r, c in zip(rows, cols)
        if cost[r, c] <= max_cost
    )


def assignment_cost(cost: np.ndarray,
                    matches: List[Tuple[int, int]]) -> float:
    """Total cost of a match set."""
    cost = _validate(cost)
    return float(sum(cost[r, c] for r, c in matches))


def association_profile(n_tracks: int, n_detections: int,
                        optimal: bool = False,
                        name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form association profile (integer/sort heavy, divergent)."""
    if n_tracks < 1 or n_detections < 1:
        raise ConfigurationError("need n_tracks, n_detections >= 1")
    counter = OpCounter(
        name=name or ("hungarian" if optimal else "greedy-assoc")
    )
    size = float(n_tracks * n_detections)
    if optimal:
        counter.add_int_ops(float(max(n_tracks, n_detections)) ** 3)
    else:
        counter.add_int_ops(size * np.log2(size + 1) + size)
    counter.add_read(8.0 * size)
    counter.add_write(8.0 * min(n_tracks, n_detections) * 2)
    counter.note_working_set(8.0 * size)
    return counter.profile(parallel_fraction=0.3,
                           divergence=DivergenceClass.HIGH,
                           op_class="search")
