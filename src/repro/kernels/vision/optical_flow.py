"""Sparse Lucas-Kanade optical flow.

Window-based iterative LK: for each tracked point, solve the 2x2 normal
equations of the local brightness-constancy system.  Regular per-point
work (stencil + tiny solve) with data-dependent iteration counts — a
``LOW``-divergence profile.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError


def _bilinear(image: np.ndarray, ys: np.ndarray,
              xs: np.ndarray) -> np.ndarray:
    """Bilinear sampling with edge clamping."""
    h, w = image.shape
    xs = np.clip(xs, 0.0, w - 1.001)
    ys = np.clip(ys, 0.0, h - 1.001)
    x0 = np.floor(xs).astype(int)
    y0 = np.floor(ys).astype(int)
    fx = xs - x0
    fy = ys - y0
    return ((1 - fy) * (1 - fx) * image[y0, x0]
            + (1 - fy) * fx * image[y0, x0 + 1]
            + fy * (1 - fx) * image[y0 + 1, x0]
            + fy * fx * image[y0 + 1, x0 + 1])


def lucas_kanade(prev_image: np.ndarray, next_image: np.ndarray,
                 points: np.ndarray, window_radius: int = 4,
                 iterations: int = 10, tolerance: float = 0.01,
                 counter: Optional[OpCounter] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Track points from ``prev_image`` into ``next_image``.

    Args:
        prev_image, next_image: 2-D float images of equal shape.
        points: ``(n, 2)`` array of ``(x, y)`` pixel positions.
        window_radius: Half-size of the tracking window.
        iterations: Max LK iterations per point.
        tolerance: Convergence threshold on the update norm (pixels).
        counter: Optional instrumentation.

    Returns:
        ``(tracked_points, status)`` where status marks points that
        converged inside the image.
    """
    prev_image = np.asarray(prev_image, dtype=float)
    next_image = np.asarray(next_image, dtype=float)
    if prev_image.shape != next_image.shape:
        raise ConfigurationError("images must have equal shapes")
    points = np.atleast_2d(np.asarray(points, dtype=float))
    h, w = prev_image.shape
    win = np.arange(-window_radius, window_radius + 1, dtype=float)
    wy, wx = np.meshgrid(win, win, indexing="ij")
    window_pixels = win.size ** 2

    tracked = points.copy()
    status = np.ones(points.shape[0], dtype=bool)
    total_iterations = 0

    for idx, (px, py) in enumerate(points):
        xs = px + wx
        ys = py + wy
        if (px < window_radius + 1 or px > w - window_radius - 2
                or py < window_radius + 1 or py > h - window_radius - 2):
            status[idx] = False
            continue
        template = _bilinear(prev_image, ys, xs)
        gx = (_bilinear(prev_image, ys, xs + 0.5)
              - _bilinear(prev_image, ys, xs - 0.5))
        gy = (_bilinear(prev_image, ys + 0.5, xs)
              - _bilinear(prev_image, ys - 0.5, xs))
        gxx = float(np.sum(gx * gx))
        gxy = float(np.sum(gx * gy))
        gyy = float(np.sum(gy * gy))
        det = gxx * gyy - gxy * gxy
        if det < 1e-9:
            status[idx] = False
            continue

        guess = np.array([px, py])
        converged = False
        for _ in range(iterations):
            total_iterations += 1
            current = _bilinear(next_image, guess[1] + wy,
                                guess[0] + wx)
            diff = current - template
            bx = float(np.sum(diff * gx))
            by = float(np.sum(diff * gy))
            # Solve the 2x2 system G d = -b.
            dx = -(gyy * bx - gxy * by) / det
            dy = -(-gxy * bx + gxx * by) / det
            guess = guess + np.array([dx, dy])
            if not (0 <= guess[0] < w and 0 <= guess[1] < h):
                status[idx] = False
                break
            if dx * dx + dy * dy < tolerance * tolerance:
                converged = True
                break
        tracked[idx] = guess
        if not converged and status[idx]:
            # Accept the final estimate but it may be poor; keep status.
            pass

    if counter is not None:
        counter.add_flops(total_iterations * window_pixels * 12.0
                          + points.shape[0] * window_pixels * 20.0)
        counter.add_read(8.0 * total_iterations * window_pixels * 2.0)
        counter.add_write(8.0 * points.shape[0] * 2.0)
        counter.note_working_set(8.0 * window_pixels * 5.0)
    return tracked, status


def lk_profile(n_points: int, window_radius: int = 4,
               mean_iterations: float = 4.0,
               name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form LK tracking profile."""
    window_pixels = float((2 * window_radius + 1) ** 2)
    counter = OpCounter(name=name or f"lk-{n_points}")
    counter.add_flops(n_points * window_pixels
                      * (12.0 * mean_iterations + 20.0))
    counter.add_read(8.0 * n_points * window_pixels
                     * 2.0 * mean_iterations)
    counter.add_write(8.0 * n_points * 2.0)
    counter.note_working_set(8.0 * window_pixels * 5.0 * n_points)
    return counter.profile(parallel_fraction=0.95,
                           divergence=DivergenceClass.LOW,
                           op_class="stencil")
