"""Perception kernels: synthetic imaging, features, flow, stereo, VIO.

A complete (planar) visual-inertial odometry pipeline built from scratch:
synthetic camera images of a landmark field, Harris corner detection,
Lucas-Kanade tracking, rigid-motion estimation (Umeyama + RANSAC), and an
EKF fusing visual odometry with IMU increments.  This is the Navion-class
workload of §2.1, and the pipeline whose end-to-end behavior (sensor I/O
included) experiment E6 measures.
"""

from repro.kernels.vision.association import (
    greedy_assignment,
    optimal_assignment,
)
from repro.kernels.vision.features import harris_corners
from repro.kernels.vision.optical_flow import lucas_kanade
from repro.kernels.vision.stereo import block_matching_disparity
from repro.kernels.vision.synthetic import (
    CameraModel,
    render_landmark_image,
    visible_landmarks,
)
from repro.kernels.vision.vio import PlanarVio, VioConfig, run_vio
from repro.kernels.vision.vo import estimate_rigid_2d, ransac_rigid_2d

__all__ = [
    "CameraModel",
    "PlanarVio",
    "VioConfig",
    "block_matching_disparity",
    "estimate_rigid_2d",
    "greedy_assignment",
    "harris_corners",
    "optimal_assignment",
    "lucas_kanade",
    "ransac_rigid_2d",
    "render_landmark_image",
    "run_vio",
    "visible_landmarks",
]
