"""Synthetic imaging: a downward-looking camera over a landmark field.

The offline stand-in for a real camera (see the substitution table in
DESIGN.md): world landmarks project into the image plane of a robot-mounted
camera; images are rendered as Gaussian blobs plus sensor noise, so the
feature detector and tracker downstream run on *images*, not on oracle
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CameraModel:
    """A downward-looking orthographic camera on a planar robot.

    Attributes:
        image_size: Square image side length in pixels.
        pixels_per_meter: Orthographic scale.
        noise_std: Additive Gaussian intensity noise (image in [0, 1]).
    """

    image_size: int = 96
    pixels_per_meter: float = 8.0
    noise_std: float = 0.01

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise ConfigurationError("image_size must be >= 8")
        if self.pixels_per_meter <= 0:
            raise ConfigurationError("pixels_per_meter must be > 0")

    @property
    def view_radius_m(self) -> float:
        """Half-extent of the footprint on the ground."""
        return self.image_size / (2.0 * self.pixels_per_meter)

    def world_to_pixel(self, pose: np.ndarray,
                       point: np.ndarray) -> np.ndarray:
        """Project a world (x, y) point into pixel coordinates.

        The camera is centered on the robot and rotates with it.
        """
        c, s = np.cos(pose[2]), np.sin(pose[2])
        rel = np.asarray(point, dtype=float) - pose[:2]
        body = np.array([c * rel[0] + s * rel[1],
                         -s * rel[0] + c * rel[1]])
        center = self.image_size / 2.0
        return center + body * self.pixels_per_meter

    def pixel_to_body(self, pixel: np.ndarray) -> np.ndarray:
        """Back-project a pixel to body-frame meters."""
        center = self.image_size / 2.0
        return (np.asarray(pixel, dtype=float) - center) \
            / self.pixels_per_meter


def visible_landmarks(camera: CameraModel, pose: np.ndarray,
                      landmarks: np.ndarray
                      ) -> List[Tuple[int, np.ndarray]]:
    """Landmarks whose projection falls inside the image.

    Returns ``(landmark_id, pixel_xy)`` pairs.
    """
    result: List[Tuple[int, np.ndarray]] = []
    margin = 3.0
    for lm_id, lm in enumerate(np.atleast_2d(landmarks)):
        pixel = camera.world_to_pixel(pose, lm)
        if (margin <= pixel[0] < camera.image_size - margin
                and margin <= pixel[1] < camera.image_size - margin):
            result.append((lm_id, pixel))
    return result


def render_landmark_image(camera: CameraModel, pose: np.ndarray,
                          landmarks: np.ndarray,
                          blob_sigma: float = 1.2,
                          seed: int = 0) -> np.ndarray:
    """Render the camera view as intensity blobs plus noise.

    Returns an ``(image_size, image_size)`` float image in [0, 1]-ish
    range (noise can push slightly outside).
    """
    size = camera.image_size
    image = np.zeros((size, size))
    ys, xs = np.mgrid[0:size, 0:size]
    for _, pixel in visible_landmarks(camera, pose, landmarks):
        dx = xs - pixel[0]
        dy = ys - pixel[1]
        image += np.exp(-(dx * dx + dy * dy)
                        / (2.0 * blob_sigma ** 2))
    rng = np.random.default_rng(seed)
    image += rng.normal(0.0, camera.noise_std, size=image.shape)
    return np.clip(image, 0.0, 1.5)
