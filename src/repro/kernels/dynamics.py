"""Rigid-body dynamics on serial kinematic chains (spatial algebra).

Implements the two workhorse robotics dynamics algorithms — the Recursive
Newton-Euler Algorithm (RNEA, inverse dynamics) and the Composite Rigid
Body Algorithm (CRBA, joint-space mass matrix) — in Featherstone's spatial
6-vector formulation, plus forward dynamics via ``M(q) qdd = tau - bias``.
These kernels are the target of the robomorphic-computing line of
accelerators the paper cites (§1), and their per-link op counts are what
the hardware models price.

Conventions (Featherstone, *Rigid Body Dynamics Algorithms*):

- spatial motion vectors are ``[angular; linear]``;
- ``X`` matrices transform motion vectors from parent to link coordinates;
- gravity defaults to ``-z`` in the base frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.kernels.geometry import rotation_x, rotation_y, rotation_z, skew

_AXES = {"x": 0, "y": 1, "z": 2}
_ROTATIONS = {"x": rotation_x, "y": rotation_y, "z": rotation_z}

#: Hand-tallied FLOPs per link for one RNEA pass (forward + backward),
#: counting the 6x6 transforms, cross products, and inertia applications
#: actually performed below.
RNEA_FLOPS_PER_LINK = 320.0
#: FLOPs per (i, j) pair touched by CRBA's backward accumulation.
CRBA_FLOPS_PER_PAIR = 170.0
#: Hand-tallied FLOPs per link for one ABA pass (three sweeps with 6x6
#: transforms, the articulated-inertia rank-1 update, and congruences).
ABA_FLOPS_PER_LINK = 850.0


def spatial_rotation(e: np.ndarray) -> np.ndarray:
    """Motion-vector coordinate transform for a pure rotation ``e``."""
    x = np.zeros((6, 6))
    x[:3, :3] = e
    x[3:, 3:] = e
    return x


def spatial_translation(r: np.ndarray) -> np.ndarray:
    """Motion-vector coordinate transform for a pure translation ``r``."""
    x = np.eye(6)
    x[3:, :3] = -skew(np.asarray(r, dtype=float))
    return x


def crm(v: np.ndarray) -> np.ndarray:
    """Spatial cross-product operator for motion vectors (``v x``)."""
    w, lin = v[:3], v[3:]
    x = np.zeros((6, 6))
    x[:3, :3] = skew(w)
    x[3:, :3] = skew(lin)
    x[3:, 3:] = skew(w)
    return x


def crf(v: np.ndarray) -> np.ndarray:
    """Spatial cross-product operator for force vectors (``v x*``)."""
    return -crm(v).T


def spatial_inertia(mass: float, com: np.ndarray,
                    inertia_about_com: np.ndarray) -> np.ndarray:
    """6x6 spatial inertia of a body (link frame at the joint)."""
    if mass < 0:
        raise ConfigurationError(f"mass must be >= 0, got {mass}")
    c = skew(np.asarray(com, dtype=float))
    i = np.zeros((6, 6))
    i[:3, :3] = (np.asarray(inertia_about_com, dtype=float)
                 + mass * (c @ c.T))
    i[:3, 3:] = mass * c
    i[3:, :3] = mass * c.T
    i[3:, 3:] = mass * np.eye(3)
    return i


@dataclass(frozen=True)
class Link:
    """One revolute link of a serial chain.

    Attributes:
        joint_axis: ``"x"``, ``"y"``, or ``"z"`` (axis in link coordinates).
        parent_offset: Joint origin relative to the parent joint, in parent
            coordinates (the fixed tree translation).
        mass: Link mass (kg).
        com: Center of mass in link coordinates.
        inertia_diag: Principal rotational inertia about the COM.
    """

    joint_axis: str = "z"
    parent_offset: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    mass: float = 1.0
    com: Tuple[float, float, float] = (0.5, 0.0, 0.0)
    inertia_diag: Tuple[float, float, float] = (0.01, 0.01, 0.01)

    def __post_init__(self) -> None:
        if self.joint_axis not in _AXES:
            raise ConfigurationError(
                f"joint_axis must be one of {sorted(_AXES)},"
                f" got {self.joint_axis!r}"
            )

    def motion_subspace(self) -> np.ndarray:
        s = np.zeros(6)
        s[_AXES[self.joint_axis]] = 1.0
        return s

    def spatial_inertia(self) -> np.ndarray:
        return spatial_inertia(self.mass, np.array(self.com),
                               np.diag(self.inertia_diag))


class KinematicChain:
    """A serial chain of revolute links with dynamics algorithms."""

    def __init__(self, links: Sequence[Link],
                 gravity: float = 9.81):
        if not links:
            raise ConfigurationError("chain needs at least one link")
        self.links = list(links)
        self.gravity = gravity
        self._inertias = [link.spatial_inertia() for link in self.links]
        self._subspaces = [link.motion_subspace() for link in self.links]

    @property
    def dof(self) -> int:
        return len(self.links)

    def _check_state(self, *vectors: np.ndarray) -> List[np.ndarray]:
        out = []
        for vec in vectors:
            arr = np.asarray(vec, dtype=float)
            if arr.shape != (self.dof,):
                raise ConfigurationError(
                    f"state vector must have shape ({self.dof},),"
                    f" got {arr.shape}"
                )
            out.append(arr)
        return out

    def _link_transforms(self, q: np.ndarray) -> List[np.ndarray]:
        """Parent-to-link motion transforms ``Xup[i]`` at configuration q."""
        xups = []
        for i, link in enumerate(self.links):
            # Rotation by -q maps parent coords into the rotated link frame.
            e = _ROTATIONS[link.joint_axis](-q[i])
            xj = spatial_rotation(e)
            xtree = spatial_translation(np.array(link.parent_offset))
            xups.append(xj @ xtree)
        return xups

    def rnea(self, q: np.ndarray, qd: np.ndarray, qdd: np.ndarray,
             counter: Optional[OpCounter] = None,
             external_force: Optional[np.ndarray] = None) -> np.ndarray:
        """Inverse dynamics: joint torques realizing ``qdd`` at ``(q, qd)``.

        Args:
            q, qd, qdd: Joint positions, velocities, accelerations.
            counter: Optional op counter (per-link instrumentation).
            external_force: Optional spatial force on the end effector,
                expressed in the last link's frame.
        """
        q, qd, qdd = self._check_state(q, qd, qdd)
        n = self.dof
        a_grav = np.array([0.0, 0.0, 0.0, 0.0, 0.0, -self.gravity])
        xups = self._link_transforms(q)

        v = [np.zeros(6) for _ in range(n)]
        a = [np.zeros(6) for _ in range(n)]
        f = [np.zeros(6) for _ in range(n)]
        for i in range(n):
            s = self._subspaces[i]
            vj = s * qd[i]
            if i == 0:
                v[i] = vj
                a[i] = xups[i] @ (-a_grav) + s * qdd[i]
            else:
                v[i] = xups[i] @ v[i - 1] + vj
                a[i] = (xups[i] @ a[i - 1] + s * qdd[i]
                        + crm(v[i]) @ vj)
            inertia = self._inertias[i]
            f[i] = inertia @ a[i] + crf(v[i]) @ (inertia @ v[i])

        if external_force is not None:
            ext = np.asarray(external_force, dtype=float)
            if ext.shape != (6,):
                raise ConfigurationError(
                    f"external_force must be a spatial 6-vector,"
                    f" got {ext.shape}"
                )
            f[n - 1] = f[n - 1] - ext

        tau = np.zeros(n)
        for i in range(n - 1, -1, -1):
            tau[i] = self._subspaces[i] @ f[i]
            if i > 0:
                f[i - 1] = f[i - 1] + xups[i].T @ f[i]

        if counter is not None:
            counter.add_flops(RNEA_FLOPS_PER_LINK * n)
            counter.add_read(8.0 * (3 * n + 36 * n))  # state + inertias
            counter.add_write(8.0 * n)
            counter.note_working_set(8.0 * (36 * n + 18 * n))
        return tau

    def mass_matrix(self, q: np.ndarray,
                    counter: Optional[OpCounter] = None) -> np.ndarray:
        """Joint-space mass matrix ``M(q)`` via CRBA."""
        (q,) = self._check_state(q)
        n = self.dof
        xups = self._link_transforms(q)
        composite = [inertia.copy() for inertia in self._inertias]
        for i in range(n - 1, 0, -1):
            composite[i - 1] += xups[i].T @ composite[i] @ xups[i]

        m = np.zeros((n, n))
        pairs = 0
        for i in range(n):
            fh = composite[i] @ self._subspaces[i]
            m[i, i] = self._subspaces[i] @ fh
            j = i
            while j > 0:
                fh = xups[j].T @ fh
                j -= 1
                m[i, j] = m[j, i] = self._subspaces[j] @ fh
                pairs += 1
        if counter is not None:
            counter.add_flops(CRBA_FLOPS_PER_PAIR * (pairs + n)
                              + 500.0 * (n - 1))  # 6x6 congruence per link
            counter.add_read(8.0 * 36 * n)
            counter.add_write(8.0 * n * n)
            counter.note_working_set(8.0 * (36 * n + n * n))
        return m

    def bias_forces(self, q: np.ndarray, qd: np.ndarray,
                    counter: Optional[OpCounter] = None) -> np.ndarray:
        """Coriolis/centrifugal + gravity torques: ``RNEA(q, qd, 0)``."""
        return self.rnea(q, qd, np.zeros(self.dof), counter=counter)

    def forward_dynamics(self, q: np.ndarray, qd: np.ndarray,
                         tau: np.ndarray,
                         counter: Optional[OpCounter] = None) -> np.ndarray:
        """Joint accelerations: solve ``M(q) qdd = tau - bias(q, qd)``."""
        q, qd, tau = self._check_state(q, qd, tau)
        m = self.mass_matrix(q, counter=counter)
        bias = self.bias_forces(q, qd, counter=counter)
        if counter is not None:
            counter.add_flops(self.dof ** 3 / 3.0 + 2.0 * self.dof ** 2)
        return np.linalg.solve(m, tau - bias)

    def aba(self, q: np.ndarray, qd: np.ndarray, tau: np.ndarray,
            counter: Optional[OpCounter] = None) -> np.ndarray:
        """Forward dynamics in O(n): the Articulated-Body Algorithm.

        Produces the same accelerations as :meth:`forward_dynamics`
        (which is O(n^3) via the mass matrix) without ever forming
        ``M(q)`` — the asymptotic win dedicated dynamics hardware
        pipelines exploit.
        """
        q, qd, tau = self._check_state(q, qd, tau)
        n = self.dof
        a_grav = np.array([0.0, 0.0, 0.0, 0.0, 0.0, -self.gravity])
        xups = self._link_transforms(q)
        subspaces = self._subspaces

        # Pass 1: velocities, bias accelerations, articulated inertias.
        v = [np.zeros(6) for _ in range(n)]
        c = [np.zeros(6) for _ in range(n)]
        inertia_a = [self._inertias[i].copy() for i in range(n)]
        bias_a = [np.zeros(6) for _ in range(n)]
        for i in range(n):
            vj = subspaces[i] * qd[i]
            if i == 0:
                v[i] = vj
            else:
                v[i] = xups[i] @ v[i - 1] + vj
                c[i] = crm(v[i]) @ vj
            bias_a[i] = crf(v[i]) @ (inertia_a[i] @ v[i])

        # Pass 2: backward articulated-inertia recursion.
        big_u = [np.zeros(6) for _ in range(n)]
        d = np.zeros(n)
        u = np.zeros(n)
        for i in range(n - 1, -1, -1):
            s = subspaces[i]
            big_u[i] = inertia_a[i] @ s
            d[i] = float(s @ big_u[i])
            u[i] = tau[i] - float(s @ bias_a[i])
            if d[i] <= 0:
                raise ConfigurationError(
                    f"aba: singular articulated inertia at link {i}"
                )
            if i > 0:
                outer = np.outer(big_u[i], big_u[i]) / d[i]
                ia = inertia_a[i] - outer
                pa = (bias_a[i] + ia @ c[i]
                      + big_u[i] * (u[i] / d[i]))
                inertia_a[i - 1] += xups[i].T @ ia @ xups[i]
                bias_a[i - 1] += xups[i].T @ pa

        # Pass 3: forward acceleration recursion.
        qdd = np.zeros(n)
        a = [np.zeros(6) for _ in range(n)]
        for i in range(n):
            if i == 0:
                a_prime = xups[i] @ (-a_grav) + c[i]
            else:
                a_prime = xups[i] @ a[i - 1] + c[i]
            qdd[i] = (u[i] - float(big_u[i] @ a_prime)) / d[i]
            a[i] = a_prime + subspaces[i] * qdd[i]

        if counter is not None:
            counter.add_flops(ABA_FLOPS_PER_LINK * n)
            counter.add_read(8.0 * 40 * n)
            counter.add_write(8.0 * n)
            counter.note_working_set(8.0 * 90 * n)
        return qdd

    def total_energy(self, q: np.ndarray, qd: np.ndarray) -> float:
        """Kinetic + potential energy (for conservation tests)."""
        q, qd = self._check_state(q, qd)
        kinetic = 0.5 * qd @ self.mass_matrix(q) @ qd
        potential = 0.0
        # Accumulate link frames in base coordinates for COM heights.
        rotation = np.eye(3)
        origin = np.zeros(3)
        for i, link in enumerate(self.links):
            origin = origin + rotation @ np.array(link.parent_offset)
            rotation = rotation @ _ROTATIONS[link.joint_axis](q[i])
            com_world = origin + rotation @ np.array(link.com)
            potential += link.mass * self.gravity * com_world[2]
        return float(kinetic + potential)


def serial_arm(n_links: int, link_length: float = 0.3,
               link_mass: float = 1.0) -> KinematicChain:
    """A standard test arm: ``n`` links, alternating y/z joint axes."""
    if n_links < 1:
        raise ConfigurationError(f"n_links must be >= 1, got {n_links}")
    links = []
    for i in range(n_links):
        axis = "y" if i % 2 == 0 else "z"
        offset = (link_length, 0.0, 0.0) if i > 0 else (0.0, 0.0, 0.0)
        links.append(Link(
            joint_axis=axis,
            parent_offset=offset,
            mass=link_mass,
            com=(link_length / 2.0, 0.0, 0.0),
            inertia_diag=(0.001,
                          link_mass * link_length ** 2 / 12.0,
                          link_mass * link_length ** 2 / 12.0),
        ))
    return KinematicChain(links)


def rnea_profile(n_links: int,
                 name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form profile of one RNEA pass on an ``n``-link chain.

    The recursion has a strictly sequential link-to-link dependency, so the
    parallel fraction is the within-link matrix-op parallelism only
    (robomorphic accelerators exploit exactly this structure).
    """
    counter = OpCounter(name=name or f"rnea-{n_links}")
    counter.add_flops(RNEA_FLOPS_PER_LINK * n_links)
    counter.add_read(8.0 * 39 * n_links)
    counter.add_write(8.0 * n_links)
    counter.note_working_set(8.0 * 54 * n_links)
    return counter.profile(parallel_fraction=0.6,
                           divergence=DivergenceClass.LOW,
                           op_class="dynamics")


def mass_matrix_profile(n_links: int,
                        name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form profile of one CRBA pass on an ``n``-link chain."""
    pairs = n_links * (n_links + 1) / 2.0
    counter = OpCounter(name=name or f"crba-{n_links}")
    counter.add_flops(CRBA_FLOPS_PER_PAIR * pairs + 500.0 * (n_links - 1))
    counter.add_read(8.0 * 36 * n_links)
    counter.add_write(8.0 * n_links * n_links)
    counter.note_working_set(8.0 * (36 * n_links + n_links ** 2))
    return counter.profile(parallel_fraction=0.75,
                           divergence=DivergenceClass.LOW,
                           op_class="dynamics")
