"""Uniform symmetric quantization (fake-quant emulation).

Emulates the rounding a low-precision datapath introduces: values are
scaled to the integer grid of the given bit width, rounded, and scaled
back.  Used by :class:`repro.kernels.ml.network.Mlp` to make the E2
throughput-vs-time-to-accuracy trade physically grounded rather than
asserted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def quantize(x: np.ndarray, bits: int) -> np.ndarray:
    """Fake-quantize to a symmetric ``bits``-bit grid (per-tensor scale).

    Args:
        x: Input array.
        bits: Bit width, >= 2 (one bit is the sign).

    Returns:
        An array of the same shape/dtype, snapped to the grid.
    """
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    x = np.asarray(x, dtype=float)
    peak = float(np.max(np.abs(x))) if x.size else 0.0
    if peak == 0.0:
        return x.copy()
    levels = 2 ** (bits - 1) - 1
    scale = peak / levels
    return np.round(x / scale) * scale


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Map integer codes back to real values (for explicit pipelines)."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    return np.asarray(q, dtype=float) * scale


def quantization_error(x: np.ndarray, bits: int) -> float:
    """RMS error introduced by :func:`quantize` at the given width."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        return 0.0
    err = x - quantize(x, bits)
    return float(np.sqrt(np.mean(err * err)))


def throughput_multiplier(bits: int, baseline_bits: int = 32) -> float:
    """First-order throughput gain from narrower arithmetic.

    Datapath area/energy scale ~linearly with operand width for MACs at
    fixed silicon, so a ``bits``-wide unit fits ``baseline_bits / bits``
    times more lanes — the standard pitch for low-precision accelerators
    (and the throughput side of the E2 trade).
    """
    if bits < 2 or baseline_bits < bits:
        raise ConfigurationError(
            f"need 2 <= bits <= baseline_bits, got {bits}, {baseline_bits}"
        )
    return baseline_bits / bits
