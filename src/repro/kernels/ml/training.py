"""SGD training with time-to-accuracy accounting.

The §2.2 lesson, runnable: :class:`SgdTrainer` records accuracy after
every epoch *and* the modeled wall-clock time of every step on a target
platform, so the same run yields both throughput (steps/s) and
time-to-accuracy — the metric pair whose divergence the paper warns
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.ml.network import Mlp


@dataclass
class TrainingResult:
    """Outcome of one training run.

    Attributes:
        epoch_accuracies: Held-out accuracy after each epoch.
        epoch_losses: Training loss after each epoch.
        steps: Total SGD steps taken.
        modeled_time_s: Modeled wall-clock time (steps x step latency).
        step_latency_s: Modeled per-step latency used.
    """

    epoch_accuracies: List[float] = field(default_factory=list)
    epoch_losses: List[float] = field(default_factory=list)
    steps: int = 0
    modeled_time_s: float = 0.0
    step_latency_s: float = 0.0

    def final_accuracy(self) -> float:
        if not self.epoch_accuracies:
            raise ConfigurationError("no epochs recorded")
        return self.epoch_accuracies[-1]

    def time_to_accuracy(self, target: float) -> float:
        """Modeled seconds until held-out accuracy first reached
        ``target``; ``inf`` if never reached."""
        for epoch, accuracy in enumerate(self.epoch_accuracies, start=1):
            if accuracy >= target:
                steps_so_far = epoch * self.steps \
                    / max(1, len(self.epoch_accuracies))
                return steps_so_far * self.step_latency_s
        return float("inf")

    def throughput_steps_per_s(self) -> float:
        if self.step_latency_s <= 0:
            return float("inf")
        return 1.0 / self.step_latency_s


class SgdTrainer:
    """Mini-batch SGD with per-epoch held-out evaluation.

    Args:
        model: The network to train (quantization configured on it).
        learning_rate: SGD step size.
        batch_size: Mini-batch size.
        step_latency_s: Modeled latency of one training step on the
            target platform (from :mod:`repro.hw`); drives
            time-to-accuracy.
        seed: Shuffling seed.
    """

    def __init__(self, model: Mlp, learning_rate: float = 0.1,
                 batch_size: int = 32, step_latency_s: float = 1e-3,
                 seed: int = 0):
        if learning_rate <= 0 or batch_size < 1 or step_latency_s < 0:
            raise ConfigurationError(
                "learning_rate > 0, batch_size >= 1,"
                " step_latency_s >= 0 required"
            )
        self.model = model
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.step_latency_s = step_latency_s
        self.rng = np.random.default_rng(seed)

    def fit(self, x_train: np.ndarray, y_train: np.ndarray,
            x_test: np.ndarray, y_test: np.ndarray,
            epochs: int = 20) -> TrainingResult:
        """Train for ``epochs`` passes; returns the full learning trace."""
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        x_train = np.asarray(x_train, dtype=float)
        y_train = np.asarray(y_train)
        n = x_train.shape[0]
        result = TrainingResult(step_latency_s=self.step_latency_s)

        for _ in range(epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                grads_w, grads_b, loss = self.model.gradients(
                    x_train[idx], y_train[idx]
                )
                self.model.apply_gradients(grads_w, grads_b,
                                           self.learning_rate)
                epoch_loss += loss
                n_batches += 1
                result.steps += 1
            result.epoch_losses.append(epoch_loss / max(1, n_batches))
            result.epoch_accuracies.append(
                self.model.accuracy(x_test, y_test)
            )
        result.modeled_time_s = result.steps * self.step_latency_s
        return result
