"""A small MLP with manual backprop and optional low-precision emulation.

The quantization hook is the crux of experiment E2: a hardware design that
buys throughput with aggressive precision reduction quantizes weights,
activations, and gradients through :func:`repro.kernels.ml.quantize.quantize`
— the forward/backward math is otherwise identical, so the only difference
between "accurate" and "fast" training is the rounding the accelerator
would introduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.kernels.ml.quantize import quantize
from repro.kernels.ml.tensor import cross_entropy, relu, softmax


@dataclass
class MlpConfig:
    """MLP hyperparameters.

    Attributes:
        layer_sizes: Sizes including input and output
            (e.g. ``[2, 32, 32, 3]``).
        weight_bits: Quantization of weights during compute
            (``None`` = full precision).
        activation_bits: Quantization of activations.
        gradient_bits: Quantization of gradients (the training-accuracy
            killer at low precision).
        seed: Init seed.
    """

    layer_sizes: List[int] = field(default_factory=lambda: [2, 32, 3])
    weight_bits: Optional[int] = None
    activation_bits: Optional[int] = None
    gradient_bits: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2:
            raise ConfigurationError("need >= 2 layer sizes")
        if any(s < 1 for s in self.layer_sizes):
            raise ConfigurationError("layer sizes must be >= 1")


def _maybe_quantize(x: np.ndarray, bits: Optional[int]) -> np.ndarray:
    if bits is None:
        return x
    return quantize(x, bits)


class Mlp:
    """Fully connected ReLU network with softmax cross-entropy loss."""

    def __init__(self, config: MlpConfig,
                 counter: Optional[OpCounter] = None):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        sizes = config.layer_sizes
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out))
            )
            self.biases.append(np.zeros(fan_out))
        self.counter = counter if counter is not None \
            else OpCounter(name="mlp")

    @property
    def n_parameters(self) -> int:
        return sum(w.size for w in self.weights) \
            + sum(b.size for b in self.biases)

    def forward(self, x: np.ndarray
                ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass; returns class probabilities and activations."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        activations = [x]
        h = x
        n_layers = len(self.weights)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            w_eff = _maybe_quantize(w, self.config.weight_bits)
            z = h @ w_eff + b
            self.counter.add_gemm(h.shape[0], w.shape[1], w.shape[0])
            if i < n_layers - 1:
                h = relu(z)
                h = _maybe_quantize(h, self.config.activation_bits)
            else:
                h = z
            activations.append(h)
        return softmax(h), activations

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        probabilities, _ = self.forward(x)
        return np.argmax(probabilities, axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        probabilities, _ = self.forward(x)
        return cross_entropy(probabilities, np.asarray(y))

    def gradients(self, x: np.ndarray, y: np.ndarray
                  ) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
        """Backprop; returns (weight grads, bias grads, batch loss)."""
        y = np.asarray(y)
        probabilities, activations = self.forward(x)
        batch = probabilities.shape[0]
        loss = cross_entropy(probabilities, y)

        delta = probabilities.copy()
        delta[np.arange(batch), y] -= 1.0
        delta /= batch

        weight_grads: List[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: List[np.ndarray] = [np.empty(0)] * len(self.biases)
        for i in range(len(self.weights) - 1, -1, -1):
            a_prev = activations[i]
            grad_w = a_prev.T @ delta
            grad_b = delta.sum(axis=0)
            self.counter.add_gemm(a_prev.shape[1], delta.shape[1],
                                  a_prev.shape[0])
            grad_w = _maybe_quantize(grad_w, self.config.gradient_bits)
            grad_b = _maybe_quantize(grad_b, self.config.gradient_bits)
            weight_grads[i] = grad_w
            bias_grads[i] = grad_b
            if i > 0:
                delta = delta @ self.weights[i].T
                self.counter.add_gemm(delta.shape[0],
                                      self.weights[i].shape[0],
                                      self.weights[i].shape[1])
                delta = delta * (activations[i] > 0)
        return weight_grads, bias_grads, loss

    def apply_gradients(self, weight_grads: List[np.ndarray],
                        bias_grads: List[np.ndarray],
                        learning_rate: float) -> None:
        for w, gw in zip(self.weights, weight_grads):
            w -= learning_rate * gw
        for b, gb in zip(self.biases, bias_grads):
            b -= learning_rate * gb
        self.counter.add_flops(2.0 * self.n_parameters)

    def profile(self) -> WorkloadProfile:
        """Measured profile (GEMM-dominated)."""
        return self.counter.profile(parallel_fraction=0.99,
                                    divergence=DivergenceClass.NONE,
                                    op_class="gemm")
