"""Machine-learning kernels: tensors, networks, training, quantization.

The ML substrate for the §2.2 "Metrics Matter" experiment: an MLP trained
with SGD whose *throughput* can be boosted by low-precision arithmetic —
at the cost of per-step learning progress, so that time-to-accuracy (the
metric practitioners care about) moves the other way.
"""

from repro.kernels.ml.cnn import Cnn, ConvLayer, DenseLayer, small_detector
from repro.kernels.ml.data import make_blobs, make_moons
from repro.kernels.ml.network import Mlp, MlpConfig
from repro.kernels.ml.quantize import (
    dequantize,
    quantization_error,
    quantize,
)
from repro.kernels.ml.tensor import conv2d, max_pool2d, relu, softmax
from repro.kernels.ml.training import SgdTrainer, TrainingResult

__all__ = [
    "Cnn",
    "ConvLayer",
    "DenseLayer",
    "Mlp",
    "MlpConfig",
    "small_detector",
    "SgdTrainer",
    "TrainingResult",
    "conv2d",
    "dequantize",
    "make_blobs",
    "make_moons",
    "max_pool2d",
    "quantization_error",
    "quantize",
    "relu",
    "softmax",
]
