"""Synthetic classification datasets (offline stand-ins for real data)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def make_blobs(n_samples: int = 300, n_classes: int = 3,
               n_features: int = 2, spread: float = 0.8,
               seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian clusters, one per class.

    Returns:
        ``(X, y)`` with ``X`` of shape ``(n_samples, n_features)`` and
        integer labels ``y``.
    """
    if n_samples < n_classes:
        raise ConfigurationError("need n_samples >= n_classes")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4.0, 4.0, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    points = centers[labels] + rng.normal(
        0.0, spread, size=(n_samples, n_features)
    )
    return points, labels


def make_moons(n_samples: int = 300, noise: float = 0.1,
               seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-circles (binary, non-linearly separable)."""
    if n_samples < 2:
        raise ConfigurationError("need n_samples >= 2")
    rng = np.random.default_rng(seed)
    n_upper = n_samples // 2
    n_lower = n_samples - n_upper
    t_upper = rng.uniform(0.0, np.pi, n_upper)
    t_lower = rng.uniform(0.0, np.pi, n_lower)
    upper = np.stack([np.cos(t_upper), np.sin(t_upper)], axis=1)
    lower = np.stack([1.0 - np.cos(t_lower),
                      0.5 - np.sin(t_lower)], axis=1)
    points = np.concatenate([upper, lower])
    points += rng.normal(0.0, noise, size=points.shape)
    labels = np.concatenate([np.zeros(n_upper, dtype=int),
                             np.ones(n_lower, dtype=int)])
    order = rng.permutation(n_samples)
    return points[order], labels[order]


def train_test_split(x: np.ndarray, y: np.ndarray,
                     test_fraction: float = 0.25, seed: int = 0
                     ) -> Tuple[np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
    """Shuffled split into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(x.shape[0])
    n_test = max(1, int(round(test_fraction * x.shape[0])))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]
