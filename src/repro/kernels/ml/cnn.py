"""A small CNN for inference, with systolic-array lowering.

Forward-only convolutional networks are the perception workload GEMM
engines were built for.  This module composes the instrumented tensor
ops into a layer pipeline and — the part the hardware models care
about — lowers every conv/dense layer to its im2col GEMM shape so a
:class:`~repro.hw.systolic.SystolicArrayModel` can price the network
layer by layer, exposing per-layer utilization (the E2/E3
shape-overfitting signal at network granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.systolic import SystolicArrayModel, conv2d_as_gemm
from repro.kernels.ml.tensor import conv2d, max_pool2d, relu, softmax


@dataclass(frozen=True)
class ConvLayer:
    """Conv + ReLU (+ optional 2x2 max pool)."""

    out_channels: int
    kernel: int = 3
    stride: int = 1
    pool: bool = False


@dataclass(frozen=True)
class DenseLayer:
    """Fully connected layer (ReLU except on the output layer)."""

    units: int


Layer = Union[ConvLayer, DenseLayer]


class Cnn:
    """A sequential CNN: conv blocks, then dense layers.

    Args:
        input_shape: ``(channels, height, width)``.
        layers: Layer specs; dense layers must come after all convs.
        n_classes: Output dimension.
        seed: Weight-init seed.
    """

    def __init__(self, input_shape: Tuple[int, int, int],
                 layers: Sequence[Layer], n_classes: int = 10,
                 seed: int = 0):
        if len(input_shape) != 3:
            raise ConfigurationError(
                "input_shape must be (channels, height, width)"
            )
        if n_classes < 2:
            raise ConfigurationError("n_classes must be >= 2")
        self.input_shape = tuple(input_shape)
        self.layers: List[Layer] = list(layers)
        self.n_classes = n_classes
        seen_dense = False
        for layer in self.layers:
            if isinstance(layer, DenseLayer):
                seen_dense = True
            elif seen_dense:
                raise ConfigurationError(
                    "conv layers cannot follow dense layers"
                )

        rng = np.random.default_rng(seed)
        self.conv_weights: List[np.ndarray] = []
        self.conv_biases: List[np.ndarray] = []
        self.dense_weights: List[np.ndarray] = []
        self.dense_biases: List[np.ndarray] = []
        self._gemm_shapes: List[Tuple[str, int, int, int]] = []

        channels, height, width = self.input_shape
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                out_h = (height - layer.kernel) // layer.stride + 1
                out_w = (width - layer.kernel) // layer.stride + 1
                if out_h < 1 or out_w < 1:
                    raise ConfigurationError(
                        f"conv kernel {layer.kernel} does not fit"
                        f" {height}x{width}"
                    )
                scale = np.sqrt(
                    2.0 / (channels * layer.kernel ** 2)
                )
                self.conv_weights.append(rng.normal(
                    0.0, scale,
                    size=(layer.out_channels, channels,
                          layer.kernel, layer.kernel),
                ))
                self.conv_biases.append(
                    np.zeros(layer.out_channels)
                )
                channels = layer.out_channels
                height, width = out_h, out_w
                if layer.pool:
                    if height % 2 or width % 2:
                        raise ConfigurationError(
                            f"pool needs even dims, got"
                            f" {height}x{width}"
                        )
                    height //= 2
                    width //= 2
            else:
                fan_in = channels * height * width \
                    if not self.dense_weights \
                    else self.dense_weights[-1].shape[1]
                scale = np.sqrt(2.0 / fan_in)
                self.dense_weights.append(rng.normal(
                    0.0, scale, size=(fan_in, layer.units)
                ))
                self.dense_biases.append(np.zeros(layer.units))
        final_in = (channels * height * width
                    if not self.dense_weights
                    else self.dense_weights[-1].shape[1])
        self.dense_weights.append(rng.normal(
            0.0, np.sqrt(2.0 / final_in),
            size=(final_in, n_classes),
        ))
        self.dense_biases.append(np.zeros(n_classes))
        self._feature_shape = (channels, height, width)

    @property
    def n_parameters(self) -> int:
        return (sum(w.size + b.size for w, b
                    in zip(self.conv_weights, self.conv_biases))
                + sum(w.size + b.size for w, b
                      in zip(self.dense_weights, self.dense_biases)))

    def forward(self, x: np.ndarray,
                counter: Optional[OpCounter] = None) -> np.ndarray:
        """Class probabilities for a ``(batch, c, h, w)`` input."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[1:] != self.input_shape:
            raise ConfigurationError(
                f"input must be (batch, {self.input_shape}),"
                f" got {x.shape}"
            )
        conv_index = 0
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                x = conv2d(x, self.conv_weights[conv_index],
                           bias=self.conv_biases[conv_index],
                           stride=layer.stride, counter=counter)
                x = relu(x)
                if layer.pool:
                    x = max_pool2d(x, 2)
                conv_index += 1
        h = x.reshape(x.shape[0], -1)
        n_dense = len(self.dense_weights)
        for i, (w, b) in enumerate(zip(self.dense_weights,
                                       self.dense_biases)):
            if counter is not None:
                counter.add_gemm(h.shape[0], w.shape[1], w.shape[0])
            h = h @ w + b
            if i < n_dense - 1:
                h = relu(h)
        return softmax(h)

    def gemm_shapes(self, batch: int = 1
                    ) -> List[Tuple[str, int, int, int]]:
        """im2col GEMM ``(name, M, N, K)`` per weight layer."""
        shapes: List[Tuple[str, int, int, int]] = []
        channels, height, width = self.input_shape
        conv_index = 0
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                m, n, k = conv2d_as_gemm(
                    batch, channels, layer.out_channels,
                    height, width, layer.kernel, layer.stride,
                )
                shapes.append((f"conv{conv_index}", m, n, k))
                out_h = (height - layer.kernel) // layer.stride + 1
                out_w = (width - layer.kernel) // layer.stride + 1
                channels = layer.out_channels
                height, width = out_h, out_w
                if layer.pool:
                    height //= 2
                    width //= 2
                conv_index += 1
        for i, w in enumerate(self.dense_weights):
            shapes.append((f"dense{i}", w.shape[1], batch,
                           w.shape[0]))
        return shapes

    def inference_profile(self, batch: int = 1) -> WorkloadProfile:
        """Closed-form per-inference profile (GEMM-dominated)."""
        counter = OpCounter(name="cnn-inference")
        for _, m, n, k in self.gemm_shapes(batch):
            counter.add_gemm(m, n, k)
        return counter.profile(parallel_fraction=0.999,
                               divergence=DivergenceClass.NONE,
                               op_class="gemm")

    def systolic_latency_s(self, array: SystolicArrayModel,
                           batch: int = 1
                           ) -> List[Tuple[str, float, float]]:
        """Per-layer ``(name, latency_s, utilization)`` on a GEMM
        engine — the layer-shape mismatch report."""
        return [
            (name, array.gemm_latency_s(m, n, k),
             array.utilization(m, n, k))
            for name, m, n, k in self.gemm_shapes(batch)
        ]


def small_detector(seed: int = 0) -> Cnn:
    """A MNIST-scale reference network used by tests and examples."""
    return Cnn(
        input_shape=(1, 28, 28),
        layers=[ConvLayer(8, kernel=5, pool=True),    # 28->24->12
                ConvLayer(16, kernel=3, pool=True),   # 12->10->5
                DenseLayer(64)],
        n_classes=10,
        seed=seed,
    )
