"""Tensor operations: im2col convolution, pooling, activations.

Convolution is lowered to GEMM via im2col — the mapping GEMM engines
(:mod:`repro.hw.systolic`) execute — so the measured op counts here line
up exactly with what the accelerator models price.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError


def im2col(x: np.ndarray, kernel: int, stride: int = 1) -> np.ndarray:
    """Unfold ``(batch, channels, h, w)`` into GEMM columns.

    Returns:
        ``(channels * kernel^2, batch * out_h * out_w)`` matrix.
    """
    if x.ndim != 4:
        raise ConfigurationError(f"expected 4-D input, got {x.shape}")
    batch, channels, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConfigurationError(
            f"kernel {kernel} does not fit input {h}x{w}"
        )
    cols = np.zeros((channels * kernel * kernel,
                     batch * out_h * out_w))
    col = 0
    for b in range(batch):
        for i in range(out_h):
            for j in range(out_w):
                patch = x[b, :, i * stride:i * stride + kernel,
                          j * stride:j * stride + kernel]
                cols[:, col] = patch.ravel()
                col += 1
    return cols


def conv2d(x: np.ndarray, weights: np.ndarray,
           bias: Optional[np.ndarray] = None, stride: int = 1,
           counter: Optional[OpCounter] = None) -> np.ndarray:
    """2-D convolution via im2col + GEMM.

    Args:
        x: ``(batch, in_channels, h, w)`` input.
        weights: ``(out_channels, in_channels, k, k)`` filters.
        bias: Optional ``(out_channels,)`` bias.
        stride: Stride.
        counter: Optional instrumentation (counts the GEMM).

    Returns:
        ``(batch, out_channels, out_h, out_w)`` output.
    """
    if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
        raise ConfigurationError(
            f"weights must be (oc, ic, k, k), got {weights.shape}"
        )
    batch, in_channels, h, w = x.shape
    out_channels, w_in_channels, kernel, _ = weights.shape
    if in_channels != w_in_channels:
        raise ConfigurationError(
            f"input has {in_channels} channels, weights expect"
            f" {w_in_channels}"
        )
    cols = im2col(x, kernel, stride)
    flat_weights = weights.reshape(out_channels, -1)
    out = flat_weights @ cols
    if bias is not None:
        out += np.asarray(bias, dtype=float)[:, None]
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if counter is not None:
        m = out_channels
        k_dim = in_channels * kernel * kernel
        n = batch * out_h * out_w
        counter.add_gemm(m, n, k_dim)
    return out.reshape(out_channels, batch, out_h, out_w) \
        .transpose(1, 0, 2, 3)


def max_pool2d(x: np.ndarray, size: int = 2) -> np.ndarray:
    """Non-overlapping max pooling over ``(batch, c, h, w)``."""
    if x.ndim != 4:
        raise ConfigurationError(f"expected 4-D input, got {x.shape}")
    batch, channels, h, w = x.shape
    if h % size or w % size:
        raise ConfigurationError(
            f"spatial dims ({h}, {w}) not divisible by pool size {size}"
        )
    reshaped = x.reshape(batch, channels, h // size, size,
                         w // size, size)
    return reshaped.max(axis=(3, 5))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


def cross_entropy(probabilities: np.ndarray,
                  labels: np.ndarray) -> float:
    """Mean negative log likelihood of integer labels."""
    probabilities = np.atleast_2d(probabilities)
    n = probabilities.shape[0]
    picked = probabilities[np.arange(n), labels]
    return float(-np.mean(np.log(np.maximum(picked, 1e-12))))
