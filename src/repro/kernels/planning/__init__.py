"""Motion planning kernels: worlds, collision checking, and planners.

The §2.5 experiment ("Chips and Salsa") reproduces the observation of
Thomason et al. (2023) that *software vectorization alone* delivers
orders-of-magnitude motion-planning speedups: collision checking dominates
sampling-based planners, and checking many configurations per instruction
turns a branchy scalar kernel into a dense data-parallel one.  Both code
paths are implemented here — :class:`ScalarCollisionChecker` walks
obstacles one at a time with early exit; :class:`BatchCollisionChecker`
evaluates whole batches with numpy — and both report measured profiles.

Planners: grid A*, RRT, RRT-Connect, PRM, plus shortcut post-processing.
"""

from repro.kernels.planning.astar import GridPlanner, astar
from repro.kernels.planning.collision import (
    BatchCollisionChecker,
    ScalarCollisionChecker,
    collision_profile,
)
from repro.kernels.planning.occupancy import CircleWorld, OccupancyGrid
from repro.kernels.planning.postprocess import path_length, shortcut_path
from repro.kernels.planning.prm import PrmPlanner, PrmResult
from repro.kernels.planning.rrt import (
    RrtConnectPlanner,
    RrtPlanner,
    RrtResult,
)
from repro.kernels.planning.rrtstar import RrtStarPlanner

__all__ = [
    "BatchCollisionChecker",
    "CircleWorld",
    "GridPlanner",
    "OccupancyGrid",
    "PrmPlanner",
    "PrmResult",
    "RrtConnectPlanner",
    "RrtPlanner",
    "RrtResult",
    "RrtStarPlanner",
    "ScalarCollisionChecker",
    "astar",
    "collision_profile",
    "path_length",
    "shortcut_path",
]
