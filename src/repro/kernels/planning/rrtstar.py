"""RRT*: asymptotically optimal sampling-based planning.

RRT finds *a* path; RRT* (Karaman & Frazzoli) keeps improving it by
choosing the cheapest parent in a shrinking neighborhood and rewiring
neighbors through new nodes.  The extra work is — once again — almost
entirely collision checking, and the neighborhood queries batch
naturally, so the §2.5 vectorization story carries over with a bigger
constant.
"""

from __future__ import annotations

import math
from typing import List, Union

import numpy as np

from repro.errors import PlanningError
from repro.kernels.planning.collision import (
    BatchCollisionChecker,
    ScalarCollisionChecker,
)
from repro.kernels.planning.occupancy import CircleWorld
from repro.kernels.planning.rrt import RrtResult, _validate_query

Checker = Union[ScalarCollisionChecker, BatchCollisionChecker]


class RrtStarPlanner:
    """RRT* with goal biasing and shrinking-ball rewiring.

    Args:
        world: Workspace.
        checker: Collision checker.
        step_size: Maximum extension length.
        goal_bias: Probability of sampling the goal.
        edge_resolution: Interpolation spacing for edge validation.
        max_iterations: Sampling budget (more = shorter paths; that is
            the algorithm's contract).
        rewire_factor: Scales the shrinking neighborhood radius
            ``gamma (log n / n)^(1/d)``.
        seed: RNG seed.
    """

    def __init__(self, world: CircleWorld, checker: Checker,
                 step_size: float = 0.8, goal_bias: float = 0.05,
                 edge_resolution: float = 0.05,
                 max_iterations: int = 2000,
                 rewire_factor: float = 1.5, seed: int = 0):
        if rewire_factor <= 0:
            raise PlanningError("rewire_factor must be > 0")
        self.world = world
        self.checker = checker
        self.step_size = step_size
        self.goal_bias = goal_bias
        self.edge_resolution = edge_resolution
        self.max_iterations = max_iterations
        self.rewire_factor = rewire_factor
        self.rng = np.random.default_rng(seed)

    def _radius(self, n_nodes: int) -> float:
        dim = self.world.dim
        # gamma* from the RRT* paper, scaled by the free-space measure
        # upper bound (the full workspace volume).
        volume = float(np.prod(self.world.upper - self.world.lower))
        unit_ball = math.pi ** (dim / 2.0) \
            / math.gamma(dim / 2.0 + 1.0)
        gamma = (2.0 * (1.0 + 1.0 / dim)
                 * volume / unit_ball) ** (1.0 / dim)
        radius = (self.rewire_factor * gamma
                  * (math.log(n_nodes + 1) / (n_nodes + 1))
                  ** (1.0 / dim))
        return min(radius, self.step_size * 4.0)

    def plan(self, start, goal,
             goal_tolerance: float = 0.5) -> RrtResult:
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        _validate_query(self.world, self.checker, start, goal)

        # Nodes in a preallocated (capacity, dim) array that doubles
        # when full: neighborhood queries slice it instead of
        # re-stacking a list of rows every iteration.
        data = np.empty((64, start.shape[0]))
        data[0] = start
        size = 1
        parents: List[int] = [-1]
        costs: List[float] = [0.0]
        goal_candidates: List[int] = []

        def edge_free(a: np.ndarray, b: np.ndarray) -> bool:
            return self.checker.segment_free(a, b,
                                             self.edge_resolution)

        for iteration in range(1, self.max_iterations + 1):
            if self.rng.random() < self.goal_bias:
                target = goal
            else:
                target = self.rng.uniform(self.world.lower,
                                          self.world.upper)
            active = data[:size]
            nearest = int(np.argmin(
                np.linalg.norm(active - target, axis=1)
            ))
            direction = target - data[nearest]
            distance = float(np.linalg.norm(direction))
            if distance < 1e-12:
                continue
            reach = min(self.step_size, distance)
            new = data[nearest] + direction / distance * reach
            if not edge_free(data[nearest], new):
                continue

            # Choose the cheapest valid parent in the neighborhood.
            radius = self._radius(size)
            dists = np.linalg.norm(active - new, axis=1)
            neighborhood = np.flatnonzero(dists <= radius)
            best_parent = nearest
            best_cost = costs[nearest] + float(dists[nearest])
            for idx in neighborhood:
                candidate = costs[int(idx)] + float(dists[int(idx)])
                if candidate < best_cost \
                        and edge_free(data[int(idx)], new):
                    best_parent = int(idx)
                    best_cost = candidate
            if size == data.shape[0]:
                grown = np.empty((2 * data.shape[0], data.shape[1]))
                grown[:size] = data
                data = grown
            data[size] = new
            size += 1
            parents.append(best_parent)
            costs.append(best_cost)
            new_index = size - 1

            # Rewire neighbors through the new node when cheaper.
            for idx in neighborhood:
                idx = int(idx)
                through_new = best_cost + float(dists[idx])
                if through_new + 1e-12 < costs[idx] \
                        and edge_free(new, data[idx]):
                    parents[idx] = new_index
                    delta = costs[idx] - through_new
                    costs[idx] = through_new
                    # Propagate the improvement to descendants.
                    stack = [idx]
                    while stack:
                        current = stack.pop()
                        for child, parent in enumerate(parents):
                            if parent == current:
                                costs[child] -= delta
                                stack.append(child)

            if float(np.linalg.norm(new - goal)) <= goal_tolerance \
                    and edge_free(new, goal):
                goal_candidates.append(new_index)

        if not goal_candidates:
            return RrtResult(path=np.zeros((0, start.shape[0])),
                             iterations=self.max_iterations,
                             n_nodes=size)
        best_end = min(
            goal_candidates,
            key=lambda idx: costs[idx]
            + float(np.linalg.norm(data[idx] - goal)),
        )
        path = [goal]
        index = best_end
        while index >= 0:
            path.append(data[index].copy())
            index = parents[index]
        path.reverse()
        return RrtResult(path=np.stack(path),
                         iterations=self.max_iterations,
                         n_nodes=size)
