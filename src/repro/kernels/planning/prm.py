"""Probabilistic roadmap (PRM) planner.

Multi-query planning: sample a roadmap once, answer many start/goal
queries with graph search.  Roadmap *construction* is the batch-friendly
phase (thousands of independent edge checks), which is why PRM-class
pipelines are a natural fit for both vectorized software and the motion-
planning accelerators (Murray et al.) the paper cites in §2.1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import PlanningError
from repro.kernels.planning.collision import (
    BatchCollisionChecker,
    ScalarCollisionChecker,
)
from repro.kernels.planning.occupancy import CircleWorld

Checker = Union[ScalarCollisionChecker, BatchCollisionChecker]


@dataclass
class PrmResult:
    """Outcome of one PRM query."""

    path: np.ndarray
    cost: float
    expanded: int

    @property
    def found(self) -> bool:
        return self.path.shape[0] > 0


class PrmPlanner:
    """k-nearest PRM with Dijkstra queries.

    Args:
        world: Workspace.
        checker: Collision checker (scalar or batch); when a batch checker
            is supplied, roadmap edges are validated in one vectorized
            call per node.
        n_samples: Roadmap size.
        k_neighbors: Connection degree.
        edge_resolution: Interpolation spacing for edge validation.
        seed: RNG seed.
    """

    def __init__(self, world: CircleWorld, checker: Checker,
                 n_samples: int = 300, k_neighbors: int = 10,
                 edge_resolution: float = 0.05, seed: int = 0):
        if n_samples < 2:
            raise PlanningError("PRM needs n_samples >= 2")
        self.world = world
        self.checker = checker
        self.n_samples = n_samples
        self.k_neighbors = k_neighbors
        self.edge_resolution = edge_resolution
        self.rng = np.random.default_rng(seed)
        self.nodes: Optional[np.ndarray] = None
        self.adjacency: Dict[int, List[Tuple[int, float]]] = {}
        self.edges_checked = 0

    def build(self) -> None:
        """Sample free configurations and connect k-nearest neighbors."""
        samples = []
        while len(samples) < self.n_samples:
            batch = self.rng.uniform(
                self.world.lower, self.world.upper,
                size=(self.n_samples, self.world.dim),
            )
            if isinstance(self.checker, BatchCollisionChecker):
                free = self.checker.points_free(batch)
                samples.extend(batch[free])
            else:
                samples.extend(p for p in batch
                               if self.checker.point_free(p))
        self.nodes = np.stack(samples[:self.n_samples])
        self.adjacency = {i: [] for i in range(self.n_samples)}

        dists = np.linalg.norm(
            self.nodes[:, None, :] - self.nodes[None, :, :], axis=2
        )
        np.fill_diagonal(dists, np.inf)
        for i in range(self.n_samples):
            neighbors = np.argsort(dists[i])[:self.k_neighbors]
            starts = np.repeat(self.nodes[i][None, :], len(neighbors),
                               axis=0)
            ends = self.nodes[neighbors]
            if isinstance(self.checker, BatchCollisionChecker):
                valid = self.checker.segments_free(
                    starts, ends, resolution=self.edge_resolution
                )
            else:
                valid = np.array([
                    self.checker.segment_free(s, e, self.edge_resolution)
                    for s, e in zip(starts, ends)
                ])
            self.edges_checked += len(neighbors)
            for j, ok in zip(neighbors, valid):
                if ok:
                    d = float(dists[i, j])
                    self.adjacency[i].append((int(j), d))
                    self.adjacency[int(j)].append((i, d))

    def _connect_query_point(self, point: np.ndarray) -> List[Tuple[int, float]]:
        assert self.nodes is not None
        dists = np.linalg.norm(self.nodes - point, axis=1)
        order = np.argsort(dists)[:max(self.k_neighbors, 5)]
        links = []
        for j in order:
            if self.checker.segment_free(point, self.nodes[j],
                                         self.edge_resolution):
                links.append((int(j), float(dists[j])))
        return links

    def query(self, start, goal) -> PrmResult:
        """Dijkstra over the roadmap between start and goal."""
        if self.nodes is None:
            self.build()
        assert self.nodes is not None
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        if not self.checker.point_free(start):
            raise PlanningError(f"start {start.tolist()} is in collision")
        if not self.checker.point_free(goal):
            raise PlanningError(f"goal {goal.tolist()} is in collision")

        start_links = self._connect_query_point(start)
        goal_links = self._connect_query_point(goal)
        if not start_links or not goal_links:
            return PrmResult(np.zeros((0, self.world.dim)),
                             float("inf"), 0)

        start_id, goal_id = -1, -2
        graph: Dict[int, List[Tuple[int, float]]] = {
            node: list(edges) for node, edges in self.adjacency.items()
        }
        graph[start_id] = start_links
        graph[goal_id] = []
        for j, d in goal_links:
            graph[j] = graph.get(j, []) + [(goal_id, d)]

        dist = {start_id: 0.0}
        parent: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, start_id)]
        visited = set()
        expanded = 0
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            expanded += 1
            if node == goal_id:
                break
            for nxt, w in graph.get(node, []):
                nd = d + w
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    parent[nxt] = node
                    heapq.heappush(heap, (nd, nxt))

        if goal_id not in visited:
            return PrmResult(np.zeros((0, self.world.dim)),
                             float("inf"), expanded)
        ids = [goal_id]
        while ids[-1] != start_id:
            ids.append(parent[ids[-1]])
        ids.reverse()
        coords = []
        for node in ids:
            if node == start_id:
                coords.append(start)
            elif node == goal_id:
                coords.append(goal)
            else:
                coords.append(self.nodes[node])
        return PrmResult(np.stack(coords), dist[goal_id], expanded)
