"""Scalar vs. batch (vectorized) collision checking.

Collision checking consumes the overwhelming majority of a sampling-based
planner's time, which is why it is the cross-cutting kernel the paper's
§2.3/§2.5 discussion orbits.  Two functionally identical checkers:

- :class:`ScalarCollisionChecker` — one configuration at a time, one
  obstacle at a time, with early exit on the first hit.  This is the
  pointer-chasing, branchy baseline.
- :class:`BatchCollisionChecker` — whole ``(batch, dim)`` blocks against
  all obstacles in one fused numpy expression.  It performs *more* raw
  arithmetic (no early exit) but it is straight-line and dense — exactly
  the transformation that unlocked the up-to-500x speedups of Thomason
  et al. (2023) on SIMD CPUs.

Both are instrumented; their measured profiles differ in ``divergence``
and ``parallel_fraction``, which is what makes the §2.5 hardware sweep
honest.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import ConfigurationError
from repro.kernels.planning.occupancy import CircleWorld

#: FLOPs per point-vs-obstacle distance test in ``dim`` dimensions:
#: ``dim`` subtractions + ``dim`` squarings + ``dim - 1`` adds + 1 compare.
def _flops_per_test(dim: int) -> float:
    return 3.0 * dim


class ScalarCollisionChecker:
    """Early-exit scalar collision checking (the branchy baseline)."""

    def __init__(self, world: CircleWorld,
                 counter: Optional[OpCounter] = None):
        self.world = world
        self.counter = counter if counter is not None \
            else OpCounter(name="collision-scalar")
        self.checks = 0  # configurations tested

    def point_free(self, point: np.ndarray) -> bool:
        """Whether one configuration is collision-free."""
        point = np.asarray(point, dtype=float)
        self.checks += 1
        flops_each = _flops_per_test(self.world.dim)
        for center, radius in zip(self.world.centers, self.world.radii):
            diff = point - center
            dist_sq = float(diff @ diff)
            self.counter.add_flops(flops_each)
            self.counter.add_read(8.0 * (self.world.dim + 1))
            if dist_sq <= radius * radius:
                return False  # early exit: remaining obstacles untested
        return True

    def segment_free(self, start: np.ndarray, end: np.ndarray,
                     resolution: float = 0.05) -> bool:
        """Whether the straight motion ``start → end`` is free.

        Checks interpolated states at ``resolution`` spacing, near-to-far;
        exits at the first colliding state.
        """
        start = np.asarray(start, dtype=float)
        end = np.asarray(end, dtype=float)
        if resolution <= 0:
            raise ConfigurationError("resolution must be > 0")
        length = float(np.linalg.norm(end - start))
        n_states = max(2, int(np.ceil(length / resolution)) + 1)
        for t in np.linspace(0.0, 1.0, n_states):
            if not self.point_free(start + t * (end - start)):
                return False
        return True

    def profile(self) -> WorkloadProfile:
        """Measured profile: serial, highly divergent."""
        return self.counter.profile(
            parallel_fraction=0.1,  # early exit serializes the loop
            divergence=DivergenceClass.HIGH,
            op_class="collision",
        )


class BatchCollisionChecker:
    """Vectorized batch collision checking (the §2.5 winner)."""

    def __init__(self, world: CircleWorld,
                 counter: Optional[OpCounter] = None):
        self.world = world
        self.counter = counter if counter is not None \
            else OpCounter(name="collision-batch")
        self.checks = 0

    def points_free(self, points: np.ndarray) -> np.ndarray:
        """Free/colliding status of a ``(batch, dim)`` block of states.

        All obstacles are tested for all states — no early exit — in one
        dense broadcast expression.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        batch = points.shape[0]
        self.checks += batch
        if self.world.n_obstacles == 0:
            return np.ones(batch, dtype=bool)
        # (batch, n_obs, dim) differences, squared distances, compare.
        diff = points[:, None, :] - self.world.centers[None, :, :]
        dist_sq = np.einsum("bod,bod->bo", diff, diff)
        free = np.all(dist_sq > self.world.radii[None, :] ** 2, axis=1)
        tests = float(batch * self.world.n_obstacles)
        self.counter.add_flops(tests * _flops_per_test(self.world.dim))
        self.counter.add_read(
            8.0 * (batch * self.world.dim
                   + self.world.n_obstacles * (self.world.dim + 1))
        )
        self.counter.add_write(1.0 * batch)
        self.counter.note_working_set(
            8.0 * batch * self.world.n_obstacles
        )
        return free

    def point_free(self, point: np.ndarray) -> bool:
        """Scalar-compatible API (batch of one)."""
        return bool(self.points_free(np.atleast_2d(point))[0])

    def segments_free(self, starts: np.ndarray, ends: np.ndarray,
                      resolution: float = 0.05) -> np.ndarray:
        """Free status of a batch of straight motions, fully vectorized.

        All interpolated states of all segments are evaluated in one
        block — the "check whole motions per instruction" structure.
        """
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        if starts.shape != ends.shape:
            raise ConfigurationError(
                f"starts {starts.shape} and ends {ends.shape} must match"
            )
        if resolution <= 0:
            raise ConfigurationError("resolution must be > 0")
        lengths = np.linalg.norm(ends - starts, axis=1)
        n_states = max(2, int(np.ceil(lengths.max() / resolution)) + 1)
        ts = np.linspace(0.0, 1.0, n_states)
        # (segments, states, dim)
        states = (starts[:, None, :]
                  + ts[None, :, None] * (ends - starts)[:, None, :])
        flat = states.reshape(-1, starts.shape[1])
        free = self.points_free(flat).reshape(len(starts), n_states)
        return np.all(free, axis=1)

    def segment_free(self, start: np.ndarray, end: np.ndarray,
                     resolution: float = 0.05) -> bool:
        return bool(self.segments_free(start[None, :], end[None, :],
                                       resolution=resolution)[0])

    def profile(self) -> WorkloadProfile:
        """Measured profile: dense, branch-free, embarrassingly parallel."""
        return self.counter.profile(
            parallel_fraction=0.999,
            divergence=DivergenceClass.NONE,
            op_class="collision",
        )


def collision_profile(n_checks: int, n_obstacles: int, dim: int = 2,
                      vectorized: bool = True,
                      early_exit_fraction: float = 0.35,
                      name: Optional[str] = None) -> WorkloadProfile:
    """Closed-form collision-checking profile for hardware studies.

    Args:
        n_checks: Number of configurations tested.
        n_obstacles: Obstacles per test.
        dim: Configuration dimension.
        vectorized: Batch (dense, no early exit) vs. scalar (early exit
            after ``early_exit_fraction`` of obstacles on average).
        early_exit_fraction: Mean fraction of obstacles examined before a
            scalar check resolves.
    """
    if n_checks < 0 or n_obstacles < 0:
        raise ConfigurationError("counts must be >= 0")
    counter = OpCounter(
        name=name or ("collision-batch" if vectorized else "collision-scalar")
    )
    if vectorized:
        tests = float(n_checks) * n_obstacles
        counter.add_flops(tests * _flops_per_test(dim))
        counter.add_read(8.0 * (n_checks * dim + n_obstacles * (dim + 1)))
        counter.add_write(1.0 * n_checks)
        counter.note_working_set(8.0 * min(n_checks, 4096) * n_obstacles)
        return counter.profile(parallel_fraction=0.999,
                               divergence=DivergenceClass.NONE,
                               op_class="collision")
    tests = float(n_checks) * n_obstacles * early_exit_fraction
    counter.add_flops(tests * _flops_per_test(dim))
    counter.add_read(8.0 * tests * (dim + 1))
    counter.add_write(1.0 * n_checks)
    counter.note_working_set(8.0 * n_obstacles * (dim + 1))
    return counter.profile(parallel_fraction=0.1,
                           divergence=DivergenceClass.HIGH,
                           op_class="collision")
