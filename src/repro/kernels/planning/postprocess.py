"""Path post-processing: shortcutting and length metrics.

Sampling-based paths are jagged; shortcutting is the standard cleanup pass
(and another batch-checkable kernel).  Path-length ratio versus the
straight-line distance is one of the task-quality metrics §2.2 asks for.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import PlanningError
from repro.kernels.planning.collision import (
    BatchCollisionChecker,
    ScalarCollisionChecker,
)

Checker = Union[ScalarCollisionChecker, BatchCollisionChecker]


def path_length(path: np.ndarray) -> float:
    """Total polyline length of an ``(n, dim)`` waypoint array."""
    path = np.asarray(path, dtype=float)
    if path.ndim != 2 or path.shape[0] < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(path, axis=0), axis=1).sum())


def path_length_ratio(path: np.ndarray) -> float:
    """Path length / straight-line distance (>= 1; 1 is optimal)."""
    path = np.asarray(path, dtype=float)
    if path.shape[0] < 2:
        raise PlanningError("path needs >= 2 waypoints")
    direct = float(np.linalg.norm(path[-1] - path[0]))
    if direct == 0:
        return 1.0
    return path_length(path) / direct


def shortcut_path(path: np.ndarray, checker: Checker,
                  attempts: int = 100, edge_resolution: float = 0.05,
                  seed: int = 0) -> np.ndarray:
    """Random-pair shortcutting: repeatedly try to splice straight edges.

    Args:
        path: ``(n, dim)`` waypoint array.
        checker: Collision checker for candidate shortcuts.
        attempts: Random (i, j) pairs to try.
        edge_resolution: Interpolation spacing.
        seed: RNG seed.

    Returns:
        A path with the same endpoints, never longer than the input.
    """
    path = np.asarray(path, dtype=float)
    if path.shape[0] < 3:
        return path.copy()
    rng = np.random.default_rng(seed)
    points = [p for p in path]
    for _ in range(attempts):
        if len(points) < 3:
            break
        i, j = sorted(rng.choice(len(points), size=2, replace=False))
        if j - i < 2:
            continue
        if checker.segment_free(points[i], points[j],
                                resolution=edge_resolution):
            points = points[:i + 1] + points[j:]
    return np.stack(points)
