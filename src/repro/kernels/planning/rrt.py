"""RRT and RRT-Connect sampling-based planners.

Planner logic is deliberately independent of *how* collisions are checked:
both planners accept either checker from
:mod:`repro.kernels.planning.collision`, so the §2.5 experiment can hold
the algorithm constant and swap only the kernel implementation — isolating
the vectorization effect the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.errors import PlanningError
from repro.kernels.planning.collision import (
    BatchCollisionChecker,
    ScalarCollisionChecker,
)
from repro.kernels.planning.occupancy import CircleWorld

Checker = Union[ScalarCollisionChecker, BatchCollisionChecker]


@dataclass
class RrtResult:
    """Outcome of one sampling-based planning query.

    Attributes:
        path: ``(n, dim)`` waypoint array (empty if planning failed).
        iterations: Sampler iterations consumed.
        n_nodes: Tree size(s) at termination.
        found: Whether the goal was connected.
    """

    path: np.ndarray
    iterations: int
    n_nodes: int

    @property
    def found(self) -> bool:
        return self.path.shape[0] > 0

    def length(self) -> float:
        if not self.found:
            return float("inf")
        return float(np.linalg.norm(np.diff(self.path, axis=0),
                                    axis=1).sum())


class _Tree:
    """A growable array-backed tree with parent links.

    Nodes live in one preallocated ``(capacity, dim)`` array that
    doubles when full, so :meth:`nearest` is a vectorized distance over
    a slice — stacking a list of rows per query would make every
    nearest-neighbor lookup O(n) in *allocation*, not just arithmetic.
    """

    def __init__(self, root: np.ndarray, capacity: int = 64):
        root = np.asarray(root, dtype=float)
        self._data = np.empty((max(int(capacity), 1), root.shape[0]))
        self._data[0] = root
        self._size = 1
        self.parents: List[int] = [-1]

    def node(self, index: int) -> np.ndarray:
        return self._data[index]

    def nearest(self, point: np.ndarray) -> int:
        nodes = self._data[:self._size]
        return int(np.argmin(np.linalg.norm(nodes - point, axis=1)))

    def add(self, point: np.ndarray, parent: int) -> int:
        if self._size == self._data.shape[0]:
            grown = np.empty((2 * self._data.shape[0],
                              self._data.shape[1]))
            grown[:self._size] = self._data
            self._data = grown
        self._data[self._size] = point
        self.parents.append(parent)
        self._size += 1
        return self._size - 1

    def path_from_root(self, index: int) -> List[np.ndarray]:
        path = []
        while index >= 0:
            path.append(self._data[index].copy())
            index = self.parents[index]
        path.reverse()
        return path

    def __len__(self) -> int:
        return self._size


def _validate_query(world: CircleWorld, checker: Checker,
                    start: np.ndarray, goal: np.ndarray) -> None:
    if not checker.point_free(start):
        raise PlanningError(f"start {start.tolist()} is in collision")
    if not checker.point_free(goal):
        raise PlanningError(f"goal {goal.tolist()} is in collision")
    if not (world.contains(start)[0] and world.contains(goal)[0]):
        raise PlanningError("start/goal outside workspace bounds")


class RrtPlanner:
    """Single-tree RRT with goal biasing.

    Args:
        world: Workspace (sampling bounds + obstacles).
        checker: Collision checker (scalar or batch).
        step_size: Maximum extension length.
        goal_bias: Probability of sampling the goal.
        edge_resolution: Interpolation spacing for edge validation.
        max_iterations: Sampling budget.
        seed: RNG seed (reproducible planning).
    """

    def __init__(self, world: CircleWorld, checker: Checker,
                 step_size: float = 0.5, goal_bias: float = 0.05,
                 edge_resolution: float = 0.05,
                 max_iterations: int = 5000, seed: int = 0):
        self.world = world
        self.checker = checker
        self.step_size = step_size
        self.goal_bias = goal_bias
        self.edge_resolution = edge_resolution
        self.max_iterations = max_iterations
        self.rng = np.random.default_rng(seed)

    def plan(self, start, goal, goal_tolerance: float = 1e-6) -> RrtResult:
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        _validate_query(self.world, self.checker, start, goal)
        tree = _Tree(start)

        for iteration in range(1, self.max_iterations + 1):
            if self.rng.random() < self.goal_bias:
                target = goal
            else:
                target = self.rng.uniform(self.world.lower,
                                          self.world.upper)
            near_idx = tree.nearest(target)
            near = tree.node(near_idx)
            direction = target - near
            dist = float(np.linalg.norm(direction))
            if dist < 1e-12:
                continue
            reach = min(self.step_size, dist)
            new = near + direction / dist * reach
            if not self.checker.segment_free(near, new,
                                             self.edge_resolution):
                continue
            new_idx = tree.add(new, near_idx)
            # Try to connect directly to the goal from the new node.
            if (np.linalg.norm(new - goal) <= self.step_size
                    and self.checker.segment_free(new, goal,
                                                  self.edge_resolution)):
                goal_idx = tree.add(goal, new_idx)
                path = np.stack(tree.path_from_root(goal_idx))
                return RrtResult(path=path, iterations=iteration,
                                 n_nodes=len(tree))
            if np.linalg.norm(new - goal) <= goal_tolerance:
                path = np.stack(tree.path_from_root(new_idx))
                return RrtResult(path=path, iterations=iteration,
                                 n_nodes=len(tree))
        return RrtResult(path=np.zeros((0, start.shape[0])),
                         iterations=self.max_iterations,
                         n_nodes=len(tree))


class RrtConnectPlanner:
    """Bidirectional RRT-Connect (Kuffner & LaValle).

    Grows trees from start and goal; each iteration extends one tree
    toward a sample, then greedily "connects" the other tree toward the
    new node.  Far fewer iterations than RRT on most queries.
    """

    def __init__(self, world: CircleWorld, checker: Checker,
                 step_size: float = 0.5, edge_resolution: float = 0.05,
                 max_iterations: int = 5000, seed: int = 0):
        self.world = world
        self.checker = checker
        self.step_size = step_size
        self.edge_resolution = edge_resolution
        self.max_iterations = max_iterations
        self.rng = np.random.default_rng(seed)

    def _extend(self, tree: _Tree, target: np.ndarray) -> Optional[int]:
        """One bounded step toward target; returns new index or None."""
        near_idx = tree.nearest(target)
        near = tree.node(near_idx)
        direction = target - near
        dist = float(np.linalg.norm(direction))
        if dist < 1e-12:
            return near_idx
        reach = min(self.step_size, dist)
        new = near + direction / dist * reach
        if not self.checker.segment_free(near, new, self.edge_resolution):
            return None
        return tree.add(new, near_idx)

    def _connect(self, tree: _Tree, target: np.ndarray) -> Optional[int]:
        """Repeated extension until reaching target or blocked."""
        last = None
        while True:
            idx = self._extend(tree, target)
            if idx is None:
                return last
            last = idx
            if np.linalg.norm(tree.node(idx) - target) < 1e-9:
                return idx

    def plan(self, start, goal) -> RrtResult:
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        _validate_query(self.world, self.checker, start, goal)
        tree_a = _Tree(start)
        tree_b = _Tree(goal)
        a_is_start = True

        for iteration in range(1, self.max_iterations + 1):
            sample = self.rng.uniform(self.world.lower, self.world.upper)
            new_idx = self._extend(tree_a, sample)
            if new_idx is not None:
                new_node = tree_a.node(new_idx)
                reach_idx = self._connect(tree_b, new_node)
                if (reach_idx is not None
                        and np.linalg.norm(tree_b.node(reach_idx)
                                           - new_node) < 1e-9):
                    path_a = tree_a.path_from_root(new_idx)
                    path_b = tree_b.path_from_root(reach_idx)
                    path_b.reverse()
                    if not a_is_start:
                        path_a, path_b = path_b[::-1], path_a[::-1]
                    full = np.stack(path_a + path_b[1:])
                    return RrtResult(path=full, iterations=iteration,
                                     n_nodes=len(tree_a) + len(tree_b))
            tree_a, tree_b = tree_b, tree_a
            a_is_start = not a_is_start
        return RrtResult(path=np.zeros((0, start.shape[0])),
                         iterations=self.max_iterations,
                         n_nodes=len(tree_a) + len(tree_b))
