"""Workspaces for planning: circular-obstacle worlds and occupancy grids.

:class:`CircleWorld` is the continuous-space environment used by the
sampling-based planners and the closed-loop missions; :class:`OccupancyGrid`
is its rasterized counterpart used by grid search and by mapping kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


class CircleWorld:
    """A d-dimensional world with hyperspherical obstacles.

    Attributes:
        lower, upper: Axis-aligned workspace bounds.
        centers: ``(n_obstacles, dim)`` obstacle centers.
        radii: ``(n_obstacles,)`` obstacle radii.
    """

    def __init__(self, lower, upper, centers=None, radii=None):
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ConfigurationError(
                "CircleWorld bounds must be 1-D arrays of equal length"
            )
        if np.any(self.upper <= self.lower):
            raise ConfigurationError("upper bounds must exceed lower bounds")
        self.dim = self.lower.shape[0]
        if centers is None:
            centers = np.zeros((0, self.dim))
        self.centers = np.asarray(centers, dtype=float).reshape(-1, self.dim)
        if radii is None:
            radii = np.zeros(self.centers.shape[0])
        self.radii = np.asarray(radii, dtype=float).reshape(-1)
        if self.radii.shape[0] != self.centers.shape[0]:
            raise ConfigurationError(
                f"{self.centers.shape[0]} centers but"
                f" {self.radii.shape[0]} radii"
            )
        if np.any(self.radii < 0):
            raise ConfigurationError("obstacle radii must be >= 0")

    @property
    def n_obstacles(self) -> int:
        return self.centers.shape[0]

    def fingerprint_spec(self) -> dict:
        """Identity for :func:`repro.engine.fingerprint.fingerprint`:
        bounds and obstacles fully determine the world."""
        return {"kind": type(self).__name__, "lower": self.lower,
                "upper": self.upper, "centers": self.centers,
                "radii": self.radii}

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Whether each point lies inside the workspace bounds."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.all((points >= self.lower) & (points <= self.upper),
                      axis=1)

    def clearance(self, point: np.ndarray) -> float:
        """Distance from ``point`` to the nearest obstacle surface
        (negative inside an obstacle); ``inf`` with no obstacles."""
        if self.n_obstacles == 0:
            return float("inf")
        point = np.asarray(point, dtype=float)
        dists = np.linalg.norm(self.centers - point, axis=1) - self.radii
        return float(dists.min())

    def sample_free(self, rng: np.random.Generator,
                    max_tries: int = 1000) -> np.ndarray:
        """Rejection-sample a collision-free point."""
        for _ in range(max_tries):
            point = rng.uniform(self.lower, self.upper)
            if self.clearance(point) > 0:
                return point
        raise ConfigurationError(
            f"could not sample a free point in {max_tries} tries;"
            " is the world almost fully blocked?"
        )

    @staticmethod
    def random(dim: int = 2, n_obstacles: int = 30,
               extent: float = 10.0, radius_range: Tuple[float, float]
               = (0.3, 0.8), seed: int = 0,
               keep_corners_free: float = 1.0) -> "CircleWorld":
        """A reproducible random world.

        ``keep_corners_free`` carves obstacle-free balls around the lower
        and upper corners so start/goal queries are well-posed.
        """
        rng = np.random.default_rng(seed)
        lower = np.zeros(dim)
        upper = np.full(dim, extent)
        centers = rng.uniform(0.0, extent, size=(n_obstacles, dim))
        radii = rng.uniform(*radius_range, size=n_obstacles)
        if keep_corners_free > 0:
            for corner in (lower, upper):
                dist = np.linalg.norm(centers - corner, axis=1)
                keep = dist - radii > keep_corners_free
                centers, radii = centers[keep], radii[keep]
        return CircleWorld(lower, upper, centers, radii)


class OccupancyGrid:
    """A 2-D occupancy grid with world-coordinate conversion.

    Cells hold 1 (occupied) or 0 (free).  ``resolution`` is meters/cell.
    """

    def __init__(self, width: int, height: int, resolution: float = 0.1,
                 origin: Tuple[float, float] = (0.0, 0.0)):
        if width < 1 or height < 1:
            raise ConfigurationError("grid needs width, height >= 1")
        if resolution <= 0:
            raise ConfigurationError("grid resolution must be > 0")
        self.cells = np.zeros((height, width), dtype=np.uint8)
        self.resolution = resolution
        self.origin = np.asarray(origin, dtype=float)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.cells.shape  # (rows, cols)

    def world_to_cell(self, point) -> Tuple[int, int]:
        """(row, col) of a world (x, y) point; raises if out of bounds."""
        point = np.asarray(point, dtype=float)
        col = int((point[0] - self.origin[0]) / self.resolution)
        row = int((point[1] - self.origin[1]) / self.resolution)
        rows, cols = self.cells.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise ConfigurationError(
                f"point {point.tolist()} outside grid"
            )
        return row, col

    def cell_to_world(self, row: int, col: int) -> np.ndarray:
        """World (x, y) of a cell center."""
        return self.origin + (np.array([col, row]) + 0.5) * self.resolution

    def is_free(self, row: int, col: int) -> bool:
        rows, cols = self.cells.shape
        if not (0 <= row < rows and 0 <= col < cols):
            return False
        return self.cells[row, col] == 0

    def occupancy_fraction(self) -> float:
        return float(self.cells.mean())

    def add_circle(self, center, radius: float) -> None:
        """Rasterize a circular obstacle into the grid."""
        if radius < 0:
            raise ConfigurationError("radius must be >= 0")
        rows, cols = self.cells.shape
        ys = (self.origin[1]
              + (np.arange(rows) + 0.5) * self.resolution)
        xs = (self.origin[0]
              + (np.arange(cols) + 0.5) * self.resolution)
        dx = xs[None, :] - center[0]
        dy = ys[:, None] - center[1]
        self.cells[dx * dx + dy * dy <= radius * radius] = 1

    def inflate(self, radius: float) -> "OccupancyGrid":
        """Return a copy with obstacles dilated by ``radius`` (meters) —
        the standard robot-radius inflation before grid planning."""
        steps = int(np.ceil(radius / self.resolution))
        out = OccupancyGrid(self.cells.shape[1], self.cells.shape[0],
                            self.resolution, tuple(self.origin))
        occupied = self.cells.astype(bool)
        result = occupied.copy()
        for dr in range(-steps, steps + 1):
            for dc in range(-steps, steps + 1):
                if dr * dr + dc * dc > steps * steps:
                    continue
                shifted = np.zeros_like(occupied)
                src = occupied[
                    max(0, -dr):occupied.shape[0] - max(0, dr),
                    max(0, -dc):occupied.shape[1] - max(0, dc),
                ]
                shifted[
                    max(0, dr):occupied.shape[0] - max(0, -dr),
                    max(0, dc):occupied.shape[1] - max(0, -dc),
                ] = src
                result |= shifted
        out.cells = result.astype(np.uint8)
        return out

    @staticmethod
    def from_world(world: CircleWorld, resolution: float = 0.1
                   ) -> "OccupancyGrid":
        """Rasterize a 2-D :class:`CircleWorld`."""
        if world.dim != 2:
            raise ConfigurationError(
                "OccupancyGrid.from_world needs a 2-D world"
            )
        extent = world.upper - world.lower
        grid = OccupancyGrid(
            int(np.ceil(extent[0] / resolution)),
            int(np.ceil(extent[1] / resolution)),
            resolution,
            origin=tuple(world.lower),
        )
        for center, radius in zip(world.centers, world.radii):
            grid.add_circle(center, radius)
        return grid
