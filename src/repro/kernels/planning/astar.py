"""Grid A* search.

The classic 8-connected occupancy-grid planner: optimal up to grid
resolution, and the standard software baseline autonomy stacks ship (e.g.
ROS ``nav2``).  Instrumented so its expand/heap work shows up as
``op_class="search"`` — the divergent, pointer-heavy class accelerators
struggle with (§2.5).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.profile import DivergenceClass, OpCounter, WorkloadProfile
from repro.errors import PlanningError
from repro.kernels.planning.occupancy import OccupancyGrid

_SQRT2 = float(np.sqrt(2.0))
_NEIGHBORS: Tuple[Tuple[int, int, float], ...] = (
    (-1, 0, 1.0), (1, 0, 1.0), (0, -1, 1.0), (0, 1, 1.0),
    (-1, -1, _SQRT2), (-1, 1, _SQRT2), (1, -1, _SQRT2), (1, 1, _SQRT2),
)


@dataclass
class AstarResult:
    """Outcome of one A* query.

    Attributes:
        path: Cell path from start to goal (inclusive); empty if no path.
        cost: Path cost in cells (diagonals cost sqrt(2)); ``inf`` if none.
        expanded: Nodes popped from the open list.
        found: Whether a path was found.
    """

    path: List[Tuple[int, int]]
    cost: float
    expanded: int

    @property
    def found(self) -> bool:
        return bool(self.path)


def _octile(a: Tuple[int, int], b: Tuple[int, int]) -> float:
    dr = abs(a[0] - b[0])
    dc = abs(a[1] - b[1])
    return max(dr, dc) + (_SQRT2 - 1.0) * min(dr, dc)


def astar(grid: OccupancyGrid, start: Tuple[int, int],
          goal: Tuple[int, int],
          counter: Optional[OpCounter] = None) -> AstarResult:
    """A* over an occupancy grid with the octile-distance heuristic.

    Args:
        grid: The (already inflated) occupancy grid.
        start, goal: ``(row, col)`` cells; both must be free.
        counter: Optional op instrumentation.

    Raises:
        PlanningError: If start or goal is occupied/out of bounds.
    """
    if not grid.is_free(*start):
        raise PlanningError(f"start cell {start} is not free")
    if not grid.is_free(*goal):
        raise PlanningError(f"goal cell {goal} is not free")

    open_heap: List[Tuple[float, int, Tuple[int, int]]] = []
    g_cost = {start: 0.0}
    parent = {start: start}
    closed = set()
    tie = 0
    heapq.heappush(open_heap, (_octile(start, goal), tie, start))
    expanded = 0

    while open_heap:
        _, __, node = heapq.heappop(open_heap)
        if node in closed:
            continue
        closed.add(node)
        expanded += 1
        if node == goal:
            break
        for dr, dc, step in _NEIGHBORS:
            nxt = (node[0] + dr, node[1] + dc)
            if nxt in closed or not grid.is_free(*nxt):
                continue
            # Forbid diagonal moves that cut an occupied corner.
            if dr != 0 and dc != 0:
                if (not grid.is_free(node[0] + dr, node[1])
                        or not grid.is_free(node[0], node[1] + dc)):
                    continue
            tentative = g_cost[node] + step
            if tentative < g_cost.get(nxt, float("inf")):
                g_cost[nxt] = tentative
                parent[nxt] = node
                tie += 1
                heapq.heappush(
                    open_heap, (tentative + _octile(nxt, goal), tie, nxt)
                )
    if counter is not None:
        # ~8 neighbor evaluations per expansion, ~12 int ops each, plus
        # O(log n) heap compares.
        counter.add_int_ops(expanded * (8 * 12.0 + 2.0 * np.log2(expanded + 2)))
        counter.add_read(8.0 * expanded * 10)
        counter.add_write(8.0 * expanded * 4)
        counter.note_working_set(8.0 * len(g_cost) * 4)

    if goal not in closed:
        return AstarResult(path=[], cost=float("inf"), expanded=expanded)

    path = [goal]
    while path[-1] != start:
        path.append(parent[path[-1]])
    path.reverse()
    return AstarResult(path=path, cost=g_cost[goal], expanded=expanded)


class GridPlanner:
    """Convenience wrapper: world-coordinate A* over an inflated grid."""

    def __init__(self, grid: OccupancyGrid, robot_radius: float = 0.0):
        self.grid = grid.inflate(robot_radius) if robot_radius > 0 else grid
        self.counter = OpCounter(name="astar")

    def plan(self, start_xy, goal_xy) -> AstarResult:
        """Plan between world-frame points."""
        start = self.grid.world_to_cell(start_xy)
        goal = self.grid.world_to_cell(goal_xy)
        return astar(self.grid, start, goal, counter=self.counter)

    def path_to_world(self, result: AstarResult) -> np.ndarray:
        """Convert a cell path to an ``(n, 2)`` world-frame polyline."""
        if not result.found:
            return np.zeros((0, 2))
        return np.array([self.grid.cell_to_world(r, c)
                         for r, c in result.path])

    def profile(self) -> WorkloadProfile:
        """Measured profile of all queries so far (search class)."""
        return self.counter.profile(parallel_fraction=0.2,
                                    divergence=DivergenceClass.HIGH,
                                    op_class="search")
