"""Autonomy workload kernels, implemented from scratch and instrumented.

Every algorithm an autonomous system runs — state estimation, mapping,
planning, control, perception, learning — is implemented here in plain
numpy, with operation-level instrumentation (:class:`repro.core.OpCounter`)
so each run reports the :class:`~repro.core.WorkloadProfile` the hardware
models price.  Subpackages:

- :mod:`repro.kernels.linalg`   — instrumented dense linear algebra
- :mod:`repro.kernels.geometry` — SO(3)/SE(3), quaternions
- :mod:`repro.kernels.dynamics` — rigid-body dynamics (RNEA/CRBA) on chains
- :mod:`repro.kernels.slam`     — EKF-SLAM, FastSLAM, pose-graph SLAM
- :mod:`repro.kernels.planning` — grids, collision, A*, RRT(-Connect), PRM,
  and the vectorized batch planner of the §2.5 experiment
- :mod:`repro.kernels.vision`   — corners, optical flow, stereo, VIO
- :mod:`repro.kernels.control`  — PID, LQR, linear MPC
- :mod:`repro.kernels.ml`       — conv/GEMM nets, SGD training, quantization
"""

from repro.kernels import (
    control,
    dynamics,
    geometry,
    linalg,
    ml,
    planning,
    slam,
    vision,
)

__all__ = [
    "control",
    "dynamics",
    "geometry",
    "linalg",
    "ml",
    "planning",
    "slam",
    "vision",
]
