"""SO(3)/SE(3) geometry: rotations, quaternions, rigid transforms.

The shared geometric substrate for dynamics, SLAM, and VIO.  Conventions:

- quaternions are ``[w, x, y, z]``, unit-norm, Hamilton convention;
- rotation matrices are world-from-body unless stated otherwise;
- ``SE3`` stores a rotation matrix and a translation vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def skew(v: np.ndarray) -> np.ndarray:
    """The 3x3 skew-symmetric matrix such that ``skew(v) @ u == v x u``."""
    v = np.asarray(v, dtype=float)
    if v.shape != (3,):
        raise ConfigurationError(f"skew expects a 3-vector, got {v.shape}")
    return np.array([
        [0.0, -v[2], v[1]],
        [v[2], 0.0, -v[0]],
        [-v[1], v[0], 0.0],
    ])


def rotation_x(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[1, 0, 0], [0, c, -s], [0, s, c]], dtype=float)


def rotation_y(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0, s], [0, 1, 0], [-s, 0, c]], dtype=float)


def rotation_z(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]], dtype=float)


def exp_so3(omega: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: the rotation for an axis-angle 3-vector."""
    omega = np.asarray(omega, dtype=float)
    theta = float(np.linalg.norm(omega))
    if theta < 1e-12:
        return np.eye(3) + skew(omega)
    axis = omega / theta
    k = skew(axis)
    return (np.eye(3) + np.sin(theta) * k
            + (1.0 - np.cos(theta)) * (k @ k))


def log_so3(rotation: np.ndarray) -> np.ndarray:
    """Inverse of :func:`exp_so3` (principal branch)."""
    trace = float(np.trace(rotation))
    cos_theta = np.clip((trace - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < 1e-12:
        return np.array([
            rotation[2, 1] - rotation[1, 2],
            rotation[0, 2] - rotation[2, 0],
            rotation[1, 0] - rotation[0, 1],
        ]) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # Near pi: extract axis from R + I.
        m = (rotation + np.eye(3)) / 2.0
        axis = np.sqrt(np.maximum(np.diag(m), 0.0))
        # Fix signs using off-diagonal terms.
        if axis[0] > 0:
            axis[1] = np.copysign(axis[1], m[0, 1])
            axis[2] = np.copysign(axis[2], m[0, 2])
        elif axis[1] > 0:
            axis[2] = np.copysign(axis[2], m[1, 2])
        norm = np.linalg.norm(axis)
        if norm == 0:
            raise ConfigurationError("log_so3: degenerate rotation")
        return theta * axis / norm
    factor = theta / (2.0 * np.sin(theta))
    return factor * np.array([
        rotation[2, 1] - rotation[1, 2],
        rotation[0, 2] - rotation[2, 0],
        rotation[1, 0] - rotation[0, 1],
    ])


def quat_normalize(q: np.ndarray) -> np.ndarray:
    q = np.asarray(q, dtype=float)
    norm = float(np.linalg.norm(q))
    if norm == 0:
        raise ConfigurationError("cannot normalize a zero quaternion")
    q = q / norm
    # Canonical sign: first nonzero component positive (q and -q are
    # the same rotation; keying on w alone is ambiguous when w == 0).
    for component in q:
        if component > 0:
            break
        if component < 0:
            q = -q
            break
    return q


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 * q2`` ([w, x, y, z])."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    return np.array([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ])


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    return np.array([q[0], -q[1], -q[2], -q[3]], dtype=float)


def quat_to_rotation(q: np.ndarray) -> np.ndarray:
    """Rotation matrix of a unit quaternion."""
    w, x, y, z = quat_normalize(q)
    return np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
        [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
        [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
    ])


def rotation_to_quat(rotation: np.ndarray) -> np.ndarray:
    """Unit quaternion ([w, x, y, z]) of a rotation matrix (Shepperd)."""
    r = rotation
    trace = float(np.trace(r))
    if trace > 0:
        s = np.sqrt(trace + 1.0) * 2.0
        q = np.array([0.25 * s,
                      (r[2, 1] - r[1, 2]) / s,
                      (r[0, 2] - r[2, 0]) / s,
                      (r[1, 0] - r[0, 1]) / s])
    elif r[0, 0] > r[1, 1] and r[0, 0] > r[2, 2]:
        s = np.sqrt(1.0 + r[0, 0] - r[1, 1] - r[2, 2]) * 2.0
        q = np.array([(r[2, 1] - r[1, 2]) / s,
                      0.25 * s,
                      (r[0, 1] + r[1, 0]) / s,
                      (r[0, 2] + r[2, 0]) / s])
    elif r[1, 1] > r[2, 2]:
        s = np.sqrt(1.0 + r[1, 1] - r[0, 0] - r[2, 2]) * 2.0
        q = np.array([(r[0, 2] - r[2, 0]) / s,
                      (r[0, 1] + r[1, 0]) / s,
                      0.25 * s,
                      (r[1, 2] + r[2, 1]) / s])
    else:
        s = np.sqrt(1.0 + r[2, 2] - r[0, 0] - r[1, 1]) * 2.0
        q = np.array([(r[1, 0] - r[0, 1]) / s,
                      (r[0, 2] + r[2, 0]) / s,
                      (r[1, 2] + r[2, 1]) / s,
                      0.25 * s])
    return quat_normalize(q)


def quat_integrate(q: np.ndarray, omega: np.ndarray,
                   dt: float) -> np.ndarray:
    """Integrate body angular velocity over ``dt`` (exact exponential)."""
    delta = exp_so3(np.asarray(omega, dtype=float) * dt)
    return quat_normalize(
        quat_multiply(q, rotation_to_quat(delta))
    )


@dataclass(frozen=True)
class SE3:
    """A rigid transform: ``x_world = rotation @ x_body + translation``."""

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        if self.rotation.shape != (3, 3):
            raise ConfigurationError(
                f"SE3 rotation must be 3x3, got {self.rotation.shape}"
            )
        if self.translation.shape != (3,):
            raise ConfigurationError(
                f"SE3 translation must be a 3-vector,"
                f" got {self.translation.shape}"
            )

    @staticmethod
    def identity() -> "SE3":
        return SE3(np.eye(3), np.zeros(3))

    @staticmethod
    def from_quat_trans(q: np.ndarray, t: np.ndarray) -> "SE3":
        return SE3(quat_to_rotation(q), np.asarray(t, dtype=float))

    def compose(self, other: "SE3") -> "SE3":
        """``self * other`` (apply ``other`` first)."""
        return SE3(self.rotation @ other.rotation,
                   self.rotation @ other.translation + self.translation)

    def inverse(self) -> "SE3":
        rt = self.rotation.T
        return SE3(rt, -(rt @ self.translation))

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform one 3-vector or an ``(n, 3)`` array of points."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            return self.rotation @ points + self.translation
        return points @ self.rotation.T + self.translation

    def matrix(self) -> np.ndarray:
        m = np.eye(4)
        m[:3, :3] = self.rotation
        m[:3, 3] = self.translation
        return m

    def distance(self, other: "SE3") -> float:
        """Combined metric: translation distance + rotation angle (rad)."""
        dt = float(np.linalg.norm(self.translation - other.translation))
        dr = float(np.linalg.norm(
            log_so3(self.rotation.T @ other.rotation)
        ))
        return dt + dr


def wrap_angle(angle: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    wrapped = (angle + np.pi) % (2.0 * np.pi) - np.pi
    return np.pi if wrapped == -np.pi else float(wrapped)
