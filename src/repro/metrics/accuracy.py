"""Task-quality metrics: time-to-threshold and quality/throughput fronts.

"Time-to-accuracy, not time overall" — the MLPerf lesson the paper
retells in §2.2, generalized to any monotone quality trace.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def time_to_threshold(times_s: Sequence[float],
                      qualities: Sequence[float],
                      target: float) -> float:
    """First time at which ``qualities`` reaches ``target``.

    Args:
        times_s: Monotonically increasing timestamps.
        qualities: Quality value at each timestamp (higher = better).
        target: Threshold to reach.

    Returns:
        The earliest timestamp with ``quality >= target``; ``inf`` if it
        is never reached.
    """
    if len(times_s) != len(qualities):
        raise ConfigurationError(
            f"{len(times_s)} timestamps but {len(qualities)} qualities"
        )
    previous = float("-inf")
    for t in times_s:
        if t < previous:
            raise ConfigurationError("timestamps must be non-decreasing")
        previous = t
    for t, q in zip(times_s, qualities):
        if q >= target:
            return float(t)
    return float("inf")


def accuracy_throughput_frontier(
    runs: Sequence[Tuple[str, float, float]]
) -> List[Tuple[str, float, float]]:
    """Non-dominated (throughput up, quality up) subset of runs.

    Args:
        runs: ``(name, throughput, quality)`` triples.

    Returns:
        The runs not dominated in *both* throughput and quality,
        sorted by throughput — the only fair way to show a
        quality-degrading speedup next to a slower accurate one.
    """
    survivors: List[Tuple[str, float, float]] = []
    for i, (name, thr, quality) in enumerate(runs):
        dominated = False
        for j, (_, thr2, quality2) in enumerate(runs):
            if j != i and thr2 >= thr and quality2 >= quality \
                    and (thr2 > thr or quality2 > quality):
                dominated = True
                break
        if not dominated:
            survivors.append((name, thr, quality))
    survivors.sort(key=lambda row: row[1])
    return survivors


def quality_weighted_speedup(baseline_time_s: float,
                             accelerated_time_s: float,
                             baseline_quality: float,
                             accelerated_quality: float) -> float:
    """Speedup discounted by any quality loss.

    ``(t_base / t_accel) * min(1, q_accel / q_base)`` — a deliberately
    blunt instrument that zeroes out "wins" which trade away the task.
    """
    if baseline_time_s <= 0 or accelerated_time_s <= 0:
        raise ConfigurationError("times must be > 0")
    if baseline_quality <= 0:
        raise ConfigurationError("baseline quality must be > 0")
    raw = baseline_time_s / accelerated_time_s
    quality_ratio = min(1.0, accelerated_quality / baseline_quality)
    return raw * quality_ratio
