"""Device-level compute metrics — and their system-level correctives.

TOPS and TOPS/W are the headline numbers §2.2 warns about: easy to
compute, easy to game, and misleading in isolation.  They are provided
here *together with* the system-facing quantities (off-chip bandwidth
demand, sustained-vs-peak ratio) that expose when the headline number is
hollow (Sze et al.).
"""

from __future__ import annotations

from typing import Dict

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.platform import Platform


def tops(profile: WorkloadProfile, estimate: CostEstimate) -> float:
    """Achieved tera-operations per second on one invocation."""
    if estimate.latency_s <= 0:
        raise ConfigurationError("latency must be > 0")
    return profile.total_ops / estimate.latency_s / 1e12


def tops_per_watt(profile: WorkloadProfile,
                  estimate: CostEstimate) -> float:
    """Achieved TOPS/W — the §2.2 headline metric."""
    if estimate.energy_j <= 0:
        raise ConfigurationError("energy must be > 0")
    return profile.total_ops / estimate.energy_j / 1e12


def edp(estimate: CostEstimate) -> float:
    """Energy-delay product (J*s)."""
    return estimate.edp


def peak_utilization(profile: WorkloadProfile, estimate: CostEstimate,
                     platform: Platform) -> float:
    """Achieved / peak throughput — how hollow the peak number is."""
    achieved = profile.total_ops / estimate.latency_s \
        if estimate.latency_s > 0 else float("inf")
    return min(1.0, achieved / platform.config.peak_flops)


def offchip_bandwidth_demand(profile: WorkloadProfile,
                             rate_hz: float,
                             onchip_bytes: float) -> float:
    """Off-chip bandwidth (B/s) the workload needs at a given rate.

    Zero when the working set stays on-chip; otherwise the full traffic
    spills.  Comparing this demand against a platform's ``offchip_bw`` is
    the system-level check that re-ranks accelerators ranked by TOPS/W
    alone (experiment E2b).
    """
    if rate_hz <= 0:
        raise ConfigurationError("rate_hz must be > 0")
    if profile.working_set_bytes <= onchip_bytes:
        return 0.0
    return profile.total_bytes * rate_hz


def device_report(profile: WorkloadProfile, platform: Platform,
                  rate_hz: float = 30.0) -> Dict[str, float]:
    """All device metrics for one (kernel, platform) pair in one dict."""
    estimate = platform.estimate(profile)
    return {
        "latency_s": estimate.latency_s,
        "energy_j": estimate.energy_j,
        "tops": tops(profile, estimate),
        "tops_per_watt": tops_per_watt(profile, estimate),
        "edp": edp(estimate),
        "peak_utilization": peak_utilization(profile, estimate,
                                             platform),
        "offchip_bw_demand": offchip_bandwidth_demand(
            profile, rate_hz, platform.config.onchip_bytes
        ),
        "offchip_bw_available": platform.config.offchip_bw,
    }
