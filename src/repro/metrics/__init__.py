"""Holistic metrics (§2.2 "Measure Twice, Cut Once").

The paper's claim is that *which metrics you report* changes which design
wins.  This package computes three tiers on the same artifacts:

- :mod:`~repro.metrics.compute`   — device metrics (TOPS, TOPS/W, EDP,
  off-chip bandwidth demand) — necessary, never sufficient;
- :mod:`~repro.metrics.accuracy`  — task-quality metrics
  (time-to-accuracy and friends);
- :mod:`~repro.metrics.mission`   — mission/system-level metrics;
- :mod:`~repro.metrics.composite` — normalization and weighted scoring
  for design ranking.
"""

from repro.metrics.accuracy import (
    accuracy_throughput_frontier,
    time_to_threshold,
)
from repro.metrics.composite import CompositeScore, normalize_metrics
from repro.metrics.compute import (
    edp,
    offchip_bandwidth_demand,
    tops,
    tops_per_watt,
)
from repro.metrics.mission import MissionSummary, summarize_missions

__all__ = [
    "CompositeScore",
    "MissionSummary",
    "accuracy_throughput_frontier",
    "edp",
    "normalize_metrics",
    "offchip_bandwidth_demand",
    "summarize_missions",
    "time_to_threshold",
    "tops",
    "tops_per_watt",
]
