"""Mission-level metric aggregation for closed-loop experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.system.mission import MissionResult


@dataclass(frozen=True)
class MissionSummary:
    """Aggregate over a batch of missions (e.g. one tier, many worlds).

    Attributes:
        n_missions: Batch size.
        success_rate: Fraction completed.
        mean_time_s: Mean time over *successful* missions (``inf`` when
            none succeed).
        mean_energy_j: Mean energy over successful missions.
        mean_speed_m_s: Mean speed over successful missions.
        energy_per_meter_j: Transport cost of successful missions.
    """

    n_missions: int
    success_rate: float
    mean_time_s: float
    mean_energy_j: float
    mean_speed_m_s: float
    energy_per_meter_j: float


def summarize_missions(results: Sequence[MissionResult]
                       ) -> MissionSummary:
    """Aggregate a batch of :class:`MissionResult` into a summary."""
    if not results:
        raise ConfigurationError("need >= 1 mission result")
    successes = [r for r in results if r.success]
    if not successes:
        return MissionSummary(
            n_missions=len(results), success_rate=0.0,
            mean_time_s=float("inf"), mean_energy_j=float("inf"),
            mean_speed_m_s=0.0, energy_per_meter_j=float("inf"),
        )
    total_distance = sum(r.distance_m for r in successes)
    total_energy = sum(r.energy_j for r in successes)
    return MissionSummary(
        n_missions=len(results),
        success_rate=len(successes) / len(results),
        mean_time_s=sum(r.mission_time_s for r in successes)
        / len(successes),
        mean_energy_j=total_energy / len(successes),
        mean_speed_m_s=sum(r.mean_speed_m_s for r in successes)
        / len(successes),
        energy_per_meter_j=total_energy / total_distance
        if total_distance > 0 else float("inf"),
    )


def rank_tiers(rows: Sequence[Tuple[str, MissionResult]]
               ) -> List[Tuple[str, float]]:
    """Rank compute tiers by mission merit.

    Merit is ``success * (1 / energy_j)`` — finish the mission, cheaply.
    Failed tiers rank last (merit 0), ties broken by name for
    determinism.
    """
    scored = []
    for name, result in rows:
        merit = (1.0 / result.energy_j
                 if result.success and result.energy_j > 0 else 0.0)
        scored.append((name, merit))
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored
