"""Normalization and weighted composite scoring for design ranking.

The last step of a §2.2-compliant evaluation: once device, task, and
system metrics exist side by side, rank designs with *declared* weights
instead of letting one convenient metric decide implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError


def normalize_metrics(rows: Sequence[Mapping[str, float]],
                      lower_is_better: Mapping[str, bool]
                      ) -> List[Dict[str, float]]:
    """Min-max normalize each metric across rows to [0, 1], 1 = best.

    Args:
        rows: One metrics dict per design; all must share keys.
        lower_is_better: Direction per metric.

    Returns:
        Normalized rows (constant metrics normalize to 1.0 for all).
    """
    if not rows:
        raise ConfigurationError("need >= 1 row")
    keys = set(rows[0])
    for row in rows:
        if set(row) != keys:
            raise ConfigurationError(
                f"inconsistent metric keys: {sorted(keys)} vs"
                f" {sorted(row)}"
            )
    missing = keys - set(lower_is_better)
    if missing:
        raise ConfigurationError(
            f"no direction declared for metrics: {sorted(missing)}"
        )
    normalized: List[Dict[str, float]] = [{} for _ in rows]
    for key in keys:
        values = [row[key] for row in rows]
        lo, hi = min(values), max(values)
        for out, value in zip(normalized, values):
            if hi == lo:
                score = 1.0
            else:
                score = (value - lo) / (hi - lo)
                if lower_is_better[key]:
                    score = 1.0 - score
            out[key] = score
    return normalized


@dataclass
class CompositeScore:
    """A weighted composite over normalized metrics.

    Attributes:
        weights: Metric → weight; weights are renormalized to sum to 1.
        lower_is_better: Direction per metric (shared with
            :func:`normalize_metrics`).
    """

    weights: Dict[str, float]
    lower_is_better: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError("weights must be non-empty")
        if any(w < 0 for w in self.weights.values()):
            raise ConfigurationError("weights must be >= 0")
        total = sum(self.weights.values())
        if total == 0:
            raise ConfigurationError("weights must not all be zero")
        self.weights = {k: w / total for k, w in self.weights.items()}

    def rank(self, designs: Sequence[Tuple[str, Mapping[str, float]]]
             ) -> List[Tuple[str, float]]:
        """Score and sort designs, best first.

        Only metrics present in ``weights`` participate; extra metrics
        in the rows are ignored.
        """
        if not designs:
            raise ConfigurationError("need >= 1 design")
        rows = [{k: row[k] for k in self.weights}
                for _, row in designs]
        directions = {k: self.lower_is_better.get(k, True)
                      for k in self.weights}
        normalized = normalize_metrics(rows, directions)
        scored = [
            (name, sum(self.weights[k] * norm[k] for k in self.weights))
            for (name, _), norm in zip(designs, normalized)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored
