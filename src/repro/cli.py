"""Command-line interface: ``python -m repro <command>``.

Subcommands give downstream users the paper's workflow without writing
code:

- ``suite``    — run the standard benchmark suite across the platform
  catalog and print ranked scores;
- ``audit``    — audit a design plan (JSON file) against the Seven
  Challenges;
- ``mission``  — sweep the UAV compute ladder through the closed-loop
  patrol mission (§2.4);
- ``fig1``     — regenerate the publication-trend figure;
- ``verify``   — parse a pipeline DSL file and statically verify it
  against a catalog platform.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core.report import ascii_bar_chart, format_table


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.benchmarksuite import SuiteRunner
    from repro.hw import (
        HeterogeneousSoC,
        asic_gemm_engine,
        desktop_cpu,
        embedded_cpu,
        embedded_gpu,
        midrange_fpga,
    )

    runner = SuiteRunner()
    targets = [embedded_cpu(), desktop_cpu(), embedded_gpu(),
               midrange_fpga(),
               HeterogeneousSoC("gemm-soc", embedded_cpu("soc-host"),
                                [asic_gemm_engine()])]
    rows = runner.run(targets)
    print(runner.report(rows))
    print()
    scores = runner.ranked_scores(rows, "embedded-cpu")
    print(format_table(["target", "geomean speedup vs embedded-cpu"],
                       scores, title="Suite scores"))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.advisor import (
        DesignReview,
        EvaluationPlan,
        SevenChallengesAdvisor,
    )

    with open(args.plan) as handle:
        plan = json.load(handle)
    evaluation = EvaluationPlan(
        metrics=tuple(plan.get("metrics", ())),
        evaluated_workloads=tuple(plan.get("evaluated_workloads", ())),
        baseline_platforms=tuple(plan.get("baseline_platforms", ())),
        end_to_end=bool(plan.get("end_to_end", False)),
        closed_loop=bool(plan.get("closed_loop", False)),
    )
    review = DesignReview(
        name=plan.get("name", "unnamed"),
        accelerated_categories=tuple(
            plan.get("accelerated_categories", ())
        ),
        target_platform=plan.get("target_platform", "asic"),
        evaluation=evaluation,
        expert_consultations=int(plan.get("expert_consultations", 0)),
        algorithm_vintage_years=tuple(
            plan.get("algorithm_vintage_years", ())
        ),
        integrates_with_middleware=bool(
            plan.get("integrates_with_middleware", False)
        ),
        system_budget_accounted=bool(
            plan.get("system_budget_accounted", False)
        ),
        shared_resource_analysis=bool(
            plan.get("shared_resource_analysis", False)
        ),
        lifecycle_analysis=bool(plan.get("lifecycle_analysis", False)),
        deployment_scale_units=int(
            plan.get("deployment_scale_units", 1)
        ),
    )
    advisor = SevenChallengesAdvisor()
    findings = advisor.audit(review)
    print(f"{review.name}: score {advisor.score(review):.0f}/100,"
          f" {len(findings)} finding(s)")
    for finding in findings:
        print(f"  [{finding.severity.value}]"
              f" {finding.challenge.value}: {finding.message}")
        print(f"      remedy: {finding.recommendation}")
    return 0 if not findings else 1


def _cmd_mission(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.hw import uav_compute_tiers
    from repro.kernels.planning import CircleWorld
    from repro.system import MissionConfig, sweep_compute_tiers

    world = CircleWorld.random(dim=2, n_obstacles=40, extent=120.0,
                               radius_range=(1.0, 3.0),
                               seed=args.seed, keep_corners_free=3.0)
    config = MissionConfig(world=world, start=np.array([1.0, 1.0]),
                           goal=np.array([118.0, 118.0]),
                           laps=args.laps)
    rows = sweep_compute_tiers(config, uav_compute_tiers())
    print(format_table(
        ["tier", "outcome", "safe speed (m/s)", "endurance (s)",
         "energy (kJ)"],
        [[name,
          "success" if r.success else f"FAIL ({r.failure_reason})",
          r.safe_speed_m_s, r.endurance_s, r.energy_j / 1e3]
         for name, r in rows],
        title=f"Closed-loop patrol mission, {args.laps} laps",
    ))
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.biblio import TOP_VENUES, fig1_series, generate_corpus

    corpus = generate_corpus(seed=args.seed)
    trend = fig1_series(corpus, venues=TOP_VENUES)
    print(ascii_bar_chart(
        [str(year) for year, _ in trend.series],
        [float(count) for _, count in trend.series],
        title="Fig. 1: autonomy-accelerator mentions per year"
              " (synthetic corpus)",
    ))
    print(f"total={trend.total}  CAGR={trend.growth_rate:.1%}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.dsl import parse_pipeline, verify_pipeline
    from repro.hw import catalog

    builders = {
        "embedded-cpu": catalog.embedded_cpu,
        "desktop-cpu": catalog.desktop_cpu,
        "embedded-gpu": catalog.embedded_gpu,
        "datacenter-gpu": catalog.datacenter_gpu,
        "midrange-fpga": catalog.midrange_fpga,
    }
    if args.platform not in builders:
        print(f"unknown platform {args.platform!r}; choose from"
              f" {sorted(builders)}", file=sys.stderr)
        return 2
    with open(args.pipeline) as handle:
        workload = parse_pipeline(handle.read())
    report = verify_pipeline(workload, builders[args.platform]())
    status = "VERIFIED" if report.verified else "REJECTED"
    print(f"[{status}] {report.workload} on {report.platform}")
    for name, utilization in report.stage_utilization.items():
        print(f"  {name}: utilization {utilization:.3f}")
    for violation in report.violations:
        print(f"  VIOLATION {violation.check}"
              f"{' @ ' + violation.stage if violation.stage else ''}:"
              f" {violation.detail}")
    return 0 if report.verified else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end co-design framework for"
                    " autonomous-system accelerators.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="run the benchmark suite across the"
                                 " platform catalog")

    audit = sub.add_parser("audit", help="Seven Challenges audit of a"
                                         " JSON design plan")
    audit.add_argument("plan", help="path to the design-plan JSON")

    mission = sub.add_parser("mission", help="UAV compute-ladder"
                                             " mission sweep")
    mission.add_argument("--laps", type=int, default=20)
    mission.add_argument("--seed", type=int, default=11)

    fig1 = sub.add_parser("fig1", help="regenerate the Fig. 1 trend")
    fig1.add_argument("--seed", type=int, default=0)

    verify = sub.add_parser("verify", help="statically verify a"
                                           " pipeline DSL file")
    verify.add_argument("pipeline", help="path to the DSL file")
    verify.add_argument("--platform", default="embedded-cpu")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "suite": _cmd_suite,
        "audit": _cmd_audit,
        "mission": _cmd_mission,
        "fig1": _cmd_fig1,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
