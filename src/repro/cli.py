"""Command-line interface: ``python -m repro <command>``.

Subcommands give downstream users the paper's workflow without writing
code:

- ``suite``    — run the standard benchmark suite across the platform
  catalog and print ranked scores;
- ``audit``    — audit a design plan (JSON file) against the Seven
  Challenges;
- ``dse``      — explore the demo co-design space (platform knobs
  priced against the suite) with any search strategy;
- ``mission``  — sweep the UAV compute ladder through the closed-loop
  patrol mission (§2.4);
- ``fleet``    — Monte Carlo mission sweep: the compute ladder flown
  through seeded perturbations of battery, payload, sensor rate, and
  workload, evaluated by the vectorized fleet engine;
- ``fig1``     — regenerate the publication-trend figure;
- ``verify``   — parse a pipeline DSL file and statically verify it
  against a catalog platform;
- ``trace``    — run an instrumented simulation and export a Chrome
  trace (open in Perfetto / ``chrome://tracing``), or summarize one;
- ``bench``    — run registered benchmarks (``--list`` to discover
  them); every run appends provenance-stamped records to the perf
  ledger (``BENCH_LEDGER.jsonl``), and ``--check`` gates the gated
  metrics against the committed baselines
  (``BENCH_BASELINES.json``), exiting nonzero on regression;
- ``run``      — execute a declarative scenario file (suite, mission,
  fleet, or dse) through the same code paths as the subcommands above,
  cache keys included;
- ``spec``     — validate (``spec validate``) or normalize and
  pretty-print (``spec show``) spec files;
- ``serve``    — run the evaluation daemon: concurrent clients submit
  candidates over a JSON-lines socket and the server coalesces every
  tenant's cache misses into shared oracle batches (results and cache
  keys are identical to the one-shot paths above);
- ``submit``   — client side of ``serve``: price candidates against a
  running daemon (inline configs or space indices), query its
  dashboard, or ask it to shut down.

Generated artifacts (traces, profiles) default into the gitignored
``artifacts/`` directory; pass an explicit path to write elsewhere.

``suite``, ``mission``, and ``fleet`` accept ``--json <path>``
(machine-readable
results with run provenance) and ``--trace-out <path>`` (Chrome trace of
the run) so every workflow can feed automated optimization loops instead
of only printing tables.  ``suite`` and ``dse`` additionally accept
``--jobs N`` (process-pool evaluation; results are identical to serial)
and ``--cache DIR`` (on-disk result cache; warm re-runs cost zero
oracle calls).  ``fleet --profile-out <path>`` writes a span-scoped
profile: per-phase hotspot tables plus the engine's exact
bytes-allocated counters.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.report import ascii_bar_chart, format_table


def _artifact_path(name: str) -> str:
    """Default location for a generated artifact: the gitignored
    ``artifacts/`` directory (created on demand), so default-named
    traces and profiles stop landing at the repo root."""
    import os

    os.makedirs("artifacts", exist_ok=True)
    return os.path.join("artifacts", name)


def _run_suite(targets, reference="embedded-cpu", workloads=None,
               jobs=1, cache_dir=None, json_path=None, trace_out=None,
               command_config=None) -> int:
    """Shared suite execution path: ``repro suite`` and suite scenarios
    both land here, so a scenario file reproduces the programmatic run
    exactly (same runner, same evaluator context, same cache keys)."""
    from repro.benchmarksuite import SuiteRunner, row_cache
    from repro.telemetry import (
        MetricsRegistry,
        Tracer,
        run_provenance,
        write_chrome_trace,
        write_metrics_json,
    )

    tracer = Tracer() if trace_out else None
    metrics = MetricsRegistry()
    runner = SuiteRunner(workloads)
    cache = row_cache(cache_dir) if cache_dir else None
    rows = runner.run(list(targets), tracer=tracer, metrics=metrics,
                      jobs=jobs, cache=cache)
    print(runner.report(rows))
    print()
    scores = runner.ranked_scores(rows, reference)
    print(format_table(["target", f"geomean speedup vs {reference}"],
                       scores, title="Suite scores"))
    if cache is not None:
        stats = cache.stats()
        print(f"result cache: {stats['hits']} hit(s)"
              f" ({stats['disk_hits']} from disk),"
              f" {stats['misses']} miss(es)")

    provenance = run_provenance(config={**(command_config or {}),
                                        "reference": reference,
                                        "jobs": jobs,
                                        "cache": cache_dir})
    if json_path:
        write_metrics_json(
            json_path, registry=metrics, provenance=provenance,
            extra={
                "rows": [{**dataclasses.asdict(r),
                          "meets_deadline": r.meets_deadline}
                         for r in rows],
                "scores": [{"target": t, "geomean_speedup": s}
                           for t, s in scores],
            },
        )
        print(f"wrote metrics JSON to {json_path}")
    if trace_out and tracer is not None:
        count = write_chrome_trace(tracer, trace_out,
                                   provenance=provenance)
        print(f"wrote {count} trace events to {trace_out}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.hw import (
        HeterogeneousSoC,
        asic_gemm_engine,
        embedded_cpu,
    )
    from repro.spec.registry import PLATFORMS

    targets = [PLATFORMS.build(name) for name in
               ("embedded-cpu", "desktop-cpu", "embedded-gpu",
                "midrange-fpga")]
    targets.append(
        HeterogeneousSoC("gemm-soc", embedded_cpu("soc-host"),
                         [asic_gemm_engine()]))
    return _run_suite(targets, jobs=args.jobs, cache_dir=args.cache,
                      json_path=args.json, trace_out=args.trace_out,
                      command_config={"command": "suite"})


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.advisor import (
        DesignReview,
        EvaluationPlan,
        SevenChallengesAdvisor,
    )

    with open(args.plan) as handle:
        plan = json.load(handle)
    evaluation = EvaluationPlan(
        metrics=tuple(plan.get("metrics", ())),
        evaluated_workloads=tuple(plan.get("evaluated_workloads", ())),
        baseline_platforms=tuple(plan.get("baseline_platforms", ())),
        end_to_end=bool(plan.get("end_to_end", False)),
        closed_loop=bool(plan.get("closed_loop", False)),
    )
    review = DesignReview(
        name=plan.get("name", "unnamed"),
        accelerated_categories=tuple(
            plan.get("accelerated_categories", ())
        ),
        target_platform=plan.get("target_platform", "asic"),
        evaluation=evaluation,
        expert_consultations=int(plan.get("expert_consultations", 0)),
        algorithm_vintage_years=tuple(
            plan.get("algorithm_vintage_years", ())
        ),
        integrates_with_middleware=bool(
            plan.get("integrates_with_middleware", False)
        ),
        system_budget_accounted=bool(
            plan.get("system_budget_accounted", False)
        ),
        shared_resource_analysis=bool(
            plan.get("shared_resource_analysis", False)
        ),
        lifecycle_analysis=bool(plan.get("lifecycle_analysis", False)),
        deployment_scale_units=int(
            plan.get("deployment_scale_units", 1)
        ),
    )
    advisor = SevenChallengesAdvisor()
    findings = advisor.audit(review)
    print(f"{review.name}: score {advisor.score(review):.0f}/100,"
          f" {len(findings)} finding(s)")
    for finding in findings:
        print(f"  [{finding.severity.value}]"
              f" {finding.challenge.value}: {finding.message}")
        print(f"      remedy: {finding.recommendation}")
    return 0 if not findings else 1


def _run_mission(config, tiers, seed=None, json_path=None,
                 trace_out=None, command_config=None) -> int:
    """Shared mission execution path (see :func:`_run_suite`)."""
    from repro.system import sweep_compute_tiers
    from repro.telemetry import (
        Tracer,
        run_provenance,
        write_chrome_trace,
        write_metrics_json,
    )

    tracer = Tracer() if trace_out else None
    if tracer is not None:
        rows = []
        for name, platform, mass, power in tiers:
            with tracer.wall_span(name, track="mission"):
                pairs = sweep_compute_tiers(
                    config, [(name, platform, mass, power)]
                )
            rows.append(pairs[0])
    else:
        rows = sweep_compute_tiers(config, list(tiers))
    print(format_table(
        ["tier", "outcome", "safe speed (m/s)", "endurance (s)",
         "energy (kJ)"],
        [[name,
          "success" if r.success else f"FAIL ({r.failure_reason})",
          r.safe_speed_m_s, r.endurance_s, r.energy_j / 1e3]
         for name, r in rows],
        title=f"Closed-loop patrol mission, {config.laps} laps",
    ))
    provenance = run_provenance(
        seed=seed,
        config={**(command_config or {}), "laps": config.laps},
    )
    if json_path:
        write_metrics_json(
            json_path, provenance=provenance,
            extra={"rows": [{"tier": name,
                             **dataclasses.asdict(result)}
                            for name, result in rows]},
        )
        print(f"wrote metrics JSON to {json_path}")
    if trace_out and tracer is not None:
        count = write_chrome_trace(tracer, trace_out,
                                   provenance=provenance)
        print(f"wrote {count} trace events to {trace_out}")
    return 0


def _cmd_mission(args: argparse.Namespace) -> int:
    from repro.hw import uav_compute_tiers
    from repro.kernels.planning import CircleWorld
    from repro.system import MissionConfig

    world = CircleWorld.random(dim=2, n_obstacles=40, extent=120.0,
                               radius_range=(1.0, 3.0),
                               seed=args.seed, keep_corners_free=3.0)
    config = MissionConfig(world=world, start=np.array([1.0, 1.0]),
                           goal=np.array([118.0, 118.0]),
                           laps=args.laps)
    return _run_mission(config, uav_compute_tiers(), seed=args.seed,
                        json_path=args.json,
                        trace_out=args.trace_out,
                        command_config={"command": "mission"})


def _run_fleet(config, tiers, trials=64, seed=0, jobs=1,
               perturbation=None, chunk_size=None, transport="auto",
               json_path=None, trace_out=None,
               profile_out=None, command_config=None) -> int:
    """Shared fleet execution path (see :func:`_run_suite`)."""
    import contextlib

    from repro.system.fleet import FleetStudy
    from repro.telemetry import (
        MetricsRegistry,
        SpanProfiler,
        Tracer,
        format_hotspots,
        measure_allocations,
        run_provenance,
        use_tracer,
        write_chrome_trace,
        write_metrics_json,
    )

    if trials < 1:
        print(f"--trials must be >= 1 (got {trials})", file=sys.stderr)
        return 2
    if jobs < 1:
        print(f"--jobs must be >= 1 (got {jobs})", file=sys.stderr)
        return 2
    if chunk_size is not None and chunk_size < 1:
        print(f"--chunk-size must be >= 1 (got {chunk_size})",
              file=sys.stderr)
        return 2
    kwargs = {} if perturbation is None else {
        "perturbation": perturbation}
    study = FleetStudy(config=config, tiers=list(tiers), trials=trials,
                       seed=seed, **kwargs)
    metrics = MetricsRegistry()
    tracer = Tracer() if (trace_out or profile_out) else None
    profiler = None
    meter = None
    if profile_out and tracer is not None:
        # Span-scoped profiling: the engine's phase spans
        # (fleet.plan/gather/price/solve/emit) each capture their own
        # cProfile run, and the allocation meter records the exact SoA
        # working set the kernels allocate.
        profiler = SpanProfiler(cpu=True, memory=True)
        tracer.profiler = profiler
        if jobs > 1:
            print("note: --profile-out captures in-process phases;"
                  " worker shards (--jobs > 1) report allocation"
                  " totals only", file=sys.stderr)
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        if profiler is not None:
            meter = stack.enter_context(measure_allocations())
        result = study.run(jobs=jobs, metrics=metrics,
                           chunk_size=chunk_size, transport=transport)
    print(format_table(
        ["tier", "success", "time p50 (s)", "time p99 (s)",
         "energy p50 (kJ)", "failures"],
        [[s.tier, f"{s.success_rate:.0%}", s.mission_time_p50_s,
          s.mission_time_p99_s, s.energy_p50_j / 1e3,
          ", ".join(f"{k}:{v}" for k, v in
                    sorted(s.failure_counts.items())) or "-"]
         for s in result.statistics],
        title=f"Fleet Monte Carlo, {trials} trial(s) x"
              f" {len(study.tiers)} tier(s), {config.laps} lap(s)",
    ))
    best = result.best_tier()
    print(f"best tier: {best.tier}"
          f" ({best.success_rate:.0%} success,"
          f" p50 {best.mission_time_p50_s:.1f} s)")
    print(f"rollouts: {len(result.fleet)}"
          f" (batch-priced: {result.batch_priced},"
          f" scalar fallbacks: {result.scalar_fallback})")
    provenance = run_provenance(
        seed=seed,
        config={**(command_config or {}), "trials": trials,
                "jobs": jobs, "chunk_size": chunk_size,
                "transport": transport, "laps": config.laps},
    )
    if json_path:
        write_metrics_json(
            json_path, registry=metrics, provenance=provenance,
            extra={
                "tiers": result.to_rows(),
                "best_tier": best.tier,
                "rollouts": len(result.fleet),
                "batch_priced": result.batch_priced,
                "scalar_fallback": result.scalar_fallback,
            },
        )
        print(f"wrote metrics JSON to {json_path}")
    if trace_out and tracer is not None:
        count = write_chrome_trace(tracer, trace_out,
                                   provenance=provenance)
        print(f"wrote {count} trace events to {trace_out}")
    if profile_out and profiler is not None and meter is not None:
        print()
        print(format_table(
            ["phase", "wall (ms)", "numpy alloc (MB)",
             "top hotspot (self ms)"],
            [[record.name, record.wall_s * 1e3,
              (record.numpy_alloc_b or 0) / 1e6,
              (f"{_short_fn(record.hotspots[0].function)}"
               f" ({record.hotspots[0].total_s * 1e3:.1f})")
              if record.hotspots else "-"]
             for record in profiler.records],
            title="Per-phase profile",
        ))
        print(format_hotspots(profiler.hotspots(top_n=8),
                              title="Merged hotspots (by self time)"))
        sites = meter.snapshot()
        fleet = result.fleet
        print(f"alloc meter: {fleet.alloc_bytes:,} B engine working"
              f" set ({fleet.alloc_bytes_per_rollout:,.0f}"
              f" B/rollout, {len(sites)} site(s))")
        document = {
            "schema": "repro-profile/1",
            "provenance": provenance,
            "profile": profiler.report(),
            "alloc_sites": sites,
            "alloc_bytes": fleet.alloc_bytes,
            "alloc_bytes_per_rollout": fleet.alloc_bytes_per_rollout,
        }
        with open(profile_out, "w") as handle:
            json.dump(document, handle, indent=2, default=str)
            handle.write("\n")
        print(f"wrote profile JSON to {profile_out}")
    return 0


def _short_fn(function: str) -> str:
    """Trim a pstats ``path:line(name)`` label to its basename."""
    import os

    head, sep, tail = function.partition("(")
    return os.path.basename(head) + sep + tail


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.hw import uav_compute_tiers
    from repro.kernels.planning import CircleWorld
    from repro.system import MissionConfig

    world = CircleWorld.random(dim=2, n_obstacles=40, extent=120.0,
                               radius_range=(1.0, 3.0),
                               seed=args.world_seed,
                               keep_corners_free=3.0)
    config = MissionConfig(world=world, start=np.array([1.0, 1.0]),
                           goal=np.array([118.0, 118.0]),
                           laps=args.laps)
    return _run_fleet(config, uav_compute_tiers(), trials=args.trials,
                      seed=args.seed, jobs=args.jobs,
                      chunk_size=args.chunk_size,
                      transport=args.transport,
                      json_path=args.json, trace_out=args.trace_out,
                      profile_out=args.profile_out,
                      command_config={"command": "fleet",
                                      "world_seed": args.world_seed})


def _run_dse(space, objective_name="suite_objective",
             strategy="surrogate", budget=24, seed=0, jobs=1,
             cache_dir=None, chunk_size=None, funnel=None,
             json_path=None, command_config=None) -> int:
    """Shared DSE execution path (see :func:`_run_suite`).  The
    objective is resolved from the registry by name, and that name goes
    into the evaluator context — so spec-driven and programmatic runs
    share cache keys."""
    from repro.dse import (
        EvolutionarySearch,
        SurrogateSearch,
        grid_search,
        random_search,
    )
    from repro.dse.funnel import FunnelConfig, funnel_search
    from repro.engine import Evaluator, ResultCache
    from repro.spec.registry import OBJECTIVES
    from repro.telemetry import run_provenance, write_metrics_json

    if budget < 1:
        print(f"--budget must be >= 1 (got {budget})",
              file=sys.stderr)
        return 2
    if chunk_size is not None and chunk_size < 1:
        print(f"--chunk-size must be >= 1 (got {chunk_size})",
              file=sys.stderr)
        return 2
    objective = OBJECTIVES.get(objective_name)
    cache = ResultCache(cache_dir) if cache_dir else None
    evaluator = Evaluator(
        objective, jobs=jobs, cache=cache, seed=seed,
        chunk_size=chunk_size,
        context={"task": "dse-codesign",
                 "objective": objective_name},
    )
    tier_report = None
    if strategy == "grid":
        result = grid_search(space, budget=budget,
                             evaluator=evaluator)
    elif strategy == "random":
        result = random_search(space, budget=budget,
                               seed=seed, evaluator=evaluator)
    elif strategy == "evolutionary":
        search = EvolutionarySearch(space, seed=seed)
        result = search.run(budget=budget, evaluator=evaluator)
    elif strategy == "funnel":
        result, funnel_strategy = funnel_search(
            space, budget=budget, seed=seed,
            config=funnel if funnel is not None else FunnelConfig(),
            evaluator=evaluator)
        tier_report = funnel_strategy.tier_report()
    else:  # surrogate
        search = SurrogateSearch(
            space, n_initial=max(2, min(8, budget)),
            seed=seed)
        result = search.run(budget=budget, evaluator=evaluator)

    print(format_table(
        ["knob", "value"],
        sorted(result.best_config.items()),
        title=f"Best of {result.evaluations} evaluation(s)"
              f" ({strategy}, {space.size}-point space)",
    ))
    print(f"objective: {result.best_value:.6g}")
    stats = evaluator.stats()
    print(f"oracle calls: {stats['oracle_calls']}"
          f" (cache hits: {stats['hits']}, jobs: {jobs})")
    print(f"batch-priced: {stats['batch_hits']}"
          f" (scalar fallbacks: {stats['batch_fallbacks']})")
    if chunk_size:
        print(f"chunks: {stats['chunks']}"
              f" (chunk size {chunk_size})")
    if tier_report is not None:
        print(format_table(
            ["tier", "evaluated", "survivors", "killed", "kill rate"],
            [(row["tier"], row["evaluated"], row["survivors"],
              row["killed"], f"{row['kill_rate']:.1%}"
              + (" (forced)" if row["forced"] else ""))
             for row in tier_report],
            title="Funnel survivor report (cheapest tier first)",
        ))
        screened = tier_report[0]["evaluated"]
        reached = tier_report[-1]["evaluated"]
        if screened:
            print(f"top-tier fraction: {reached}/{screened}"
                  f" ({reached / screened:.2%})")
    if json_path:
        provenance = run_provenance(
            seed=seed,
            config={**(command_config or {}), "strategy": strategy,
                    "budget": budget, "jobs": jobs,
                    "cache": cache_dir},
        )
        extra = {
            "best_config": result.best_config,
            "best_value": result.best_value,
            "evaluations": result.evaluations,
            "trace": result.trace,
            "engine": stats,
        }
        if tier_report is not None:
            extra["funnel"] = tier_report
            extra["engine_tiers"] = evaluator.tier_stats()
        write_metrics_json(
            json_path, provenance=provenance, extra=extra)
        print(f"wrote metrics JSON to {json_path}")
    return 0


def _space_help() -> str:
    """``--space`` help text, derived from the registry the runtime
    lookup uses so the two cannot drift."""
    from repro.spec.registry import SPACES

    return "design space to search: " + ", ".join(SPACES.names())


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.errors import SpecError
    from repro.spec.registry import OBJECTIVES, SPACES

    try:
        space = SPACES.build(args.space, "--space")
        OBJECTIVES.entry(args.objective, "--objective")
    except SpecError as error:
        print(error, file=sys.stderr)
        return 2
    return _run_dse(space, objective_name=args.objective,
                    strategy=args.strategy,
                    budget=args.budget, seed=args.seed,
                    jobs=args.jobs, cache_dir=args.cache,
                    chunk_size=args.chunk_size,
                    json_path=args.json,
                    command_config={"command": "dse"})


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.biblio import TOP_VENUES, fig1_series, generate_corpus

    corpus = generate_corpus(seed=args.seed)
    trend = fig1_series(corpus, venues=TOP_VENUES)
    print(ascii_bar_chart(
        [str(year) for year, _ in trend.series],
        [float(count) for _, count in trend.series],
        title="Fig. 1: autonomy-accelerator mentions per year"
              " (synthetic corpus)",
    ))
    print(f"total={trend.total}  CAGR={trend.growth_rate:.1%}")
    return 0


def _catalog_builders():
    """Programmable catalog platforms, straight from the registry —
    fixed-function accelerators (``programmable=False``) stay
    spec-addressable but are not standalone CLI targets."""
    from repro.spec.registry import PLATFORMS

    return {entry.name: entry.builder
            for entry in PLATFORMS.entries()
            if entry.meta.get("programmable", True)}


def _platform_help() -> str:
    """``--platform`` help text, derived from the same registry as the
    runtime lookup so the two cannot drift."""
    return "catalog platform: " + ", ".join(_catalog_builders())


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import SpecError
    from repro.spec import (
        FleetScenario,
        MissionScenario,
        SuiteScenario,
        load_scenario,
    )

    try:
        scenario = load_scenario(args.scenario)
    except SpecError as error:
        print(error, file=sys.stderr)
        return 2
    run = scenario.run
    print(f"scenario {scenario.name!r} ({args.scenario})")
    command_config = {"command": "run", "scenario": args.scenario}
    if isinstance(run, SuiteScenario):
        return _run_suite(
            run.targets, reference=run.reference,
            workloads=run.workloads,
            jobs=args.jobs if args.jobs is not None else run.jobs,
            cache_dir=args.cache, json_path=args.json,
            trace_out=args.trace_out, command_config=command_config)
    if isinstance(run, MissionScenario):
        return _run_mission(
            run.config, run.tiers, seed=run.seed,
            json_path=args.json, trace_out=args.trace_out,
            command_config=command_config)
    if isinstance(run, FleetScenario):
        return _run_fleet(
            run.config, run.tiers, trials=run.trials, seed=run.seed,
            jobs=args.jobs if args.jobs is not None else run.jobs,
            perturbation=run.perturbation,
            chunk_size=run.chunk_size, json_path=args.json,
            trace_out=args.trace_out, command_config=command_config)
    if args.trace_out:
        print("note: --trace-out is ignored for dse scenarios",
              file=sys.stderr)
    return _run_dse(
        run.space, objective_name=run.objective,
        strategy=run.strategy, budget=run.budget, seed=run.seed,
        jobs=args.jobs if args.jobs is not None else run.jobs,
        cache_dir=args.cache, chunk_size=run.chunk_size,
        funnel=run.funnel, json_path=args.json,
        command_config=command_config)


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.errors import SpecError
    from repro.spec import dump_spec, load_spec

    if args.spec_command == "validate":
        failures = 0
        for path in args.files:
            try:
                document = dump_spec(load_spec(path))
            except SpecError as error:
                print(f"INVALID {path}: {error}")
                failures += 1
            else:
                print(f"OK      {path} ({document['kind']})")
        return 1 if failures else 0
    # show: load, normalize, and pretty-print the document
    try:
        document = dump_spec(load_spec(args.file))
    except SpecError as error:
        print(error, file=sys.stderr)
        return 2
    print(json.dumps(document, indent=2))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.dsl import parse_pipeline, verify_pipeline

    builders = _catalog_builders()
    if args.platform not in builders:
        print(f"unknown platform {args.platform!r}; choose from"
              f" {sorted(builders)}", file=sys.stderr)
        return 2
    with open(args.pipeline) as handle:
        workload = parse_pipeline(handle.read())
    report = verify_pipeline(workload, builders[args.platform]())
    status = "VERIFIED" if report.verified else "REJECTED"
    print(f"[{status}] {report.workload} on {report.platform}")
    for name, utilization in report.stage_utilization.items():
        print(f"  {name}: utilization {utilization:.3f}")
    for violation in report.violations:
        print(f"  VIOLATION {violation.check}"
              f"{' @ ' + violation.stage if violation.stage else ''}:"
              f" {violation.detail}")
    return 0 if report.verified else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        MetricsRegistry,
        Tracer,
        run_provenance,
        trace_summary,
        write_chrome_trace,
        write_metrics_json,
    )

    from repro.errors import TelemetryError

    if args.trace_command == "summary":
        with open(args.trace) as handle:
            document = json.load(handle)
        try:
            summary = trace_summary(document)
        except TelemetryError as error:
            print(f"{args.trace}: {error}", file=sys.stderr)
            return 2
        print(f"{summary['events']} events;"
              f" phases {summary['phases']}")
        print(format_table(
            ["track", "spans", "busy (ms)"],
            [[track, int(stats["spans"]), stats["busy_us"] / 1e3]
             for track, stats in summary["tracks"].items()],
            title="Span tracks",
        ))
        return 0

    if args.duration <= 0:
        print(f"--duration must be > 0 (got {args.duration})",
              file=sys.stderr)
        return 2

    tracer = Tracer()
    metrics = MetricsRegistry()

    if args.trace_command == "pipeline":
        from repro.benchmarksuite.workloads import standard_suite
        from repro.system.pipeline import PipelineSimulation

        workloads = {w.name: w for w in standard_suite()}
        if args.workload not in workloads:
            print(f"unknown workload {args.workload!r}; choose from"
                  f" {sorted(workloads)}", file=sys.stderr)
            return 2
        builders = _catalog_builders()
        if args.platform not in builders:
            print(f"unknown platform {args.platform!r}; choose from"
                  f" {sorted(builders)}", file=sys.stderr)
            return 2
        workload = workloads[args.workload]
        platform = builders[args.platform]()
        service_times = {}
        for stage in workload.graph.stages:
            if not platform.supports(stage.profile):
                print(f"{platform.name} cannot run stage"
                      f" {stage.name!r}", file=sys.stderr)
                return 2
            service_times[stage.name] = \
                platform.estimate(stage.profile).latency_s
        simulation = PipelineSimulation(
            workload.graph, service_times,
            queue_capacity=args.queue_capacity,
            tracer=tracer, metrics=metrics,
        )
        result = simulation.run(args.duration)
        print(f"{workload.name} on {platform.name}:"
              f" {result.samples_completed}/{result.samples_emitted}"
              f" samples, mean latency"
              f" {result.mean_latency_s() * 1e3:.3f} ms, p99"
              f" {result.p99_latency_s() * 1e3:.3f} ms, drop rate"
              f" {result.drop_rate():.1%}")
        provenance = run_provenance(config={
            "command": "trace pipeline", "workload": args.workload,
            "platform": args.platform, "duration_s": args.duration,
            "queue_capacity": args.queue_capacity,
        })
    else:  # scheduler
        from repro.system.scheduler import (
            PeriodicTask,
            SchedulerPolicy,
            simulate_scheduler,
        )

        policies = {p.value: p for p in SchedulerPolicy}
        if args.policy not in policies:
            print(f"unknown policy {args.policy!r}; choose from"
                  f" {sorted(policies)}", file=sys.stderr)
            return 2
        scale = 2.0 if args.overload else 1.0
        tasks = [
            PeriodicTask("control", period_s=0.01,
                         wcet_s=0.002 * scale, priority=0),
            PeriodicTask("perception", period_s=0.033,
                         wcet_s=0.010 * scale, priority=1),
            PeriodicTask("planning", period_s=0.1,
                         wcet_s=0.025 * scale, priority=2),
        ]
        result = simulate_scheduler(tasks, policies[args.policy],
                                    duration_s=args.duration,
                                    tracer=tracer)
        print(f"{args.policy}: {result.jobs_completed}/"
              f"{result.jobs_released} jobs completed,"
              f" {result.deadline_misses} deadline miss(es),"
              f" utilization {result.utilization:.2f}")
        metrics.counter("scheduler.jobs_released").inc(
            result.jobs_released)
        metrics.counter("scheduler.deadline_misses").inc(
            result.deadline_misses)
        provenance = run_provenance(config={
            "command": "trace scheduler", "policy": args.policy,
            "duration_s": args.duration, "overload": args.overload,
        })

    out = args.out if args.out else _artifact_path("trace.json")
    count = write_chrome_trace(tracer, out,
                               provenance=provenance)
    print(f"wrote {count} trace events to {out}"
          f" (open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics_out:
        write_metrics_json(args.metrics_out, registry=metrics,
                           provenance=provenance)
        print(f"wrote metrics JSON to {args.metrics_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.errors import ServeError
    from repro.serve import EvalServer, ServeConfig
    from repro.telemetry import run_provenance, write_metrics_json

    try:
        config = ServeConfig(
            host=args.host, port=args.port,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue, max_inflight=args.max_inflight,
            cache_dir=args.cache,
            cache_max_entries=args.cache_max_entries,
            jobs=args.jobs, chunk_size=args.chunk_size)
    except ServeError as error:
        print(error, file=sys.stderr)
        return 2
    server = EvalServer(config)

    async def _run() -> None:
        await server.start()
        print(f"serving on {config.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or unsupported platform
        await server.run()

    asyncio.run(_run())
    stats = server.stats()
    serve_stats = stats["serve"]
    cache_stats = stats["cache"]
    lookups = cache_stats["hits"] + cache_stats["misses"]
    hit_rate = cache_stats["hits"] / lookups if lookups else 0.0
    latency = serve_stats["request_latency_s"]
    print(f"served {int(serve_stats['requests'])} request(s),"
          f" {int(serve_stats['candidates'])} candidate(s);"
          f" {int(serve_stats['flushes'])} flush(es),"
          f" {int(serve_stats['coalesced_batches'])} coalesced")
    print(f"cache hit rate: {hit_rate:.1%};"
          f" batch occupancy mean:"
          f" {serve_stats['batch_occupancy']['mean']:.1f};"
          f" latency p50 {latency['p50'] * 1e3:.1f} ms /"
          f" p99 {latency['p99'] * 1e3:.1f} ms")
    if args.metrics_json:
        provenance = run_provenance(config={
            "command": "serve", "host": config.host,
            "port": server.port, "max_batch": config.max_batch,
            "max_wait_ms": config.max_wait_ms, "jobs": config.jobs,
            "cache": config.cache_dir,
        })
        write_metrics_json(args.metrics_json,
                           registry=server.metrics,
                           provenance=provenance, extra=stats)
        print(f"wrote metrics JSON to {args.metrics_json}")
    return 0


def _parse_indices(spec: str) -> Optional[list]:
    """``"0,3,8-11"`` -> ``[0, 3, 8, 9, 10, 11]`` (None on a parse
    error, so the caller can print a usage message)."""
    indices = []
    for part in spec.split(","):
        part = part.strip()
        try:
            if "-" in part[1:]:  # allow a leading minus to fail below
                lo_text, hi_text = part.split("-", 1)
                lo, hi = int(lo_text), int(hi_text)
                if hi < lo:
                    return None
                indices.extend(range(lo, hi + 1))
            else:
                indices.append(int(part))
        except ValueError:
            return None
    return indices


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.serve import ServeClient

    candidates = None
    indices = None
    if args.candidates:
        with open(args.candidates) as handle:
            candidates = json.load(handle)
        if not isinstance(candidates, list):
            print(f"{args.candidates}: expected a JSON list of"
                  f" candidate configs", file=sys.stderr)
            return 2
    if args.indices:
        indices = _parse_indices(args.indices)
        if indices is None:
            print(f"--indices: cannot parse {args.indices!r}"
                  f" (expected e.g. '0,3,8-11')", file=sys.stderr)
            return 2
    wants_submit = candidates is not None or indices is not None
    if not (wants_submit or args.stats or args.shutdown):
        print("nothing to do: pass --candidates FILE or --space/"
              "--indices (or --stats / --shutdown)", file=sys.stderr)
        return 2
    try:
        client = ServeClient(args.host, args.port,
                             timeout=args.timeout)
    except ServeError as error:
        print(error, file=sys.stderr)
        return 2
    with client:
        if wants_submit:
            try:
                envelope = client.submit(
                    candidates, objective=args.objective,
                    space=args.space if indices is not None else None,
                    indices=indices, tenant=args.tenant,
                    no_coalesce=args.no_coalesce)
            except ServeError as error:
                print(error, file=sys.stderr)
                return 2
            if not envelope.get("ok"):
                print(f"submit rejected:"
                      f" {envelope.get('error', 'unknown')}"
                      f" ({envelope.get('detail', 'no detail')})",
                      file=sys.stderr)
                return 1
            results = envelope["results"]
            hits = sum(1 for result in results if result["cached"])
            print(format_table(
                ["#", "value", "cached"],
                [[i, f"{result['value']:.6g}",
                  "yes" if result["cached"] else "no"]
                 for i, result in enumerate(results)],
                title=f"{len(results)} candidate(s) priced under"
                      f" {args.objective}",
            ))
            print(f"cache hits: {hits}/{len(results)}")
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(envelope, handle, indent=2)
                print(f"wrote response JSON to {args.json}")
        if args.stats:
            stats = client.stats()
            serve_stats = stats["serve"]
            print(format_table(
                ["metric", "value"],
                [["requests", int(serve_stats["requests"])],
                 ["candidates", int(serve_stats["candidates"])],
                 ["flushes", int(serve_stats["flushes"])],
                 ["coalesced batches",
                  int(serve_stats["coalesced_batches"])],
                 ["queue depth", int(serve_stats["queue_depth"])],
                 ["batch occupancy (mean)",
                  f"{serve_stats['batch_occupancy']['mean']:.1f}"],
                 ["latency p50 (ms)",
                  f"{serve_stats['request_latency_s']['p50'] * 1e3:.2f}"],
                 ["latency p99 (ms)",
                  f"{serve_stats['request_latency_s']['p99'] * 1e3:.2f}"]],
                title="Daemon dashboard",
            ))
        if args.shutdown:
            client.shutdown()
            print("daemon acknowledged shutdown")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.bench import (
        REGISTRY,
        append_records,
        baselines_from_records,
        check_monotone,
        check_records,
        ledger_record,
        load_baselines,
        load_builtins,
        merge_baselines,
        migrate_legacy_bench,
        write_baselines,
    )
    from repro.errors import BenchmarkError

    load_builtins()

    if args.migrate:
        records = []
        try:
            for path in args.migrate:
                converted = migrate_legacy_bench(path)
                print(f"migrated {len(converted)} record(s)"
                      f" from {path}")
                records.extend(converted)
        except (OSError, BenchmarkError) as error:
            print(error, file=sys.stderr)
            return 2
        if not args.no_ledger:
            count = append_records(args.ledger, records)
            print(f"appended {count} record(s) to {args.ledger}")
        if args.update_baselines:
            document = merge_baselines(
                args.baselines,
                baselines_from_records(records, source="migrated"))
            write_baselines(args.baselines, document)
            print(f"wrote {len(document['entries'])} baseline(s)"
                  f" to {args.baselines}")
        return 0

    selected = REGISTRY.select(args.filter)
    if not selected:
        print(f"no benchmark matches {args.filter!r}; registered:"
              f" {', '.join(REGISTRY.names())}", file=sys.stderr)
        return 2

    if args.list:
        print(format_table(
            ["name", "sizes", "smoke", "gated metrics", "tags"],
            [[entry.name,
              ",".join(str(s) for s in entry.sizes),
              ",".join(str(s) for s in entry.smoke_sizes),
              ",".join(m.name for m in entry.gated_metrics()) or "-",
              ",".join(entry.tags) or "-"]
             for entry in selected],
            title="Registered benchmarks",
        ))
        for entry in selected:
            print(f"  {entry.name}: {entry.description}")
        return 0

    sizes_override = None
    if args.sizes:
        try:
            sizes_override = tuple(
                int(token) for token in args.sizes.split(",")
                if token.strip())
        except ValueError:
            sizes_override = ()
        if not sizes_override:
            print(f"--sizes must be comma-separated integers"
                  f" (got {args.sizes!r})", file=sys.stderr)
            return 2

    profiler = None
    if args.profile:
        from repro.telemetry import SpanProfiler

        profiler = SpanProfiler(cpu=True, memory=True)

    records = []
    try:
        for benchmark in selected:
            sizes = sizes_override or (
                benchmark.sizes if args.full
                else benchmark.smoke_sizes)
            rows = []
            for size in sizes:
                started = time.perf_counter()
                if profiler is not None:
                    with profiler.capture(
                            f"{benchmark.name}@{size}",
                            track="bench"):
                        measured = benchmark.run(size)
                else:
                    measured = benchmark.run(size)
                wall_s = time.perf_counter() - started
                records.append(ledger_record(
                    benchmark.name, size, measured, wall_s,
                    seed=args.seed,
                    config={"command": "bench",
                            "filter": args.filter,
                            "full": bool(args.full)}))
                rows.append(
                    [size]
                    + [measured[m.name] for m in benchmark.metrics]
                    + [round(wall_s, 3)])
            print(format_table(
                ["size"]
                + [m.name + (f" ({m.unit})" if m.unit else "")
                   for m in benchmark.metrics]
                + ["wall (s)"],
                rows,
                title=f"{benchmark.name} — {benchmark.description}"))
            print()
    except BenchmarkError as error:
        print(error, file=sys.stderr)
        return 2

    if profiler is not None:
        from repro.telemetry import format_hotspots

        print(format_hotspots(
            profiler.hotspots(),
            title="Hotspots (merged, by self time)"))
        print()

    if not args.no_ledger:
        count = append_records(args.ledger, records)
        print(f"appended {count} record(s) to {args.ledger}")

    checks = []
    regressions = []
    monotone_checks = []
    monotone_violations = []
    if args.check:
        baselines = load_baselines(args.baselines)
        if not baselines:
            print(f"no baselines at {args.baselines};"
                  f" nothing to check", file=sys.stderr)
        benchmarks = {entry.name: entry for entry in selected}
        checks = check_records(records, baselines, benchmarks,
                               args.threshold)
        for check in checks:
            marker = "REGRESSION" if check.regressed else "ok"
            print(f"  [{marker}] {check.benchmark}@{check.size}"
                  f" {check.metric}: {check.measured:g} vs baseline"
                  f" {check.baseline:g} ({check.change:+.1%},"
                  f" threshold -{check.threshold:.0%})")
        regressions = [check for check in checks if check.regressed]
        if regressions:
            print(f"{len(regressions)} regression(s) beyond"
                  f" {args.threshold:.0%}"
                  + (" (warn-only)" if args.warn_only else ""),
                  file=sys.stderr)
        monotone_checks = check_monotone(records, benchmarks,
                                         args.monotone_tolerance)
        for check in monotone_checks:
            marker = "NON-MONOTONE" if check.violated else "ok"
            print(f"  [{marker}] {check.benchmark} {check.metric}:"
                  f" {check.value:g} @{check.size} vs"
                  f" {check.prev_value:g} @{check.prev_size}"
                  f" (floor {check.tolerance:g}x)")
        monotone_violations = [check for check in monotone_checks
                               if check.violated]
        if monotone_violations:
            # Machine-independent (same-run) criterion: hard-fails
            # even under --warn-only, which exists for noisy
            # cross-machine baseline comparisons.
            print(f"{len(monotone_violations)} monotonicity"
                  f" violation(s) below"
                  f" {args.monotone_tolerance:g}x", file=sys.stderr)

    if args.update_baselines:
        document = merge_baselines(args.baselines,
                                   baselines_from_records(records))
        write_baselines(args.baselines, document)
        print(f"wrote {len(document['entries'])} baseline(s)"
              f" to {args.baselines}")

    if args.json:
        document = {
            "schema": "repro-bench-run/1",
            "records": records,
            "checks": [dataclasses.asdict(check)
                       for check in checks],
            "regressions": len(regressions),
            "monotone_checks": [dataclasses.asdict(check)
                                for check in monotone_checks],
            "monotone_violations": len(monotone_violations),
        }
        if profiler is not None:
            document["profile"] = profiler.report()
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, default=str)
            handle.write("\n")
        print(f"wrote bench JSON to {args.json}")

    if monotone_violations:
        return 1
    return 1 if regressions and not args.warn_only else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end co-design framework for"
                    " autonomous-system accelerators.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite = sub.add_parser("suite", help="run the benchmark suite"
                                         " across the platform catalog")
    suite.add_argument("--json", help="also write rows + scores +"
                                      " metrics as JSON")
    suite.add_argument("--trace-out", help="write a Chrome trace of"
                                           " the run")
    suite.add_argument("--jobs", type=int, default=1,
                       help="evaluate rows on a process pool of this"
                            " width (results are identical to serial)")
    suite.add_argument("--cache",
                       help="directory for the on-disk result cache;"
                            " re-runs answer from it without"
                            " re-evaluating")

    dse = sub.add_parser("dse", help="design-space exploration over"
                                     " the demo co-design space"
                                     " (suite-priced platform knobs)")
    dse.add_argument("--strategy", default="surrogate",
                     choices=["grid", "random", "evolutionary",
                              "surrogate", "funnel"])
    dse.add_argument("--space", default="codesign",
                     help=_space_help())
    dse.add_argument("--objective", default="suite_objective",
                     help="registered objective to optimize (e.g."
                          " suite_objective, mission_objective)")
    dse.add_argument("--budget", type=int, default=24,
                     help="unique-candidate evaluation budget"
                          " (for --strategy funnel: the cheap-tier"
                          " screen budget)")
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--jobs", type=int, default=1,
                     help="process-pool width for candidate pricing")
    dse.add_argument("--cache",
                     help="directory for the on-disk result cache")
    dse.add_argument("--chunk-size", type=int, default=None,
                     help="evaluate at most this many pending"
                          " candidates per oracle pass (bounds the"
                          " peak working set; results are identical)")
    dse.add_argument("--json", help="also write the best design +"
                                    " engine stats as JSON")

    audit = sub.add_parser("audit", help="Seven Challenges audit of a"
                                         " JSON design plan")
    audit.add_argument("plan", help="path to the design-plan JSON")

    run = sub.add_parser("run", help="execute a scenario file (a"
                                     " declarative suite, mission, or"
                                     " dse run)")
    run.add_argument("scenario", help="path to the scenario JSON"
                                      " (see examples/scenarios/)")
    run.add_argument("--json", help="also write results + metrics as"
                                    " JSON")
    run.add_argument("--trace-out", help="write a Chrome trace of the"
                                         " run (suite/mission)")
    run.add_argument("--jobs", type=int, default=None,
                     help="override the scenario's process-pool width")
    run.add_argument("--cache",
                     help="directory for the on-disk result cache;"
                          " shared with the suite/dse subcommands")

    spec = sub.add_parser("spec", help="validate or normalize spec"
                                       " files")
    spec_sub = spec.add_subparsers(dest="spec_command", required=True)
    spec_validate = spec_sub.add_parser(
        "validate", help="check spec files; exit 1 if any is invalid")
    spec_validate.add_argument("files", nargs="+",
                               help="spec JSON files")
    spec_show = spec_sub.add_parser(
        "show", help="load a spec file and pretty-print its"
                     " normalized document")
    spec_show.add_argument("file", help="spec JSON file")

    mission = sub.add_parser("mission", help="UAV compute-ladder"
                                             " mission sweep")
    mission.add_argument("--laps", type=int, default=20)
    mission.add_argument("--seed", type=int, default=11)
    mission.add_argument("--json", help="also write per-tier results"
                                        " as JSON")
    mission.add_argument("--trace-out", help="write a Chrome trace of"
                                             " the sweep")

    fleet = sub.add_parser("fleet", help="Monte Carlo mission sweep"
                                         " over the UAV compute ladder"
                                         " (vectorized fleet engine)")
    fleet.add_argument("--trials", type=int, default=64,
                       help="Monte Carlo trials per tier")
    fleet.add_argument("--laps", type=int, default=20)
    fleet.add_argument("--seed", type=int, default=0,
                       help="perturbation RNG seed")
    fleet.add_argument("--world-seed", type=int, default=11,
                       help="obstacle-world generation seed")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="shard the rollout population over a"
                            " process pool of this width (results are"
                            " identical to serial)")
    fleet.add_argument("--chunk-size", type=int, default=None,
                       help="evaluate rollouts through a fixed-size"
                            " arena window of this many at a time"
                            " (bounds the peak working set; results"
                            " are identical)")
    fleet.add_argument("--transport", default="auto",
                       choices=["auto", "shm", "pickle"],
                       help="shard transport for --jobs > 1: 'shm'"
                            " ships columns through shared memory"
                            " (zero-copy), 'pickle' serializes rollout"
                            " objects, 'auto' probes for shm support")
    fleet.add_argument("--json", help="also write per-tier statistics"
                                      " + metrics as JSON")
    fleet.add_argument("--trace-out", help="write a Chrome trace of"
                                           " the run")
    fleet.add_argument("--profile-out",
                       help="write a span-scoped profile JSON:"
                            " per-phase hotspots + exact"
                            " bytes-allocated counters")

    bench = sub.add_parser(
        "bench",
        help="run registered benchmarks; append provenance-stamped"
             " records to the perf ledger, optionally gating against"
             " the committed baselines")
    bench.add_argument("--list", action="store_true",
                       help="list matching benchmarks and exit")
    bench.add_argument("--filter", default="",
                       help="substring match on benchmark name or"
                            " tags (e.g. 'smoke')")
    bench.add_argument("--sizes",
                       help="comma-separated workload sizes"
                            " (overrides the smoke/full selection)")
    bench.add_argument("--full", action="store_true",
                       help="run the full sweep sizes instead of the"
                            " smoke sizes")
    bench.add_argument("--profile", action="store_true",
                       help="span-profile each run and print merged"
                            " hotspots")
    bench.add_argument("--json",
                       help="also write records + checks (+ profile)"
                            " as JSON")
    bench.add_argument("--ledger", default="BENCH_LEDGER.jsonl",
                       help="perf ledger path (JSONL, appended)")
    bench.add_argument("--no-ledger", action="store_true",
                       help="do not append this run to the ledger")
    bench.add_argument("--check", action="store_true",
                       help="compare gated metrics against the"
                            " baselines; exit 1 on regression")
    bench.add_argument("--baselines", default="BENCH_BASELINES.json",
                       help="committed baselines path")
    bench.add_argument("--threshold", type=float, default=0.15,
                       help="relative regression threshold for"
                            " --check (0.15 = 15%%)")
    bench.add_argument("--warn-only", action="store_true",
                       help="report baseline regressions but exit 0"
                            " (for noisy CI runners); same-run"
                            " monotonicity violations still fail")
    bench.add_argument("--monotone-tolerance", type=float, default=0.9,
                       help="--check floor for monotone-declared"
                            " metrics across a size sweep: each size's"
                            " value must be >= this fraction of the"
                            " previous size's (same-run, so it holds"
                            " on any machine)")
    bench.add_argument("--update-baselines", action="store_true",
                       help="merge this run's results into the"
                            " baselines file")
    bench.add_argument("--migrate", nargs="+", metavar="FILE",
                       help="convert legacy BENCH_*.json snapshots"
                            " into ledger records and exit")
    bench.add_argument("--seed", type=int, default=None,
                       help="seed recorded in run provenance")

    serve = sub.add_parser(
        "serve",
        help="run the evaluation daemon: coalesce concurrent clients'"
             " cache misses into shared oracle batches")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7343,
                       help="bind port (0 = ephemeral; the bound port"
                            " is printed on startup)")
    serve.add_argument("--max-batch", type=int, default=1024,
                       help="flush the pending set at this occupancy")
    serve.add_argument("--max-wait-ms", type=float, default=50.0,
                       help="flush a non-empty pending set after this"
                            " long (the latency a candidate pays for"
                            " the chance to coalesce)")
    serve.add_argument("--max-queue", type=int, default=8192,
                       help="admission bound on pending candidates;"
                            " beyond it submissions get 'overloaded'")
    serve.add_argument("--max-inflight", type=int, default=4096,
                       help="per-tenant bound on unanswered"
                            " candidates")
    serve.add_argument("--cache",
                       help="directory for the on-disk result cache;"
                            " shared with the dse/run subcommands, so"
                            " a server-primed cache replays 'repro"
                            " run' with zero oracle calls")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       help="bound the in-memory cache (LRU eviction)"
                            " for long-lived daemons")
    serve.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for oracle flushes")
    serve.add_argument("--chunk-size", type=int, default=None,
                       help="evaluate at most this many candidates"
                            " per oracle pass")
    serve.add_argument("--metrics-json",
                       help="write the dashboard metrics as JSON on"
                            " shutdown")

    submit = sub.add_parser(
        "submit",
        help="submit candidates to a running evaluation daemon")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7343)
    submit.add_argument("--objective", default="suite_objective",
                        help="registered objective to price under")
    submit.add_argument("--candidates",
                        help="JSON file holding a list of candidate"
                             " configs")
    submit.add_argument("--space", default="codesign",
                        help=_space_help())
    submit.add_argument("--indices",
                        help="design indices into --space, e.g."
                             " '0,3,8-11'")
    submit.add_argument("--tenant", default="cli",
                        help="tenant label for the daemon's per-tenant"
                             " accounting")
    submit.add_argument("--no-coalesce", action="store_true",
                        help="price this request's misses as their own"
                             " batch instead of joining the shared"
                             " pending set")
    submit.add_argument("--timeout", type=float, default=60.0,
                        help="per-request socket timeout in seconds")
    submit.add_argument("--stats", action="store_true",
                        help="print the daemon's dashboard")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to drain and exit")
    submit.add_argument("--json", help="also write the raw response"
                                       " envelope as JSON")

    fig1 = sub.add_parser("fig1", help="regenerate the Fig. 1 trend")
    fig1.add_argument("--seed", type=int, default=0)

    verify = sub.add_parser("verify", help="statically verify a"
                                           " pipeline DSL file")
    verify.add_argument("pipeline", help="path to the DSL file")
    verify.add_argument("--platform", default="embedded-cpu",
                        help=_platform_help())

    trace = sub.add_parser("trace", help="run an instrumented"
                                         " simulation and export a"
                                         " Chrome trace")
    trace_sub = trace.add_subparsers(dest="trace_command",
                                     required=True)

    trace_pipeline = trace_sub.add_parser(
        "pipeline", help="queued pipeline simulation of a suite"
                         " workload on a catalog platform")
    trace_pipeline.add_argument("--workload", default="vio-navigation")
    trace_pipeline.add_argument("--platform", default="embedded-cpu",
                                help=_platform_help())
    trace_pipeline.add_argument("--duration", type=float, default=1.0)
    trace_pipeline.add_argument("--queue-capacity", type=int, default=4)
    trace_pipeline.add_argument(
        "--out", default=None,
        help="trace output path (default: artifacts/trace.json)")
    trace_pipeline.add_argument("--metrics-out",
                                help="also write a metrics JSON")

    trace_scheduler = trace_sub.add_parser(
        "scheduler", help="Gantt trace of the autonomy task set under"
                          " a scheduling policy")
    trace_scheduler.add_argument("--policy", default="edf")
    trace_scheduler.add_argument("--duration", type=float, default=1.0)
    trace_scheduler.add_argument("--overload", action="store_true")
    trace_scheduler.add_argument(
        "--out", default=None,
        help="trace output path (default: artifacts/trace.json)")
    trace_scheduler.add_argument("--metrics-out",
                                 help="also write a metrics JSON")

    trace_summary = trace_sub.add_parser(
        "summary", help="summarize an exported Chrome trace")
    trace_summary.add_argument("trace", help="path to the trace JSON")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "suite": _cmd_suite,
        "audit": _cmd_audit,
        "dse": _cmd_dse,
        "mission": _cmd_mission,
        "fleet": _cmd_fleet,
        "bench": _cmd_bench,
        "fig1": _cmd_fig1,
        "verify": _cmd_verify,
        "trace": _cmd_trace,
        "run": _cmd_run,
        "spec": _cmd_spec,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
