"""Spec file I/O: versioned JSON documents on disk.

A spec *file* is a spec mapping plus a required top-level
``spec_version`` stamp.  Loading validates the stamp, applies any
registered migrations (older versions are upgraded in place, newer
versions are rejected with a clear message), strips it, and hands the
document to :func:`repro.spec.codec.from_spec`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict

from repro.errors import SpecError
from repro.spec import schema
from repro.spec.codec import SPEC_VERSION, from_spec, to_spec

__all__ = ["load_document", "migrate_document", "load_spec",
           "load_scenario", "dump_spec", "save_spec"]

#: version -> in-place upgrade to version+1.  Empty while the wire
#: format has never changed; grows alongside :data:`SPEC_VERSION`.
_MIGRATIONS: Dict[int, Callable[[Dict[str, Any]], Dict[str, Any]]] = {}


def load_document(path: str) -> Any:
    """Parse a JSON spec file (I/O and syntax errors become
    :class:`~repro.errors.SpecError` carrying the filename)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise SpecError(f"{path}: cannot read spec file: {error}") \
            from None
    except json.JSONDecodeError as error:
        raise SpecError(f"{path}: not valid JSON: {error}") from None


def migrate_document(document: Any, path: str = "$") -> Dict[str, Any]:
    """Check ``spec_version``, upgrade old documents, strip the stamp.

    Returns:
        The document as a plain spec mapping ready for ``from_spec``.
    """
    payload = schema.require_mapping(document, path)
    at = schema.child(path, "spec_version")
    version = schema.as_int(
        schema.get_field(payload, "spec_version", path), at)
    if version < 1:
        raise SpecError(f"{at}: must be >= 1, got {version}")
    if version > SPEC_VERSION:
        raise SpecError(
            f"{at}: document has spec_version {version}, but this"
            f" build reads up to {SPEC_VERSION}; it was written by a"
            f" newer version of repro"
        )
    upgraded = {k: v for k, v in payload.items()
                if k != "spec_version"}
    while version < SPEC_VERSION:
        upgraded = _MIGRATIONS[version](upgraded)
        version += 1
    return upgraded


def load_spec(path: str) -> Any:
    """Load and decode any spec file into its domain object."""
    return from_spec(migrate_document(load_document(path)))


def load_scenario(path: str):
    """Load a scenario file (a spec of kind ``scenario``)."""
    from repro.spec.scenario import Scenario

    scenario = load_spec(path)
    if not isinstance(scenario, Scenario):
        raise SpecError(
            f"{path}: expected a scenario spec,"
            f" got kind {to_spec(scenario).get('kind')!r}"
        )
    return scenario


def dump_spec(obj: Any) -> Dict[str, Any]:
    """Encode an object as a versioned spec document."""
    return {"spec_version": SPEC_VERSION, **to_spec(obj)}


def save_spec(obj: Any, path: str) -> None:
    """Write an object's versioned spec document as pretty JSON."""
    with open(path, "w") as handle:
        json.dump(dump_spec(obj), handle, indent=2)
        handle.write("\n")
