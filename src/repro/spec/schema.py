"""Validation primitives for the spec layer: typed coercion with paths.

Every helper takes the dotted path of the value it is checking and
raises :class:`~repro.errors.SpecError` with that path on failure, so a
deeply nested mistake in a scenario file surfaces as e.g.::

    $.suite.targets[2].cores: expected an integer, got str

instead of a traceback.  The helpers are deliberately tiny and
composable; :mod:`repro.spec.codec` builds whole-dataclass codecs out
of them.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Tuple

from repro.errors import SpecError

__all__ = [
    "type_name", "child", "item", "require_mapping", "check_keys",
    "as_bool", "as_int", "as_float", "as_str", "as_scalar",
    "as_sequence", "get_field",
]


def type_name(value: Any) -> str:
    """Human name of a value's type (``null`` for ``None``)."""
    if value is None:
        return "null"
    return type(value).__name__


def child(path: str, key: str) -> str:
    """The dotted path of a mapping field."""
    return f"{path}.{key}"


def item(path: str, index: int) -> str:
    """The dotted path of a sequence element."""
    return f"{path}[{index}]"


def require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecError(
            f"{path}: expected an object, got {type_name(value)}"
        )
    for key in value:
        if not isinstance(key, str):
            raise SpecError(
                f"{path}: object keys must be strings,"
                f" got {type_name(key)}"
            )
    return value


def check_keys(payload: Mapping[str, Any], allowed: Iterable[str],
               path: str) -> None:
    """Reject keys outside ``allowed`` (``kind`` is always allowed)."""
    permitted = set(allowed) | {"kind"}
    unknown = sorted(set(payload) - permitted)
    if unknown:
        fields = ", ".join(repr(k) for k in unknown)
        raise SpecError(
            f"{path}: unknown field(s) {fields};"
            f" allowed: {sorted(permitted - {'kind'})}"
        )


def as_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise SpecError(
            f"{path}: expected a boolean, got {type_name(value)}"
        )
    return value


def as_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(
            f"{path}: expected an integer, got {type_name(value)}"
        )
    return value


def as_float(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(
            f"{path}: expected a number, got {type_name(value)}"
        )
    return float(value)


def as_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise SpecError(
            f"{path}: expected a string, got {type_name(value)}"
        )
    return value


def as_scalar(value: Any, path: str) -> Any:
    """A JSON scalar (string, bool, int, float) passed through as-is."""
    if value is None or not isinstance(value, (str, bool, int, float)):
        raise SpecError(
            f"{path}: expected a scalar (string, boolean, or number),"
            f" got {type_name(value)}"
        )
    return value


def as_sequence(value: Any, path: str,
                min_items: int = 0) -> Tuple[Any, ...]:
    if isinstance(value, (str, bytes, Mapping)) \
            or not isinstance(value, Iterable):
        raise SpecError(
            f"{path}: expected a list, got {type_name(value)}"
        )
    items = tuple(value)
    if len(items) < min_items:
        raise SpecError(
            f"{path}: expected at least {min_items} item(s),"
            f" got {len(items)}"
        )
    return items


_MISSING = object()


def get_field(payload: Mapping[str, Any], name: str, path: str,
              default: Any = _MISSING) -> Any:
    """Fetch ``payload[name]``; without a default, absence is an error."""
    if name in payload:
        return payload[name]
    if default is _MISSING:
        raise SpecError(f"{path}: missing required field {name!r}")
    return default


def require_one_of(payload: Mapping[str, Any], names: Iterable[str],
                   path: str) -> str:
    """Exactly one of ``names`` must be present; returns which."""
    present = [n for n in names if n in payload]
    if len(present) != 1:
        options = ", ".join(repr(n) for n in names)
        raise SpecError(
            f"{path}: exactly one of {options} is required,"
            f" got {len(present)}"
        )
    return present[0]


def optional_int(payload: Mapping[str, Any], name: str, path: str,
                 default: Optional[int]) -> Optional[int]:
    if name not in payload:
        return default
    return as_int(payload[name], child(path, name))
