"""Declarative spec layer: versioned codecs, registries, scenario files.

Everything the framework can run — platforms, workloads, missions,
design spaces, whole experiments — round-trips through plain-JSON specs
(:func:`to_spec` / :func:`from_spec`), resolves named catalog entries
via ``{"ref": ...}`` registries, and loads from versioned files
(:func:`load_spec`, ``repro run``).  Decoded objects are the real
domain classes, so they share evaluation-engine fingerprints (and thus
cache keys) with programmatic construction.

Submodule attributes are re-exported lazily (PEP 562): provider modules
import :mod:`repro.spec.registry` at import time, which must not drag
the full codec stack (and its domain imports) in with it.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SpecError  # noqa: F401  (canonical re-export)

_EXPORTS = {
    "SPEC_VERSION": "repro.spec.codec",
    "Codec": "repro.spec.codec",
    "register_codec": "repro.spec.codec",
    "dataclass_codec": "repro.spec.codec",
    "to_spec": "repro.spec.codec",
    "from_spec": "repro.spec.codec",
    "known_kinds": "repro.spec.codec",
    "Registry": "repro.spec.registry",
    "RegistryEntry": "repro.spec.registry",
    "PLATFORMS": "repro.spec.registry",
    "WORKLOADS": "repro.spec.registry",
    "OBJECTIVES": "repro.spec.registry",
    "SPACES": "repro.spec.registry",
    "TIERS": "repro.spec.registry",
    "decode_platform": "repro.spec.codecs",
    "decode_workload": "repro.spec.codecs",
    "decode_design_space": "repro.spec.codecs",
    "Scenario": "repro.spec.scenario",
    "SuiteScenario": "repro.spec.scenario",
    "MissionScenario": "repro.spec.scenario",
    "FleetScenario": "repro.spec.scenario",
    "DseScenario": "repro.spec.scenario",
    "DSE_STRATEGIES": "repro.spec.scenario",
    "load_document": "repro.spec.loader",
    "migrate_document": "repro.spec.loader",
    "load_spec": "repro.spec.loader",
    "load_scenario": "repro.spec.loader",
    "dump_spec": "repro.spec.loader",
    "save_spec": "repro.spec.loader",
}

__all__ = ["SpecError", *_EXPORTS]


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
