"""Named-builder registries: ``{"ref": name}`` resolution for specs.

Catalog platforms, suite workloads, DSE objectives/spaces, and compute
ladders register themselves at import time via decorators::

    @PLATFORMS.register("embedded-cpu")
    def embedded_cpu(name: str = "embedded-cpu") -> CpuModel: ...

Any spec may then reference the entry by name (``{"ref":
"embedded-cpu"}``) instead of spelling out the full configuration, and
the CLI derives its catalog listings and help text from the same
entries — there is no second hand-maintained name list to drift.

This module is deliberately dependency-light (it imports only the
error hierarchy): provider modules import *it* for the decorators, and
the registries lazily import their providers on first lookup, so there
is no import cycle and ``import repro.spec.registry`` stays cheap.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.errors import SpecError

__all__ = ["Registry", "RegistryEntry", "PLATFORMS", "WORKLOADS",
           "OBJECTIVES", "SPACES", "TIERS"]


class RegistryEntry:
    """One named builder plus its metadata.

    Attributes:
        name: The reference name specs use.
        builder: The callable that produces the object.
        meta: Free-form metadata (e.g. ``programmable=False`` marks
            catalog entries the DSL verifier should not offer).
        doc: First line of the builder's docstring, for listings.
    """

    __slots__ = ("name", "builder", "meta", "doc")

    def __init__(self, name: str, builder: Callable[..., Any],
                 meta: Mapping[str, Any]):
        self.name = name
        self.builder = builder
        self.meta = dict(meta)
        doc = (builder.__doc__ or "").strip()
        self.doc = doc.splitlines()[0] if doc else ""

    def __repr__(self) -> str:
        return f"RegistryEntry({self.name!r})"


class Registry:
    """A name -> builder table resolvable from ``{"ref": ...}`` specs.

    Args:
        kind: What the entries build (used in error messages).
        providers: Modules that register the built-in entries; imported
            lazily on first lookup so the registry module itself stays
            import-cheap and cycle-free.
    """

    def __init__(self, kind: str, providers: Sequence[str] = ()):
        self._kind = kind
        self._providers = tuple(providers)
        self._entries: Dict[str, RegistryEntry] = {}
        self._loaded = False

    @property
    def kind(self) -> str:
        return self._kind

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        # Flip the flag first: a provider module may consult the
        # registry at the bottom of its own body (e.g. to derive its
        # legacy name->builder dict), which must not recurse here.
        self._loaded = True
        for module in self._providers:
            importlib.import_module(module)

    def register(self, name: str,
                 builder: Optional[Callable[..., Any]] = None,
                 **meta: Any):
        """Register ``builder`` under ``name`` (usable as a decorator).

        Returns the builder unchanged, so decorated functions keep
        working as plain callables (and stay picklable).
        """

        def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise SpecError(
                    f"duplicate {self._kind} registration: {name!r}"
                )
            self._entries[name] = RegistryEntry(name, fn, meta)
            return fn

        if builder is not None:
            return _register(builder)
        return _register

    def entry(self, name: str, path: str = "$") -> RegistryEntry:
        """The entry for ``name``; unknown names list what exists."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise SpecError(
                f"{path}: unknown {self._kind} ref {name!r};"
                f" registered: {sorted(self._entries)}"
            ) from None

    def get(self, name: str, path: str = "$") -> Callable[..., Any]:
        """The raw registered callable (for objectives, which are used
        as functions rather than called once to build an object)."""
        return self.entry(name, path).builder

    def build(self, name: str, path: str = "$", /,
              **kwargs: Any) -> Any:
        """Call the builder for ``name`` with ``kwargs`` (positional-
        only parameters, so ``kwargs`` may itself carry a ``name``
        builder argument, e.g. renaming a catalog platform)."""
        entry = self.entry(name, path)
        try:
            return entry.builder(**kwargs)
        except TypeError as error:
            raise SpecError(
                f"{path}: {self._kind} ref {name!r} rejected arguments"
                f" {sorted(kwargs)}: {error}"
            ) from None

    def names(self) -> List[str]:
        """Entry names in registration order."""
        self._ensure_loaded()
        return list(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """Entries in registration order."""
        self._ensure_loaded()
        return list(self._entries.values())

    def as_dict(self) -> Dict[str, Callable[..., Any]]:
        """A name -> builder mapping (registration order)."""
        self._ensure_loaded()
        return {name: entry.builder
                for name, entry in self._entries.items()}

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        self._ensure_loaded()
        return iter(self._entries)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"Registry({self._kind!r},"
                f" {len(self._entries)} entries)")


#: Catalog platforms (``repro.hw.catalog``).  Entries tagged
#: ``programmable=False`` (fixed-function accelerators) are excluded
#: from the CLI's ``--platform`` choices but remain referencable as SoC
#: accelerators in specs.
PLATFORMS = Registry("platform", providers=("repro.hw.catalog",))

#: Suite workloads (``repro.benchmarksuite.workloads``).
WORKLOADS = Registry("workload",
                     providers=("repro.benchmarksuite.workloads",))

#: Picklable DSE objectives (``repro.dse.objectives``).
OBJECTIVES = Registry("objective", providers=("repro.dse.objectives",))

#: Named design spaces (``repro.dse.objectives``).
SPACES = Registry("design space", providers=("repro.dse.objectives",))

#: Compute ladders for mission sweeps (``repro.hw.catalog``).
TIERS = Registry("tier ladder", providers=("repro.hw.catalog",))
