"""Codec core: tagged, versioned ``to_spec``/``from_spec`` dispatch.

A *spec* is a plain-JSON mapping tagged with a ``kind`` discriminator::

    {"kind": "cpu", "name": "embedded-cpu", "cores": 4, ...}

Each domain type registers a :class:`Codec` (most are generated from
the dataclass field types by :func:`dataclass_codec`).  ``to_spec``
looks the codec up by the object's type, ``from_spec`` by the payload's
``kind``.  Decoding validates shape *before* construction — unknown
keys, wrong types, and missing fields raise
:class:`~repro.errors.SpecError` with a dotted path — and then lets the
domain constructors run their own invariants, translating any
:class:`~repro.errors.ReproError` into a ``SpecError`` at the same
path.

Fingerprint compatibility is by construction: ``from_spec`` rebuilds
real domain objects (same classes, same field values), so the engine's
:func:`~repro.engine.fingerprint.fingerprint` sees exactly what a
programmatic construction would produce and spec-driven runs share
cache keys with code-driven runs.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.errors import ReproError, SpecError
from repro.spec import schema

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is always present in CI
    _np = None

__all__ = ["SPEC_VERSION", "Codec", "register_codec", "to_spec",
           "from_spec", "dataclass_codec", "dataclass_field_codecs",
           "value_codec", "known_kinds"]

#: Version stamp written into (and required from) spec *files*.  Bump it
#: when a codec's wire format changes incompatibly and add a migration
#: in :mod:`repro.spec.loader`.
SPEC_VERSION = 1


class Codec:
    """Encode/decode one Python type to/from a tagged JSON mapping.

    Attributes:
        kind: The ``kind`` discriminator value.
        cls: The Python type this codec encodes (``None`` for
            decode-only pseudo-kinds such as bare-``ref`` forms).
    """

    def __init__(self, kind: str, cls: Optional[type],
                 encode: Callable[[Any], Dict[str, Any]],
                 decode: Callable[[Mapping[str, Any], str], Any]):
        self.kind = kind
        self.cls = cls
        self._encode = encode
        self._decode = decode

    def encode(self, obj: Any) -> Dict[str, Any]:
        return {"kind": self.kind, **self._encode(obj)}

    def decode(self, payload: Mapping[str, Any], path: str) -> Any:
        return self._decode(payload, path)

    def __repr__(self) -> str:
        return f"Codec({self.kind!r}, {getattr(self.cls, '__name__', None)})"


_BY_KIND: Dict[str, Codec] = {}
_BY_TYPE: Dict[type, Codec] = {}
_LOADED = False


def _ensure_codecs() -> None:
    """Import the concrete codec modules on first use (they register
    themselves; importing them from here would be a cycle at module
    import time, not at call time)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    import repro.spec.codecs  # noqa: F401  (registers domain codecs)
    import repro.spec.scenario  # noqa: F401  (registers scenario codecs)


def register_codec(codec: Codec) -> Codec:
    """Register a codec by kind (and by type, when it has one)."""
    if codec.kind in _BY_KIND:
        raise SpecError(f"duplicate codec kind: {codec.kind!r}")
    _BY_KIND[codec.kind] = codec
    if codec.cls is not None:
        if codec.cls in _BY_TYPE:
            raise SpecError(
                f"duplicate codec for type {codec.cls.__name__}"
            )
        _BY_TYPE[codec.cls] = codec
    return codec


def known_kinds() -> List[str]:
    """All registered ``kind`` discriminators, sorted."""
    _ensure_codecs()
    return sorted(_BY_KIND)


def _codec_for_object(obj: Any) -> Codec:
    _ensure_codecs()
    for cls in type(obj).__mro__:
        codec = _BY_TYPE.get(cls)
        if codec is not None:
            return codec
    raise SpecError(
        f"no codec for objects of type {type(obj).__name__};"
        f" known kinds: {known_kinds()}"
    )


def to_spec(obj: Any) -> Dict[str, Any]:
    """Encode a domain object as a tagged plain-JSON mapping."""
    return _codec_for_object(obj).encode(obj)


def from_spec(spec: Any, path: str = "$") -> Any:
    """Decode a tagged mapping back into a domain object.

    Raises:
        SpecError: with a dotted path on any shape or value problem.
    """
    _ensure_codecs()
    payload = schema.require_mapping(spec, path)
    kind = schema.as_str(
        schema.get_field(payload, "kind", path), schema.child(path, "kind")
    )
    codec = _BY_KIND.get(kind)
    if codec is None:
        raise SpecError(
            f"{schema.child(path, 'kind')}: unknown kind {kind!r};"
            f" known kinds: {known_kinds()}"
        )
    return codec.decode(payload, path)


# --------------------------------------------------------------------------
# Value codecs: encode/decode one field value, derived from type hints.
# --------------------------------------------------------------------------

class _Value:
    """Base field-value codec (identity encode)."""

    def encode(self, value: Any) -> Any:
        return value

    def decode(self, value: Any, path: str) -> Any:
        raise NotImplementedError


class _Float(_Value):
    def decode(self, value: Any, path: str) -> Any:
        schema.as_float(value, path)
        # Keep the int/float distinction the document had: canonical
        # fingerprints tell 1920 from 1920.0, and programmatic code
        # passes ints into float fields all over (output_bytes=120*16).
        return value


class _Int(_Value):
    def decode(self, value: Any, path: str) -> int:
        return schema.as_int(value, path)


class _Bool(_Value):
    def decode(self, value: Any, path: str) -> bool:
        return schema.as_bool(value, path)


class _Str(_Value):
    def decode(self, value: Any, path: str) -> str:
        return schema.as_str(value, path)


class _Scalar(_Value):
    def decode(self, value: Any, path: str) -> Any:
        return schema.as_scalar(value, path)


class _OptionalV(_Value):
    def __init__(self, inner: _Value):
        self.inner = inner

    def encode(self, value: Any) -> Any:
        return None if value is None else self.inner.encode(value)

    def decode(self, value: Any, path: str) -> Any:
        return None if value is None else self.inner.decode(value, path)


class _TupleV(_Value):
    def __init__(self, inner: _Value):
        self.inner = inner

    def encode(self, value: Any) -> Any:
        return [self.inner.encode(v) for v in value]

    def decode(self, value: Any, path: str) -> Tuple[Any, ...]:
        items = schema.as_sequence(value, path)
        return tuple(self.inner.decode(v, schema.item(path, i))
                     for i, v in enumerate(items))


class _FixedTupleV(_Value):
    def __init__(self, inners: Tuple[_Value, ...]):
        self.inners = inners

    def encode(self, value: Any) -> Any:
        return [inner.encode(v) for inner, v in zip(self.inners, value)]

    def decode(self, value: Any, path: str) -> Tuple[Any, ...]:
        items = schema.as_sequence(value, path)
        if len(items) != len(self.inners):
            raise SpecError(
                f"{path}: expected exactly {len(self.inners)} item(s),"
                f" got {len(items)}"
            )
        return tuple(inner.decode(v, schema.item(path, i))
                     for i, (inner, v) in
                     enumerate(zip(self.inners, items)))


class _FrozenSetV(_Value):
    def __init__(self, inner: _Value):
        self.inner = inner

    def encode(self, value: Any) -> Any:
        return sorted(self.inner.encode(v) for v in value)

    def decode(self, value: Any, path: str) -> frozenset:
        items = schema.as_sequence(value, path)
        return frozenset(self.inner.decode(v, schema.item(path, i))
                         for i, v in enumerate(items))


class _DictV(_Value):
    def __init__(self, inner: _Value):
        self.inner = inner

    def encode(self, value: Any) -> Any:
        return {key: self.inner.encode(v) for key, v in value.items()}

    def decode(self, value: Any, path: str) -> Dict[str, Any]:
        mapping = schema.require_mapping(value, path)
        return {key: self.inner.decode(v, schema.child(path, key))
                for key, v in mapping.items()}


class _EnumV(_Value):
    def __init__(self, enum_cls: Type[enum.Enum]):
        self.enum_cls = enum_cls

    def encode(self, value: Any) -> Any:
        return value.value

    def decode(self, value: Any, path: str) -> enum.Enum:
        try:
            return self.enum_cls(value)
        except ValueError:
            options = sorted(m.value for m in self.enum_cls)
            raise SpecError(
                f"{path}: expected one of {options}, got {value!r}"
            ) from None


class _NdarrayV(_Value):
    def encode(self, value: Any) -> Any:
        return value.tolist()

    def decode(self, value: Any, path: str) -> Any:
        def _check(node: Any, at: str) -> Any:
            if isinstance(node, (list, tuple)):
                return [_check(v, schema.item(at, i))
                        for i, v in enumerate(node)]
            return schema.as_float(node, at)

        try:
            return _np.asarray(_check(value, path), dtype=float)
        except ValueError as error:
            raise SpecError(f"{path}: not a valid array: {error}") \
                from None


class _NestedV(_Value):
    """A field holding another codec-managed object."""

    def __init__(self, expected: type):
        self.expected = expected

    def encode(self, value: Any) -> Any:
        return to_spec(value)

    def decode(self, value: Any, path: str) -> Any:
        obj = from_spec(value, path)
        if not isinstance(obj, self.expected):
            raise SpecError(
                f"{path}: expected a {self.expected.__name__} spec,"
                f" got kind producing {type(obj).__name__}"
            )
        return obj


def value_codec(annotation: Any) -> _Value:
    """Derive a field-value codec from a type annotation."""
    if annotation is float:
        return _Float()
    if annotation is bool:
        return _Bool()
    if annotation is int:
        return _Int()
    if annotation is str:
        return _Str()
    if annotation is Any:
        return _Scalar()
    if _np is not None and annotation is _np.ndarray:
        return _NdarrayV()
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is typing.Union:
        inner = [a for a in args if a is not type(None)]
        if len(inner) == 1 and len(args) == 2:
            return _OptionalV(value_codec(inner[0]))
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return _TupleV(value_codec(args[0]))
        return _FixedTupleV(tuple(value_codec(a) for a in args))
    if origin in (frozenset, set):
        return _FrozenSetV(value_codec(args[0]))
    if origin is dict:
        if args and args[0] is not str:
            raise SpecError(
                f"spec codecs require string dict keys, got {annotation!r}"
            )
        return _DictV(value_codec(args[1]) if args else _Scalar())
    if isinstance(annotation, type):
        if issubclass(annotation, enum.Enum):
            return _EnumV(annotation)
        return _NestedV(annotation)
    raise SpecError(f"no value codec for annotation {annotation!r}")


# --------------------------------------------------------------------------
# Whole-dataclass codecs.
# --------------------------------------------------------------------------

def dataclass_field_codecs(
    cls: type, exclude: Tuple[str, ...] = (),
    overrides: Optional[Mapping[str, _Value]] = None,
) -> Tuple[Dict[str, _Value], List[str]]:
    """Per-field value codecs (and required-field names) for a
    dataclass, derived from its type hints."""
    overrides = dict(overrides or {})
    hints = typing.get_type_hints(cls)
    codecs: Dict[str, _Value] = {}
    required: List[str] = []
    for f in dataclasses.fields(cls):
        if f.name in exclude:
            continue
        codecs[f.name] = overrides.get(f.name) \
            or value_codec(hints[f.name])
        if f.default is dataclasses.MISSING \
                and f.default_factory is dataclasses.MISSING:
            required.append(f.name)
    return codecs, required


def dataclass_codec(
    kind: str,
    cls: type,
    *,
    register_type: Optional[type] = None,
    build: Optional[Callable[[Any], Any]] = None,
    extract: Optional[Callable[[Any], Any]] = None,
    exclude: Tuple[str, ...] = (),
    overrides: Optional[Mapping[str, _Value]] = None,
    pre_encode: Optional[Callable[[Any], None]] = None,
    wrap_decode: Optional[Callable[
        [Mapping[str, Any], str, Callable[[], Any]], Any]] = None,
) -> Codec:
    """Generate a codec for dataclass ``cls`` from its field types.

    Args:
        kind: The ``kind`` discriminator.
        cls: The dataclass whose fields define the wire format.
        register_type: Type keyed in the by-type table (defaults to
            ``cls``); pass the *model* class when the dataclass is its
            config (e.g. ``CpuConfig`` fields, ``CpuModel`` instances).
        build: Applied to the constructed config to produce the final
            object (e.g. ``CpuModel``).
        extract: Applied to the object before reading fields (e.g.
            ``lambda m: m.cpu``).
        exclude: Field names left off the wire (e.g. callables).
        overrides: Field name -> explicit value codec.
        pre_encode: Hook that may reject un-encodable instances.
        wrap_decode: Hook around decoding (for ``ref`` short forms):
            receives ``(payload, path, decode_plain)``.
    """
    codecs, required = dataclass_field_codecs(cls, exclude, overrides)

    def encode(obj: Any) -> Dict[str, Any]:
        if pre_encode is not None:
            pre_encode(obj)
        source = extract(obj) if extract is not None else obj
        return {name: vc.encode(getattr(source, name))
                for name, vc in codecs.items()}

    def decode_fields(payload: Mapping[str, Any], path: str) -> Any:
        schema.check_keys(payload, codecs, path)
        kwargs: Dict[str, Any] = {}
        for name, vc in codecs.items():
            if name in payload:
                kwargs[name] = vc.decode(payload[name],
                                         schema.child(path, name))
            elif name in required:
                raise SpecError(
                    f"{path}: missing required field {name!r}"
                )
        try:
            config = cls(**kwargs)
            return build(config) if build is not None else config
        except SpecError:
            raise
        except ReproError as error:
            raise SpecError(f"{path}: {error}") from error

    def decode(payload: Mapping[str, Any], path: str) -> Any:
        if wrap_decode is not None:
            return wrap_decode(payload, path,
                               lambda: decode_fields(payload, path))
        return decode_fields(payload, path)

    return register_codec(
        Codec(kind, register_type or cls, encode, decode)
    )
