"""Concrete codecs for every spec-addressable domain type.

Wire kinds (the ``kind`` discriminator each type serializes under):

==================  ====================================================
kind                Python type
==================  ====================================================
``profile``         :class:`repro.core.profile.WorkloadProfile`
``kernel``          :class:`repro.core.workload.Kernel` (static only)
``stage``           :class:`repro.core.workload.Stage`
``task-graph``      :class:`repro.core.workload.TaskGraph`
``workload``        :class:`repro.core.workload.Workload` (ref-able)
``platform-config`` :class:`repro.hw.platform.PlatformConfig`
``analytical-platform``  :class:`repro.hw.platform.AnalyticalPlatform`
``cpu``             :class:`repro.hw.cpu.CpuModel` (CpuConfig fields)
``gpu``             :class:`repro.hw.gpu.GpuModel`
``fpga``            :class:`repro.hw.fpga.FpgaModel` (+ ``strict``)
``asic``            :class:`repro.hw.asic.AsicAccelerator`
``interconnect``    :class:`repro.hw.mapping.Interconnect`
``soc``             :class:`repro.hw.mapping.HeterogeneousSoC`
``platform``        ref-only short form resolved via the catalog
``circle-world``    :class:`repro.kernels.planning.occupancy.CircleWorld`
``uav``             :class:`repro.system.robot.UavPhysics`
``battery``         :class:`repro.system.robot.BatteryModel`
``mission``         :class:`repro.system.mission.MissionConfig`
``parameter``       :class:`repro.dse.space.Parameter`
``design-space``    :class:`repro.dse.space.DesignSpace` (ref-able)
``benchmark-row``   :class:`repro.benchmarksuite.runner.BenchmarkRow`
==================  ====================================================

Model classes serialize through their *domain* config (a ``cpu`` spec
carries ``CpuConfig`` fields, not the derived roofline numbers), so the
wire format matches how a designer thinks and the derived
:class:`~repro.hw.platform.PlatformConfig` is recomputed on decode —
which is also what keeps decoded objects fingerprint-identical to
programmatic ones.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Union

from repro.benchmarksuite.runner import BenchmarkRow
from repro.core.profile import WorkloadProfile
from repro.core.workload import Kernel, Stage, TaskGraph, Workload
from repro.dse.space import DesignSpace, Parameter
from repro.errors import ReproError, SpecError
from repro.hw.asic import AsicAccelerator, AsicConfig
from repro.hw.cpu import CpuConfig, CpuModel
from repro.hw.fpga import FpgaConfig, FpgaModel
from repro.hw.gpu import GpuConfig, GpuModel
from repro.hw.mapping import HeterogeneousSoC, Interconnect
from repro.hw.platform import AnalyticalPlatform, Platform, PlatformConfig
from repro.kernels.planning.occupancy import CircleWorld
from repro.spec import schema
from repro.spec.codec import (
    Codec,
    dataclass_codec,
    dataclass_field_codecs,
    from_spec,
    register_codec,
    to_spec,
)
from repro.spec.registry import PLATFORMS, SPACES, WORKLOADS
from repro.system.mission import MissionConfig
from repro.system.robot import BatteryModel, UavPhysics

PlatformLike = Union[Platform, HeterogeneousSoC]

__all__ = ["decode_platform", "decode_workload", "decode_design_space"]


# --------------------------------------------------------------------------
# Core workload IR.
# --------------------------------------------------------------------------

dataclass_codec("profile", WorkloadProfile)
dataclass_codec("stage", Stage)
dataclass_codec("benchmark-row", BenchmarkRow)


def _kernel_pre_encode(kernel: Kernel) -> None:
    if kernel.profile_fn is not None:
        raise SpecError(
            f"kernel {kernel.name!r} has a profile_fn callable, which"
            " cannot be serialized; only static-profile kernels are"
            " spec-addressable"
        )


dataclass_codec("kernel", Kernel, exclude=("profile_fn",),
                pre_encode=_kernel_pre_encode)


def _encode_graph(graph: TaskGraph) -> Dict[str, Any]:
    return {"name": graph.name,
            "stages": [to_spec(s) for s in graph.stages]}


def _decode_graph(payload: Mapping[str, Any], path: str) -> TaskGraph:
    schema.check_keys(payload, ("name", "stages"), path)
    name = schema.as_str(schema.get_field(payload, "name", path),
                         schema.child(path, "name"))
    items = schema.as_sequence(
        schema.get_field(payload, "stages", path),
        schema.child(path, "stages"), min_items=1)
    stages = []
    for index, item in enumerate(items):
        at = schema.item(schema.child(path, "stages"), index)
        stage = from_spec(item, at)
        if not isinstance(stage, Stage):
            raise SpecError(f"{at}: expected a stage spec")
        stages.append(stage)
    try:
        return TaskGraph(name, stages)
    except ReproError as error:
        raise SpecError(f"{path}: {error}") from error


register_codec(Codec("task-graph", TaskGraph, _encode_graph,
                     _decode_graph))


def _workload_ref_or_plain(payload: Mapping[str, Any], path: str,
                           decode_plain):
    if "ref" in payload:
        schema.check_keys(payload, ("ref",), path)
        name = schema.as_str(payload["ref"], schema.child(path, "ref"))
        return WORKLOADS.build(name, path)
    return decode_plain()


dataclass_codec("workload", Workload,
                wrap_decode=_workload_ref_or_plain)


def decode_workload(spec: Any, path: str = "$") -> Workload:
    """Decode a workload spec or ``{"ref": name}`` short form."""
    payload = schema.require_mapping(spec, path)
    if "ref" in payload and "kind" not in payload:
        return _workload_ref_or_plain(payload, path, None)
    obj = from_spec(payload, path)
    if not isinstance(obj, Workload):
        raise SpecError(f"{path}: expected a workload spec")
    return obj


# --------------------------------------------------------------------------
# Hardware platforms.
# --------------------------------------------------------------------------

dataclass_codec("platform-config", PlatformConfig)
dataclass_codec("analytical-platform", PlatformConfig,
                register_type=AnalyticalPlatform,
                build=AnalyticalPlatform,
                extract=lambda platform: platform.config)
dataclass_codec("cpu", CpuConfig, register_type=CpuModel,
                build=CpuModel, extract=lambda model: model.cpu)
dataclass_codec("gpu", GpuConfig, register_type=GpuModel,
                build=GpuModel, extract=lambda model: model.gpu)
dataclass_codec("asic", AsicConfig, register_type=AsicAccelerator,
                build=AsicAccelerator,
                extract=lambda model: model.asic)
dataclass_codec("interconnect", Interconnect)

_FPGA_FIELDS, _FPGA_REQUIRED = dataclass_field_codecs(FpgaConfig)


def _encode_fpga(model: FpgaModel) -> Dict[str, Any]:
    payload = {name: vc.encode(getattr(model.fpga, name))
               for name, vc in _FPGA_FIELDS.items()}
    payload["strict"] = model.strict
    return payload


def _decode_fpga(payload: Mapping[str, Any], path: str) -> FpgaModel:
    allowed = set(_FPGA_FIELDS) | {"strict"}
    schema.check_keys(payload, allowed, path)
    kwargs: Dict[str, Any] = {}
    for name, vc in _FPGA_FIELDS.items():
        if name in payload:
            kwargs[name] = vc.decode(payload[name],
                                     schema.child(path, name))
        elif name in _FPGA_REQUIRED:
            raise SpecError(f"{path}: missing required field {name!r}")
    strict = schema.as_bool(payload.get("strict", False),
                            schema.child(path, "strict"))
    try:
        return FpgaModel(FpgaConfig(**kwargs), strict=strict)
    except ReproError as error:
        raise SpecError(f"{path}: {error}") from error


register_codec(Codec("fpga", FpgaModel, _encode_fpga, _decode_fpga))


def decode_platform(spec: Any, path: str = "$",
                    allow_soc: bool = True) -> PlatformLike:
    """Decode a platform spec, a ``{"ref": name}`` catalog reference
    (extra keys become builder arguments, e.g. a ``name`` override), or
    an SoC composition."""
    payload = schema.require_mapping(spec, path)
    if "ref" in payload:
        if payload.get("kind", "platform") != "platform":
            raise SpecError(
                f"{schema.child(path, 'kind')}: a ref-form platform"
                f" must use kind 'platform' (or omit kind),"
                f" got {payload['kind']!r}"
            )
        name = schema.as_str(payload["ref"], schema.child(path, "ref"))
        kwargs = {key: value for key, value in payload.items()
                  if key not in ("kind", "ref")}
        obj = PLATFORMS.build(name, path, **kwargs)
    else:
        obj = from_spec(payload, path)
    if isinstance(obj, HeterogeneousSoC):
        if not allow_soc:
            raise SpecError(
                f"{path}: expected a device platform, got an SoC"
            )
        return obj
    if not isinstance(obj, Platform):
        raise SpecError(f"{path}: expected a platform spec")
    return obj


def _decode_platform_ref(payload: Mapping[str, Any],
                         path: str) -> PlatformLike:
    if "ref" not in payload:
        raise SpecError(
            f"{path}: kind 'platform' is the ref short form; use a"
            " concrete kind (cpu, gpu, fpga, asic,"
            " analytical-platform, soc) to spell a platform out"
        )
    return decode_platform(payload, path)


register_codec(Codec("platform", None,
                     lambda obj: {},  # never used for encoding
                     _decode_platform_ref))


def _encode_soc(soc: HeterogeneousSoC) -> Dict[str, Any]:
    return {
        "name": soc.name,
        "host": to_spec(soc.host),
        "accelerators": [to_spec(a) for a in soc.accelerators],
        "interconnect": to_spec(soc.interconnect),
    }


def _decode_soc(payload: Mapping[str, Any],
                path: str) -> HeterogeneousSoC:
    schema.check_keys(
        payload, ("name", "host", "accelerators", "interconnect"), path)
    name = schema.as_str(schema.get_field(payload, "name", path),
                         schema.child(path, "name"))
    host = decode_platform(schema.get_field(payload, "host", path),
                           schema.child(path, "host"), allow_soc=False)
    accelerators = []
    items = schema.as_sequence(payload.get("accelerators", ()),
                               schema.child(path, "accelerators"))
    for index, item in enumerate(items):
        at = schema.item(schema.child(path, "accelerators"), index)
        accelerators.append(decode_platform(item, at, allow_soc=False))
    interconnect = None
    if "interconnect" in payload:
        at = schema.child(path, "interconnect")
        interconnect = from_spec(payload["interconnect"], at)
        if not isinstance(interconnect, Interconnect):
            raise SpecError(f"{at}: expected an interconnect spec")
    try:
        return HeterogeneousSoC(name, host, accelerators,
                                interconnect=interconnect)
    except ReproError as error:
        raise SpecError(f"{path}: {error}") from error


register_codec(Codec("soc", HeterogeneousSoC, _encode_soc,
                     _decode_soc))


# --------------------------------------------------------------------------
# Mission / system.
# --------------------------------------------------------------------------

dataclass_codec("uav", UavPhysics)
dataclass_codec("battery", BatteryModel)

_WORLD_RANDOM_DEFAULTS: Dict[str, Any] = {
    "dim": 2, "n_obstacles": 30, "extent": 10.0,
    "radius_range": (0.3, 0.8), "seed": 0, "keep_corners_free": 1.0,
}


def _encode_world(world: CircleWorld) -> Dict[str, Any]:
    return {
        "lower": world.lower.tolist(),
        "upper": world.upper.tolist(),
        "centers": world.centers.tolist(),
        "radii": world.radii.tolist(),
    }


def _decode_world(payload: Mapping[str, Any], path: str) -> CircleWorld:
    if "random" in payload:
        schema.check_keys(payload, ("random",), path)
        at = schema.child(path, "random")
        options = schema.require_mapping(payload["random"], at)
        schema.check_keys(options, _WORLD_RANDOM_DEFAULTS, at)
        kwargs = dict(_WORLD_RANDOM_DEFAULTS)
        for key in ("dim", "n_obstacles", "seed"):
            if key in options:
                kwargs[key] = schema.as_int(options[key],
                                            schema.child(at, key))
        for key in ("extent", "keep_corners_free"):
            if key in options:
                kwargs[key] = schema.as_float(options[key],
                                              schema.child(at, key))
        if "radius_range" in options:
            pair_at = schema.child(at, "radius_range")
            pair = schema.as_sequence(options["radius_range"], pair_at)
            if len(pair) != 2:
                raise SpecError(
                    f"{pair_at}: expected exactly 2 item(s),"
                    f" got {len(pair)}"
                )
            kwargs["radius_range"] = tuple(
                schema.as_float(v, schema.item(pair_at, i))
                for i, v in enumerate(pair))
        try:
            return CircleWorld.random(**kwargs)
        except ReproError as error:
            raise SpecError(f"{path}: {error}") from error
    schema.check_keys(payload, ("lower", "upper", "centers", "radii"),
                      path)
    arrays: Dict[str, Any] = {}
    for key in ("lower", "upper"):
        at = schema.child(path, key)
        arrays[key] = _as_float_list(
            schema.get_field(payload, key, path), at)
    for key in ("centers", "radii"):
        if key in payload:
            arrays[key] = payload[key]
    try:
        return CircleWorld(**arrays)
    except ReproError as error:
        raise SpecError(f"{path}: {error}") from error
    except (TypeError, ValueError) as error:
        raise SpecError(f"{path}: not a valid world: {error}") \
            from None


def _as_float_list(value: Any, path: str) -> list:
    items = schema.as_sequence(value, path)
    return [schema.as_float(v, schema.item(path, i))
            for i, v in enumerate(items)]


register_codec(Codec("circle-world", CircleWorld, _encode_world,
                     _decode_world))

dataclass_codec("mission", MissionConfig)


# --------------------------------------------------------------------------
# DSE.
# --------------------------------------------------------------------------

dataclass_codec("parameter", Parameter)


def _encode_space(space: DesignSpace) -> Dict[str, Any]:
    return {"parameters": [to_spec(p) for p in space.parameters]}


def _decode_space(payload: Mapping[str, Any],
                  path: str) -> DesignSpace:
    if "ref" in payload:
        schema.check_keys(payload, ("ref",), path)
        name = schema.as_str(payload["ref"], schema.child(path, "ref"))
        return SPACES.build(name, path)
    schema.check_keys(payload, ("parameters",), path)
    items = schema.as_sequence(
        schema.get_field(payload, "parameters", path),
        schema.child(path, "parameters"), min_items=1)
    parameters = []
    for index, item in enumerate(items):
        at = schema.item(schema.child(path, "parameters"), index)
        parameter = from_spec(item, at)
        if not isinstance(parameter, Parameter):
            raise SpecError(f"{at}: expected a parameter spec")
        parameters.append(parameter)
    try:
        return DesignSpace(parameters)
    except ReproError as error:
        raise SpecError(f"{path}: {error}") from error


register_codec(Codec("design-space", DesignSpace, _encode_space,
                     _decode_space))


def decode_design_space(spec: Any, path: str = "$") -> DesignSpace:
    """Decode a design-space spec or ``{"ref": name}`` short form."""
    payload = schema.require_mapping(spec, path)
    if "ref" in payload and "kind" not in payload:
        return _decode_space(payload, path)
    obj = from_spec(payload, path)
    if not isinstance(obj, DesignSpace):
        raise SpecError(f"{path}: expected a design-space spec")
    return obj
