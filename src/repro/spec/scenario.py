"""Scenario specs: whole CLI runs as declarative documents.

A scenario file is a spec of kind ``scenario`` holding exactly one run
section — ``suite``, ``mission``, ``fleet``, or ``dse`` — mirroring the
matching CLI subcommand::

    {"spec_version": 1, "kind": "scenario", "name": "uav-codesign",
     "dse": {"space": {"ref": "codesign"},
             "objective": {"ref": "suite_objective"},
             "strategy": "random", "budget": 8, "seed": 3}}

``repro run <file>`` executes one through the same code paths (and the
same evaluation-engine contexts) as the programmatic subcommands, so a
scenario reproduces a code-driven run exactly, cache keys included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.workload import Workload
from repro.dse.funnel import INNER_STRATEGIES, FunnelConfig, \
    PromotionGate
from repro.dse.space import DesignSpace
from repro.errors import ConfigurationError, SearchError, SpecError
from repro.hw.platform import Platform
from repro.spec import schema
from repro.spec.codec import Codec, from_spec, register_codec, to_spec
from repro.spec.codecs import (
    PlatformLike,
    decode_design_space,
    decode_platform,
    decode_workload,
)
from repro.spec.registry import OBJECTIVES, TIERS
from repro.system.fleet import FleetPerturbation
from repro.system.mission import MissionConfig

__all__ = ["Scenario", "SuiteScenario", "MissionScenario",
           "FleetScenario", "DseScenario", "DSE_STRATEGIES"]

#: Search strategies ``dse`` scenarios (and the CLI) accept.
DSE_STRATEGIES = ("grid", "random", "evolutionary", "surrogate",
                  "funnel")

#: One mission compute tier: (name, platform, mass_kg, power_w).
Tier = Tuple[str, Platform, float, float]


@dataclass
class SuiteScenario:
    """A benchmark-suite run: workloads priced across target platforms.

    Attributes:
        targets: Platforms (or SoCs) to price the suite on.
        reference: Target name speedups are normalized against.
        workloads: Suite rows; ``None`` means the standard suite.
        jobs: Process-pool width (1 = serial; results identical).
    """

    targets: Tuple[PlatformLike, ...]
    reference: str = "embedded-cpu"
    workloads: Optional[Tuple[Workload, ...]] = None
    jobs: int = 1


@dataclass
class MissionScenario:
    """A closed-loop mission sweep over a compute ladder.

    Attributes:
        config: The mission (world, endpoints, airframe, battery...).
        tiers: ``(name, platform, mass_kg, power_w)`` ladder rows.
        seed: Recorded in run provenance (the world already carries its
            own generation seed); purely informational.
    """

    config: MissionConfig
    tiers: Tuple[Tier, ...]
    seed: Optional[int] = None


@dataclass
class FleetScenario:
    """A Monte Carlo fleet study over a compute ladder
    (:class:`repro.system.fleet.FleetStudy`, declaratively).

    Attributes:
        config: Baseline mission scenario.
        tiers: ``(name, platform, mass_kg, power_w)`` ladder rows.
        trials: Monte Carlo trials per tier.
        seed: Perturbation RNG seed.
        jobs: Process-pool width (1 = serial; results identical).
        chunk_size: Stream rollouts through the engine in windows of
            this many (``None`` = whole population at once; results
            identical either way).
        perturbation: Per-axis relative perturbation spreads.
    """

    config: MissionConfig
    tiers: Tuple[Tier, ...]
    trials: int = 64
    seed: int = 0
    jobs: int = 1
    chunk_size: Optional[int] = None
    perturbation: FleetPerturbation = field(
        default_factory=FleetPerturbation)


@dataclass
class DseScenario:
    """A design-space exploration run.

    Attributes:
        space: The space to search.
        objective: Registered objective name (see
            :data:`repro.spec.registry.OBJECTIVES`).
        strategy: One of :data:`DSE_STRATEGIES`.
        budget: Unique-candidate evaluation budget.
        seed: Search seed.
        jobs: Process-pool width for candidate pricing.
        chunk_size: Evaluate at most this many pending candidates per
            oracle pass (``None`` = all at once; results identical).
        funnel: Multi-fidelity funnel knobs (inner strategy, promotion
            gates); only meaningful — and only accepted — with
            ``strategy="funnel"``.  ``None`` means the defaults
            (:func:`repro.dse.funnel.default_gates`).
    """

    space: DesignSpace
    objective: str = "suite_objective"
    strategy: str = "surrogate"
    budget: int = 24
    seed: int = 0
    jobs: int = 1
    chunk_size: Optional[int] = None
    funnel: Optional[FunnelConfig] = None


@dataclass
class Scenario:
    """A named, runnable experiment description.

    Attributes:
        name: Human-readable scenario name (printed by ``repro run``).
        run: The run section; its type selects the execution path.
    """

    name: str
    run: Union[SuiteScenario, MissionScenario, FleetScenario,
               DseScenario]


# --------------------------------------------------------------------------
# Codec.
# --------------------------------------------------------------------------

def _positive_jobs(payload: Mapping[str, Any], path: str) -> int:
    jobs = schema.optional_int(payload, "jobs", path, 1)
    if jobs < 1:
        raise SpecError(
            f"{schema.child(path, 'jobs')}: must be >= 1, got {jobs}"
        )
    return jobs


def _optional_chunk_size(payload: Mapping[str, Any],
                         path: str) -> Optional[int]:
    chunk_size = schema.optional_int(payload, "chunk_size", path, None)
    if chunk_size is not None and chunk_size < 1:
        raise SpecError(
            f"{schema.child(path, 'chunk_size')}: must be >= 1,"
            f" got {chunk_size}"
        )
    return chunk_size


def _encode_suite(run: SuiteScenario) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "targets": [to_spec(t) for t in run.targets],
        "reference": run.reference,
        "jobs": run.jobs,
    }
    if run.workloads is not None:
        payload["workloads"] = [to_spec(w) for w in run.workloads]
    return payload


def _decode_suite(payload: Mapping[str, Any],
                  path: str) -> SuiteScenario:
    schema.check_keys(
        payload, ("targets", "reference", "workloads", "jobs"), path)
    targets_at = schema.child(path, "targets")
    items = schema.as_sequence(
        schema.get_field(payload, "targets", path), targets_at,
        min_items=1)
    targets = tuple(
        decode_platform(item, schema.item(targets_at, index))
        for index, item in enumerate(items))
    names = [t.name for t in targets]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise SpecError(
            f"{targets_at}: duplicate target name(s) {duplicates}"
        )
    reference = "embedded-cpu"
    if "reference" in payload:
        reference = schema.as_str(payload["reference"],
                                  schema.child(path, "reference"))
    if reference not in names:
        raise SpecError(
            f"{schema.child(path, 'reference')}: {reference!r} is not"
            f" a target name; targets: {names}"
        )
    workloads = None
    if "workloads" in payload:
        at = schema.child(path, "workloads")
        rows = schema.as_sequence(payload["workloads"], at,
                                  min_items=1)
        workloads = tuple(
            decode_workload(item, schema.item(at, index))
            for index, item in enumerate(rows))
    return SuiteScenario(targets=targets, reference=reference,
                         workloads=workloads,
                         jobs=_positive_jobs(payload, path))


def _encode_mission(run: MissionScenario) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "config": to_spec(run.config),
        "tiers": [
            {"name": name, "platform": to_spec(platform),
             "mass_kg": mass_kg, "power_w": power_w}
            for name, platform, mass_kg, power_w in run.tiers
        ],
    }
    if run.seed is not None:
        payload["seed"] = run.seed
    return payload


def _decode_tier(item: Any, path: str) -> Tier:
    payload = schema.require_mapping(item, path)
    schema.check_keys(
        payload, ("name", "platform", "mass_kg", "power_w"), path)
    name = schema.as_str(schema.get_field(payload, "name", path),
                         schema.child(path, "name"))
    platform = decode_platform(
        schema.get_field(payload, "platform", path),
        schema.child(path, "platform"), allow_soc=False)
    mass_kg = schema.as_float(
        schema.get_field(payload, "mass_kg", path),
        schema.child(path, "mass_kg"))
    power_w = schema.as_float(
        schema.get_field(payload, "power_w", path),
        schema.child(path, "power_w"))
    return (name, platform, mass_kg, power_w)


def _decode_mission(payload: Mapping[str, Any],
                    path: str) -> MissionScenario:
    schema.check_keys(payload, ("config", "tiers", "seed"), path)
    return MissionScenario(
        config=_decode_mission_config(payload, path),
        tiers=_decode_tiers(payload, path),
        seed=schema.optional_int(payload, "seed", path, None))


_PERTURBATION_KEYS = ("battery_capacity", "payload_mass",
                      "sensor_rate", "workload_scale")


def _decode_tiers(payload: Mapping[str, Any], path: str
                  ) -> Tuple[Tier, ...]:
    """Tier rows, or a ``{"ref": ...}`` ladder from :data:`TIERS`
    (shared by the ``mission`` and ``fleet`` sections)."""
    tiers_at = schema.child(path, "tiers")
    tiers_spec = schema.get_field(payload, "tiers", path)
    if isinstance(tiers_spec, Mapping) and "ref" in tiers_spec:
        schema.check_keys(tiers_spec, ("ref",), tiers_at)
        ladder = schema.as_str(tiers_spec["ref"],
                               schema.child(tiers_at, "ref"))
        return tuple(TIERS.build(ladder, tiers_at))
    items = schema.as_sequence(tiers_spec, tiers_at, min_items=1)
    return tuple(_decode_tier(item, schema.item(tiers_at, index))
                 for index, item in enumerate(items))


def _decode_mission_config(payload: Mapping[str, Any],
                           path: str) -> MissionConfig:
    config = from_spec(schema.get_field(payload, "config", path),
                       schema.child(path, "config"))
    if not isinstance(config, MissionConfig):
        raise SpecError(
            f"{schema.child(path, 'config')}: expected a mission spec"
        )
    return config


def _encode_fleet(run: FleetScenario) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "config": to_spec(run.config),
        "tiers": [
            {"name": name, "platform": to_spec(platform),
             "mass_kg": mass_kg, "power_w": power_w}
            for name, platform, mass_kg, power_w in run.tiers
        ],
        "trials": run.trials,
        "seed": run.seed,
        "jobs": run.jobs,
        "perturbation": {
            key: getattr(run.perturbation, key)
            for key in _PERTURBATION_KEYS
        },
    }
    if run.chunk_size is not None:
        payload["chunk_size"] = run.chunk_size
    return payload


def _decode_perturbation(value: Any, path: str) -> FleetPerturbation:
    payload = schema.require_mapping(value, path)
    schema.check_keys(payload, _PERTURBATION_KEYS, path)
    kwargs = {}
    for key in _PERTURBATION_KEYS:
        if key in payload:
            kwargs[key] = schema.as_float(payload[key],
                                          schema.child(path, key))
    try:
        return FleetPerturbation(**kwargs)
    except ConfigurationError as error:
        raise SpecError(f"{path}: {error}") from error


def _decode_fleet(payload: Mapping[str, Any],
                  path: str) -> FleetScenario:
    schema.check_keys(
        payload,
        ("config", "tiers", "trials", "seed", "jobs", "chunk_size",
         "perturbation"),
        path)
    config = _decode_mission_config(payload, path)
    tiers = _decode_tiers(payload, path)
    trials = schema.optional_int(payload, "trials", path, 64)
    if trials < 1:
        raise SpecError(
            f"{schema.child(path, 'trials')}: must be >= 1,"
            f" got {trials}"
        )
    perturbation = FleetPerturbation()
    if "perturbation" in payload:
        perturbation = _decode_perturbation(
            payload["perturbation"], schema.child(path, "perturbation"))
    return FleetScenario(
        config=config, tiers=tiers, trials=trials,
        seed=schema.optional_int(payload, "seed", path, 0),
        jobs=_positive_jobs(payload, path),
        chunk_size=_optional_chunk_size(payload, path),
        perturbation=perturbation)


def _encode_gate(gate: PromotionGate) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    if gate.top_fraction is not None:
        payload["top_fraction"] = gate.top_fraction
    if gate.threshold is not None:
        payload["threshold"] = gate.threshold
    if gate.budget is not None:
        payload["budget"] = gate.budget
    return payload


def _decode_gate(item: Any, path: str) -> PromotionGate:
    payload = schema.require_mapping(item, path)
    schema.check_keys(
        payload, ("top_fraction", "threshold", "budget"), path)
    kwargs: Dict[str, Any] = {}
    if "top_fraction" in payload:
        kwargs["top_fraction"] = schema.as_float(
            payload["top_fraction"],
            schema.child(path, "top_fraction"))
    if "threshold" in payload:
        kwargs["threshold"] = schema.as_float(
            payload["threshold"], schema.child(path, "threshold"))
    budget = schema.optional_int(payload, "budget", path, None)
    if budget is not None:
        kwargs["budget"] = budget
    try:
        return PromotionGate(**kwargs)
    except SearchError as error:
        raise SpecError(f"{path}: {error}") from error


def _decode_funnel(value: Any, path: str) -> FunnelConfig:
    payload = schema.require_mapping(value, path)
    schema.check_keys(payload, ("inner", "gates"), path)
    inner = "random"
    if "inner" in payload:
        at = schema.child(path, "inner")
        inner = schema.as_str(payload["inner"], at)
        if inner not in INNER_STRATEGIES:
            raise SpecError(
                f"{at}: expected one of {sorted(INNER_STRATEGIES)},"
                f" got {inner!r}")
    gates = None
    if "gates" in payload:
        at = schema.child(path, "gates")
        items = schema.as_sequence(payload["gates"], at, min_items=1)
        gates = tuple(_decode_gate(item, schema.item(at, index))
                      for index, item in enumerate(items))
    try:
        return FunnelConfig(inner=inner, gates=gates)
    except SearchError as error:
        raise SpecError(f"{path}: {error}") from error


def _encode_dse(run: DseScenario) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "space": to_spec(run.space),
        "objective": {"ref": run.objective},
        "strategy": run.strategy,
        "budget": run.budget,
        "seed": run.seed,
        "jobs": run.jobs,
    }
    if run.chunk_size is not None:
        payload["chunk_size"] = run.chunk_size
    if run.funnel is not None:
        section: Dict[str, Any] = {"inner": run.funnel.inner}
        if run.funnel.gates is not None:
            section["gates"] = [_encode_gate(gate)
                                for gate in run.funnel.gates]
        payload["funnel"] = section
    return payload


def _decode_dse(payload: Mapping[str, Any], path: str) -> DseScenario:
    schema.check_keys(
        payload,
        ("space", "objective", "strategy", "budget", "seed", "jobs",
         "chunk_size", "funnel"),
        path)
    space = decode_design_space(
        schema.get_field(payload, "space", path),
        schema.child(path, "space"))
    objective = "suite_objective"
    if "objective" in payload:
        at = schema.child(path, "objective")
        value = payload["objective"]
        if isinstance(value, str):
            objective = value
        else:
            mapping = schema.require_mapping(value, at)
            schema.check_keys(mapping, ("ref",), at)
            objective = schema.as_str(
                schema.get_field(mapping, "ref", at),
                schema.child(at, "ref"))
        OBJECTIVES.entry(objective, at)  # must resolve
    strategy = "surrogate"
    if "strategy" in payload:
        at = schema.child(path, "strategy")
        strategy = schema.as_str(payload["strategy"], at)
        if strategy not in DSE_STRATEGIES:
            raise SpecError(
                f"{at}: expected one of {list(DSE_STRATEGIES)},"
                f" got {strategy!r}"
            )
    budget = schema.optional_int(payload, "budget", path, 24)
    if budget < 1:
        raise SpecError(
            f"{schema.child(path, 'budget')}: must be >= 1,"
            f" got {budget}"
        )
    funnel = None
    if "funnel" in payload:
        at = schema.child(path, "funnel")
        if strategy != "funnel":
            raise SpecError(
                f"{at}: only valid with strategy 'funnel'"
                f" (got strategy {strategy!r})"
            )
        funnel = _decode_funnel(payload["funnel"], at)
    return DseScenario(
        space=space, objective=objective, strategy=strategy,
        budget=budget,
        seed=schema.optional_int(payload, "seed", path, 0),
        jobs=_positive_jobs(payload, path),
        chunk_size=_optional_chunk_size(payload, path),
        funnel=funnel)


_SECTIONS = {
    "suite": (SuiteScenario, _encode_suite, _decode_suite),
    "mission": (MissionScenario, _encode_mission, _decode_mission),
    "fleet": (FleetScenario, _encode_fleet, _decode_fleet),
    "dse": (DseScenario, _encode_dse, _decode_dse),
}


def _encode_scenario(scenario: Scenario) -> Dict[str, Any]:
    for section, (cls, encode, _) in _SECTIONS.items():
        if isinstance(scenario.run, cls):
            return {"name": scenario.name,
                    section: encode(scenario.run)}
    raise SpecError(
        f"scenario {scenario.name!r} has an unsupported run type"
        f" {type(scenario.run).__name__}"
    )


def _decode_scenario(payload: Mapping[str, Any],
                     path: str) -> Scenario:
    schema.check_keys(payload, ("name",) + tuple(_SECTIONS), path)
    name = schema.as_str(schema.get_field(payload, "name", path),
                         schema.child(path, "name"))
    section = schema.require_one_of(payload, _SECTIONS, path)
    at = schema.child(path, section)
    _, _, decode = _SECTIONS[section]
    run = decode(schema.require_mapping(payload[section], at), at)
    return Scenario(name=name, run=run)


register_codec(Codec("scenario", Scenario, _encode_scenario,
                     _decode_scenario))
