"""repro: an end-to-end co-design framework for autonomous-system accelerators.

This package is a runnable realization of the methodology called for in the
DAC 2024 invited paper *"The Magnificent Seven Challenges and Opportunities in
Domain-Specific Accelerator Design for Autonomous Systems"* (Neuman, Plancher,
Janapa Reddi).  The paper is a position paper: it ships no system of its own,
but it prescribes one — end-to-end modeling and simulation, ML-driven design
space exploration, holistic metrics, standardized benchmarks, and lifecycle
analysis.  Those prescriptions are implemented here as importable subpackages:

- :mod:`repro.core`            -- workload IR, characterization, the Seven
                                  Challenges design advisor
- :mod:`repro.kernels`         -- autonomy workloads implemented from scratch
                                  (SLAM, planning, dynamics, vision/VIO,
                                  control, ML) with operation-level
                                  instrumentation
- :mod:`repro.hw`              -- analytical platform models (CPU, GPU, FPGA,
                                  ASIC, roofline, systolic arrays, memory)
- :mod:`repro.system`          -- discrete-event full-system simulation
                                  (sensors, pipelines, schedulers, vehicles,
                                  closed-loop missions)
- :mod:`repro.dse`             -- design-space exploration, including
                                  ML-surrogate-guided search
- :mod:`repro.metrics`         -- holistic metrics (time-to-accuracy,
                                  mission-level, composite)
- :mod:`repro.sustainability`  -- embodied/operational carbon and LCA
- :mod:`repro.benchmarksuite`  -- MLPerf-style benchmark registry and runner
- :mod:`repro.biblio`          -- publication-trend analysis (paper Fig. 1)

Quickstart::

    from repro.core import WorkloadProfile
    from repro.hw import CpuModel, CpuConfig

    profile = WorkloadProfile(name="gemm", flops=2e9, bytes_read=12e6,
                              bytes_written=4e6, parallel_fraction=0.99)
    cpu = CpuModel(CpuConfig(name="embedded-cpu"))
    estimate = cpu.estimate(profile)
    print(estimate.latency_s, estimate.energy_j)
"""

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["CostEstimate", "ReproError", "WorkloadProfile", "__version__"]
