"""Gaussian-process regression: the ML surrogate for guided DSE.

A standard zero-mean GP with an RBF kernel and observation noise,
implemented directly on numpy (Cholesky factorization from
:mod:`repro.kernels.linalg` conventions).  Small design spaces keep the
O(n^3) fit cheap; that is the regime accelerator DSE lives in, where each
*oracle call* (a full-system simulation) dwarfs the surrogate math — the
precise asymmetry that makes ML-guided search pay off (§3.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SearchError


class GaussianProcess:
    """GP regression with an RBF kernel.

    Args:
        length_scale: Kernel length scale in (encoded) feature space.
        signal_variance: Kernel amplitude.
        noise_variance: Observation noise added to the diagonal.
    """

    def __init__(self, length_scale: float = 0.5,
                 signal_variance: float = 1.0,
                 noise_variance: float = 1e-4):
        if length_scale <= 0 or signal_variance <= 0 \
                or noise_variance < 0:
            raise SearchError(
                "length_scale, signal_variance > 0 and"
                " noise_variance >= 0 required"
            )
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_scale = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        return self.signal_variance * np.exp(
            -0.5 * sq / self.length_scale ** 2
        )

    @property
    def is_fit(self) -> bool:
        return self._alpha is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit to ``(n, d)`` inputs and ``(n,)`` targets.

        Targets are standardized internally so kernel hyperparameters
        stay scale-free.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise SearchError(
                f"{x.shape[0]} inputs but {y.shape[0]} targets"
            )
        if x.shape[0] < 1:
            raise SearchError("need >= 1 training point")
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        standardized = (y - self._y_mean) / self._y_scale

        k = self._kernel(x, x)
        k[np.diag_indices_from(k)] += max(self.noise_variance, 1e-10)
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, standardized)
        )
        self._x = x
        return self

    def predict(self, x: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``(m, d)`` inputs."""
        if not self.is_fit:
            raise SearchError("predict() before fit()")
        assert self._x is not None and self._chol is not None
        x = np.atleast_2d(np.asarray(x, dtype=float))
        k_star = self._kernel(x, self._x)
        mean = k_star @ self._alpha * self._y_scale + self._y_mean
        v = np.linalg.solve(self._chol, k_star.T)
        var = self.signal_variance - (v * v).sum(axis=0)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_scale
        return mean, std


def expected_improvement(mean: np.ndarray, std: np.ndarray,
                         best: float, xi: float = 0.01) -> np.ndarray:
    """EI acquisition for minimization (closed form, no scipy).

    ``EI = (best - mu - xi) Phi(z) + sigma phi(z)`` with
    ``z = (best - mu - xi) / sigma``.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = best - mean - xi
    z = improvement / std
    phi = np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)
    # Standard normal CDF via erf-free approximation (Abramowitz-Stegun
    # 7.1.26 on |z|, reflected), accurate to ~1.5e-7.
    t = 1.0 / (1.0 + 0.3275911 * np.abs(z))
    poly = t * (0.254829592 + t * (-0.284496736 + t * (
        1.421413741 + t * (-1.453152027 + t * 1.061405429))))
    erf_abs = 1.0 - poly * np.exp(-z * z)
    cdf = 0.5 * (1.0 + np.sign(z) * erf_abs)
    ei = improvement * cdf + std * phi
    return np.maximum(ei, 0.0)
