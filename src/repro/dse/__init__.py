"""Design-space exploration, including ML-surrogate-guided search.

§3.1's "Machine Learning for System Design": given a parameterized design
space and an expensive oracle (here, the closed-loop mission simulator or
a benchmark-suite run), find good designs with few oracle calls.

- :mod:`~repro.dse.space`        — discrete parameter spaces;
- :mod:`~repro.dse.search`       — grid and random baselines, the shared
  ask/tell machinery (:class:`~repro.dse.search.ConfigStrategy`), and the
  public :func:`~repro.dse.search.record` history funnel;
- :mod:`~repro.dse.evolutionary` — a genetic algorithm;
- :mod:`~repro.dse.surrogate`    — Gaussian-process regression (RBF);
- :mod:`~repro.dse.bayesian`     — surrogate-guided (expected-
  improvement) optimization, the paper's headline DSE method;
- :mod:`~repro.dse.pareto`       — Pareto fronts and hypervolume;
- :mod:`~repro.dse.constraints`  — feasibility and penalty handling;
- :mod:`~repro.dse.objectives`   — picklable benchmark-suite co-design
  objectives for the CLI and process-pool evaluation.

Every strategy speaks the ask/tell protocol of :mod:`repro.engine`, so
caching (:class:`~repro.engine.cache.ResultCache`) and parallel
evaluation (``jobs=N``) apply uniformly; the classic entry points
(:func:`grid_search`, ``EvolutionarySearch.run`` …) are thin wrappers.
"""

from repro.dse.bayesian import SurrogateSearch, SurrogateStrategy
from repro.dse.constraints import Constraint, ConstraintSet
from repro.dse.evolutionary import EvolutionarySearch, EvolutionaryStrategy
from repro.dse.funnel import (
    FunnelConfig,
    FunnelStrategy,
    PromotionGate,
    default_gates,
    funnel_search,
)
from repro.dse.multiobjective import (
    FrontPoint,
    MultiObjectiveResult,
    VectorObjective,
    multi_objective_search,
)
from repro.dse.objectives import (
    SuiteObjective,
    build_platform,
    codesign_space,
    codesign_space_xl,
    encode_codesign,
    suite_energy,
    suite_latency,
    suite_objective,
)
from repro.dse.pareto import hypervolume_2d, pareto_front
from repro.dse.search import (
    ConfigStrategy,
    GridStrategy,
    RandomStrategy,
    SearchResult,
    grid_search,
    random_search,
    record,
)
from repro.dse.space import DesignSpace, Parameter
from repro.dse.surrogate import GaussianProcess

__all__ = [
    "ConfigStrategy",
    "Constraint",
    "ConstraintSet",
    "DesignSpace",
    "EvolutionarySearch",
    "EvolutionaryStrategy",
    "FrontPoint",
    "FunnelConfig",
    "FunnelStrategy",
    "GaussianProcess",
    "GridStrategy",
    "MultiObjectiveResult",
    "Parameter",
    "PromotionGate",
    "RandomStrategy",
    "SearchResult",
    "SuiteObjective",
    "SurrogateSearch",
    "SurrogateStrategy",
    "VectorObjective",
    "build_platform",
    "codesign_space",
    "codesign_space_xl",
    "default_gates",
    "encode_codesign",
    "funnel_search",
    "grid_search",
    "hypervolume_2d",
    "multi_objective_search",
    "pareto_front",
    "random_search",
    "record",
    "suite_energy",
    "suite_latency",
    "suite_objective",
]
