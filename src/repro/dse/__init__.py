"""Design-space exploration, including ML-surrogate-guided search.

§3.1's "Machine Learning for System Design": given a parameterized design
space and an expensive oracle (here, the closed-loop mission simulator or
a benchmark-suite run), find good designs with few oracle calls.

- :mod:`~repro.dse.space`        — discrete parameter spaces;
- :mod:`~repro.dse.search`       — grid and random baselines;
- :mod:`~repro.dse.evolutionary` — a genetic algorithm;
- :mod:`~repro.dse.surrogate`    — Gaussian-process regression (RBF);
- :mod:`~repro.dse.bayesian`     — surrogate-guided (expected-
  improvement) optimization, the paper's headline DSE method;
- :mod:`~repro.dse.pareto`       — Pareto fronts and hypervolume;
- :mod:`~repro.dse.constraints`  — feasibility and penalty handling.
"""

from repro.dse.bayesian import SurrogateSearch
from repro.dse.constraints import Constraint, ConstraintSet
from repro.dse.evolutionary import EvolutionarySearch
from repro.dse.multiobjective import (
    FrontPoint,
    MultiObjectiveResult,
    multi_objective_search,
)
from repro.dse.pareto import hypervolume_2d, pareto_front
from repro.dse.search import SearchResult, grid_search, random_search
from repro.dse.space import DesignSpace, Parameter
from repro.dse.surrogate import GaussianProcess

__all__ = [
    "Constraint",
    "ConstraintSet",
    "DesignSpace",
    "EvolutionarySearch",
    "FrontPoint",
    "GaussianProcess",
    "MultiObjectiveResult",
    "Parameter",
    "multi_objective_search",
    "SearchResult",
    "SurrogateSearch",
    "grid_search",
    "hypervolume_2d",
    "pareto_front",
    "random_search",
]
