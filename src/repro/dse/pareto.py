"""Pareto-front utilities for multi-objective design evaluation.

All objectives are *minimized* by convention; negate quantities you want
maximized before calling in.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import SearchError


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (<= everywhere, < somewhere)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise SearchError(f"objective shapes differ: {a.shape}, {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    O(n^2) pairwise filtering — fine for DSE result sets.
    """
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise SearchError(f"points must be 2-D, got shape {array.shape}")
    n = array.shape[0]
    keep: List[int] = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i != j and dominates(array[j], array[i]):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep


def hypervolume_2d(points: Sequence[Sequence[float]],
                   reference: Sequence[float]) -> float:
    """Dominated hypervolume for two minimized objectives.

    Args:
        points: Objective vectors (2-D).
        reference: Reference (worst) point; points beyond it contribute 0.

    Returns:
        The area dominated between the front and the reference point —
        the standard scalar progress metric for multi-objective DSE.
    """
    array = np.asarray(points, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if array.ndim != 2 or array.shape[1] != 2 or ref.shape != (2,):
        raise SearchError("hypervolume_2d needs (n, 2) points and a"
                          " 2-vector reference")
    front = array[pareto_front(array)]
    front = front[np.all(front < ref, axis=1)]
    if front.shape[0] == 0:
        return 0.0
    order = np.argsort(front[:, 0])
    front = front[order]
    volume = 0.0
    previous_y = ref[1]
    for x, y in front:
        if y < previous_y:
            volume += (ref[0] - x) * (previous_y - y)
            previous_y = y
    return float(volume)


def normalized_regret(best_found: float, optimum: float,
                      worst: float) -> float:
    """Where a search result landed between optimum (0) and worst (1)."""
    if worst == optimum:
        return 0.0
    return (best_found - optimum) / (worst - optimum)
