"""Discrete design spaces: named parameters and their Cartesian product."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SearchError

Config = Dict[str, Any]


@dataclass(frozen=True)
class Parameter:
    """One design knob with a finite set of values.

    Attributes:
        name: Parameter name (e.g. ``"compute_tier"``, ``"battery_wh"``).
        values: Candidate values, in a meaningful order when numeric.
    """

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SearchError(f"parameter {self.name!r} has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise SearchError(
                f"parameter {self.name!r} has duplicate values"
            )

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def is_numeric(self) -> bool:
        return all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in self.values)


class DesignSpace:
    """The Cartesian product of a list of parameters.

    Provides index <-> configuration mapping, uniform sampling, full
    enumeration, and a numeric encoding for surrogate models (numeric
    parameters are min-max scaled; categorical ones are one-hot).
    """

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise SearchError("design space needs >= 1 parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise SearchError(f"duplicate parameter names: {names}")
        self.parameters = list(parameters)

    @property
    def size(self) -> int:
        size = 1
        for p in self.parameters:
            size *= p.cardinality
        return size

    def fingerprint_spec(self) -> Dict[str, Any]:
        """Identity for :func:`repro.engine.fingerprint.fingerprint`:
        the ordered parameter list is the whole space."""
        return {"kind": type(self).__name__,
                "parameters": self.parameters}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DesignSpace):
            return NotImplemented
        return self.parameters == other.parameters

    def __hash__(self) -> int:
        return hash(tuple(self.parameters))

    def config_at(self, index: int) -> Config:
        """The configuration at a flat index (mixed-radix decoding)."""
        if not 0 <= index < self.size:
            raise SearchError(
                f"index {index} out of range for space of size {self.size}"
            )
        config: Config = {}
        for p in reversed(self.parameters):
            index, digit = divmod(index, p.cardinality)
            config[p.name] = p.values[digit]
        return config

    def index_of(self, config: Config) -> int:
        """Flat index of a configuration (inverse of :meth:`config_at`)."""
        index = 0
        for p in self.parameters:
            try:
                digit = p.values.index(config[p.name])
            except (KeyError, ValueError):
                raise SearchError(
                    f"config {config!r} invalid at parameter {p.name!r}"
                ) from None
            index = index * p.cardinality + digit
        return index

    def __iter__(self) -> Iterator[Config]:
        for index in range(self.size):
            yield self.config_at(index)

    def sample(self, rng: np.random.Generator, n: int = 1,
               replace: bool = True) -> List[Config]:
        """Uniformly sample ``n`` configurations."""
        if not replace and n > self.size:
            raise SearchError(
                f"cannot sample {n} unique configs from a space of"
                f" {self.size}"
            )
        indices = rng.choice(self.size, size=n, replace=replace)
        return [self.config_at(int(i)) for i in indices]

    def encode(self, config: Config) -> np.ndarray:
        """Numeric feature vector for surrogate models."""
        features: List[float] = []
        for p in self.parameters:
            value = config[p.name]
            if p.is_numeric():
                lo = float(min(p.values))
                hi = float(max(p.values))
                span = hi - lo if hi > lo else 1.0
                features.append((float(value) - lo) / span)
            else:
                for candidate in p.values:
                    features.append(1.0 if candidate == value else 0.0)
        return np.array(features)

    @property
    def encoded_dim(self) -> int:
        return sum(1 if p.is_numeric() else p.cardinality
                   for p in self.parameters)

    def neighbors(self, config: Config) -> List[Config]:
        """All configs differing in exactly one parameter (for local
        search and GA mutation)."""
        result: List[Config] = []
        for p in self.parameters:
            for value in p.values:
                if value != config[p.name]:
                    alt = dict(config)
                    alt[p.name] = value
                    result.append(alt)
        return result
