"""Ready-made, picklable DSE objectives over the benchmark suite.

The CLI's ``repro dse`` verb (and the engine benchmarks) need a
self-contained co-design problem: a discrete space of platform knobs
and an oracle that prices a candidate platform against the standard
autonomy suite.  Everything here is defined at module level so that
:class:`~repro.engine.evaluator.Evaluator` can ship the objective to a
process pool (closures and lambdas cannot cross the pickle boundary).

The knobs mirror the §2.4 sizing question — how much compute, how much
on-chip memory, how much off-chip bandwidth, at what standing power —
and the oracle scores real-time slack and energy across the whole
suite, so single-kernel widgets cannot win (§2.3).

The objectives are **batch-capable** (:class:`SuiteObjective` exposes
``evaluate_batch``): an Evaluator prices an entire ask() population in
one structure-of-arrays roofline pass (:mod:`repro.hw.batch`) instead
of candidate-by-candidate Python, with values bit-identical to the
scalar ``__call__`` path.  :func:`encode_codesign` is the
``DesignSpace``-population → :class:`~repro.hw.batch.PlatformSoA`
encoder that makes this possible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.workload import Workload
from repro.dse.space import Config, DesignSpace, Parameter
from repro.engine.arena import BatchArena
from repro.engine.protocol import FidelityTier
from repro.errors import SearchError
from repro.hw.batch import PlatformSoA, ProfileSoA, batch_estimate
from repro.hw.platform import AnalyticalPlatform, PlatformConfig
from repro.spec.registry import OBJECTIVES, SPACES

_SUITE: "List[Workload] | None" = None

#: Per-process scratch arena shared by the batch objectives: every
#: ``evaluate_batch`` call (every chunk of a chunked evaluation, every
#: DSE generation) reuses the same buffers, so steady-state pricing
#: allocates nothing on the hot path.  Results are bit-identical to the
#: allocating path — the arena only changes where outputs live.
_ARENA: "BatchArena | None" = None


def _arena() -> BatchArena:
    global _ARENA
    if _ARENA is None:
        _ARENA = BatchArena()
    return _ARENA


def _suite() -> List[Workload]:
    """The standard suite, built once per process (pool workers
    included)."""
    global _SUITE
    if _SUITE is None:
        from repro.benchmarksuite.workloads import standard_suite
        _SUITE = standard_suite()
    return _SUITE


#: Per-workload batch-pricing structure: (workload, stage names in
#: topological order, column slice into the suite-wide ProfileSoA).
_SuitePlan = List[Tuple[Workload, Tuple[str, ...], slice]]
_BATCH_SUITE: "Tuple[ProfileSoA, _SuitePlan] | None" = None


def _batch_suite() -> Tuple[ProfileSoA, _SuitePlan]:
    """The whole suite's stage profiles as one SoA block, plus the
    per-workload plan to slice it back apart (built once per
    process)."""
    global _BATCH_SUITE
    if _BATCH_SUITE is None:
        profiles = []
        plan: _SuitePlan = []
        for workload in _suite():
            stages = workload.graph.stages
            start = len(profiles)
            profiles.extend(stage.profile for stage in stages)
            plan.append((workload,
                         tuple(stage.name for stage in stages),
                         slice(start, len(profiles))))
        _BATCH_SUITE = (ProfileSoA.from_profiles(profiles), plan)
    return _BATCH_SUITE


@SPACES.register("codesign")
def codesign_space() -> DesignSpace:
    """The demo co-design space: 4 platform knobs, 256 designs."""
    return DesignSpace([
        Parameter("peak_gflops", (50.0, 200.0, 800.0, 3200.0)),
        Parameter("onchip_kb", (128.0, 512.0, 2048.0, 8192.0)),
        Parameter("offchip_gbs", (10.0, 25.0, 60.0, 150.0)),
        Parameter("static_power_w", (1.0, 3.0, 8.0, 20.0)),
    ])


def _geometric_knob(lo: float, hi: float, points: int
                    ) -> Tuple[float, ...]:
    """A geometric grid of ``points`` values from ``lo`` to ``hi``,
    rounded for stable platform names."""
    ratio = (hi / lo) ** (1.0 / (points - 1))
    return tuple(round(lo * ratio ** i, 3) for i in range(points))


@SPACES.register("codesign_xl")
def codesign_space_xl() -> DesignSpace:
    """The million-point co-design space: the same four knobs as
    ``codesign``, refined to geometric grids spanning the same ranges
    (64 x 32 x 32 x 16 = 1,048,576 designs) — the scale the
    multi-fidelity funnel exists for."""
    return DesignSpace([
        Parameter("peak_gflops", _geometric_knob(50.0, 3200.0, 64)),
        Parameter("onchip_kb", _geometric_knob(128.0, 8192.0, 32)),
        Parameter("offchip_gbs", _geometric_knob(10.0, 150.0, 32)),
        Parameter("static_power_w", _geometric_knob(1.0, 20.0, 16)),
    ])


#: Shared by :func:`build_platform` and :func:`encode_codesign`, so
#: scalar and SoA lowerings cannot disagree about platform names.
_CODESIGN_NAME = ("codesign-{peak_gflops:g}g-{onchip_kb:g}kb"
                  "-{offchip_gbs:g}gbs-{static_power_w:g}w")


def build_platform(config: Config) -> AnalyticalPlatform:
    """Lower a co-design point to a roofline platform.

    The name encodes the knob values, so two platforms built from the
    same config fingerprint identically across processes.
    """
    return AnalyticalPlatform(PlatformConfig(
        name=_CODESIGN_NAME.format(**config),
        peak_flops=config["peak_gflops"] * 1e9,
        scalar_flops=2e9,
        onchip_bytes=config["onchip_kb"] * 1024.0,
        onchip_bw=10.0 * config["offchip_gbs"] * 1e9,
        offchip_bw=config["offchip_gbs"] * 1e9,
        static_power_w=config["static_power_w"],
        device_class="asic",
    ))


def encode_codesign(configs: Sequence[Config]) -> PlatformSoA:
    """SoA-encode a co-design population: the :func:`build_platform`
    lowering, transposed into columns for :func:`batch_estimate`.

    Columns are built directly from the knob arrays with the same
    elementwise arithmetic as ``build_platform`` (IEEE-identical per
    element), so the encode is bit-equal to transposing per-candidate
    platforms while skipping the per-candidate object construction
    that used to dominate screening cost.  The non-knob columns come
    from one template platform, which also runs the scalar lowering's
    validation once; ``tests/dse/test_batch_objectives.py`` pins
    equality against the object-by-object reference encode.
    """
    configs = list(configs)
    if not configs:
        return PlatformSoA.from_configs([])
    template = build_platform(configs[0]).config
    n = len(configs)
    peak_gflops = np.array([c["peak_gflops"] for c in configs])
    onchip_kb = np.array([c["onchip_kb"] for c in configs])
    offchip_gbs = np.array([c["offchip_gbs"] for c in configs])
    peak_flops = peak_gflops * 1e9
    return PlatformSoA(
        names=tuple(_CODESIGN_NAME.format(**c) for c in configs),
        scalar_flops=np.full(n, template.scalar_flops),
        peak_flops=peak_flops,
        # peak_int_ops is left defaulted, so int throughput resolves
        # to peak_flops — knob-dependent, not a template constant.
        int_throughput=peak_gflops * 1e9,
        onchip_bytes=onchip_kb * 1024.0,
        onchip_bw=(10.0 * offchip_gbs) * 1e9,
        offchip_bw=offchip_gbs * 1e9,
        launch_overhead_s=np.full(n, template.launch_overhead_s),
        energy_per_flop=np.full(n, template.energy_per_flop),
        int_energy=np.full(n, template.int_energy),
        energy_per_byte_onchip=np.full(
            n, template.energy_per_byte_onchip),
        energy_per_byte_offchip=np.full(
            n, template.energy_per_byte_offchip),
        static_power_w=np.array(
            [c["static_power_w"] for c in configs]),
        area_mm2=np.full(n, template.area_mm2),
        lockstep=np.full(n, template.lockstep, dtype=bool),
    )


def _price(config: Config) -> Dict[str, float]:
    """Suite-wide latency-slack and energy totals for one design."""
    platform = build_platform(config)
    slack = 0.0
    energy = 0.0
    for workload in _suite():
        stages = workload.graph.stages
        estimates = {s.name: platform.estimate(s.profile)
                     for s in stages}
        latency, _ = workload.graph.critical_path(
            {name: est.latency_s for name, est in estimates.items()})
        slack += latency / workload.deadline_s()
        energy += sum(est.energy_j for est in estimates.values())
    return {"slack": slack, "energy_j": energy}


class SuiteObjective:
    """A suite-priced co-design objective with a vectorized batch path.

    Instances are plain callables (``config -> float``, so every
    existing entry point keeps working and process pools can pickle
    them) that additionally implement the
    :class:`~repro.engine.protocol.BatchObjective` protocol:
    ``evaluate_batch(configs)`` SoA-encodes the whole population
    (:func:`encode_codesign`), prices every (candidate, suite-stage)
    pair in one fused roofline pass, and reduces per workload with the
    same accumulation order as the scalar path — so batch values are
    bit-identical to calling the objective per candidate.

    Args:
        kind: ``"slack"`` (suite latency/deadline total), ``"energy"``
            (suite energy total), or ``"objective"`` (the combined
            co-design score).
    """

    KINDS = ("slack", "energy", "objective")

    def __init__(self, kind: str):
        if kind not in self.KINDS:
            raise SearchError(
                f"unknown suite objective kind {kind!r};"
                f" expected one of {self.KINDS}")
        self.kind = kind

    def __repr__(self) -> str:
        return f"SuiteObjective({self.kind!r})"

    def __reduce__(self):
        # Pickle by reference, like a module-level function would: pool
        # workers (and registry round-trips) resolve to this module's
        # singleton for the kind rather than rebuilding state.
        return (_suite_objective_singleton, (self.kind,))

    # -- scalar path --------------------------------------------------

    def __call__(self, config: Config) -> float:
        if self.kind == "slack":
            return _price(config)["slack"]
        if self.kind == "energy":
            return _price(config)["energy_j"]
        platform = build_platform(config)
        total = 0.0
        for workload in _suite():
            stages = workload.graph.stages
            estimates = {s.name: platform.estimate(s.profile)
                         for s in stages}
            latency, _ = workload.graph.critical_path(
                {name: est.latency_s
                 for name, est in estimates.items()})
            energy = sum(est.energy_j for est in estimates.values())
            deadline = workload.deadline_s()
            total += latency / deadline + energy / (10.0 * deadline)
        return total

    # -- vectorized batch path ----------------------------------------

    def evaluate_batch(self, configs: Sequence[Config]) -> List[float]:
        """Price a whole population in one SoA roofline pass.

        Reduction discipline for bit-identity with the scalar path:
        per-workload stage energies are accumulated column-by-column in
        topological order (numpy's pairwise ``sum`` would round
        differently), and workload totals accumulate in suite order —
        exactly the scalar loops, elementwise over the candidate axis.
        """
        configs = list(configs)
        if not configs:
            return []
        soa = encode_codesign(configs)
        profiles, plan = _batch_suite()
        cost = batch_estimate(soa, profiles, arena=_arena())
        totals = np.zeros(len(configs))
        for workload, stage_names, columns in plan:
            block_latency = cost.latency_s[:, columns]
            block_energy = cost.energy_j[:, columns]
            latency = workload.graph.critical_path_batch(
                {name: block_latency[:, j]
                 for j, name in enumerate(stage_names)})
            energy = np.zeros(len(configs))
            for j in range(len(stage_names)):
                energy = energy + block_energy[:, j]
            deadline = workload.deadline_s()
            if self.kind == "slack":
                totals = totals + latency / deadline
            elif self.kind == "energy":
                totals = totals + energy
            else:
                totals = totals + (latency / deadline
                                   + energy / (10.0 * deadline))
        return [float(value) for value in totals]

    # -- fidelity ladder ----------------------------------------------

    def roofline_screen_batch(self, configs: Sequence[Config]
                              ) -> List[float]:
        """Tier-0 screen: the same roofline pricing, with the
        per-workload critical-path DP replaced by a serial-chain sum.

        Summing stage latencies upper-bounds (and strongly rank-
        correlates with) the DAG critical path at a fraction of the
        cost — the per-workload graph reductions and dict plumbing
        vanish, leaving one fused SoA pass plus a fixed column loop.
        Elementwise over candidates, fixed accumulation order: chunk-
        invariant and bit-stable, like every batch path here, but its
        *values* deliberately differ from full fidelity — it is a
        screen, not a vectorization.
        """
        configs = list(configs)
        if not configs:
            return []
        soa = encode_codesign(configs)
        profiles, plan = _batch_suite()
        cost = batch_estimate(soa, profiles, arena=_arena())
        totals = np.zeros(len(configs))
        for workload, stage_names, columns in plan:
            deadline = workload.deadline_s()
            for j in range(columns.start, columns.stop):
                if self.kind == "slack":
                    totals = totals + cost.latency_s[:, j] / deadline
                elif self.kind == "energy":
                    totals = totals + cost.energy_j[:, j]
                else:
                    totals = totals + (
                        cost.latency_s[:, j] / deadline
                        + cost.energy_j[:, j] / (10.0 * deadline))
        return [float(value) for value in totals]

    def roofline_screen(self, config: Config) -> float:
        """Scalar tier-0 screen (a batch of one, so the scalar and
        batch screens agree bit-for-bit)."""
        return self.roofline_screen_batch([config])[0]

    def fidelity_tiers(self) -> Tuple[FidelityTier, ...]:
        """Two rungs: the roofline-only screen, then the full suite
        objective (the top tier *is* ``self`` — the tier-equivalence
        contract of :class:`~repro.engine.protocol.TieredObjective`).
        """
        return (
            FidelityTier(name="roofline",
                         evaluate=self.roofline_screen,
                         evaluate_batch=self.roofline_screen_batch,
                         cost_hint=1.0),
            FidelityTier(name="suite",
                         evaluate=self,
                         evaluate_batch=self.evaluate_batch,
                         cost_hint=2.0),
        )


def _suite_objective_singleton(kind: str) -> "SuiteObjective":
    """Pickle hook for :class:`SuiteObjective` (see ``__reduce__``)."""
    return _SINGLETONS[kind]


# --------------------------------------------------------------------------
# Mission-in-the-loop objective (§2.4: score the *mission*, not the chip).
# --------------------------------------------------------------------------

#: Lazily-built mission setting shared by every candidate: the config,
#: its planned course, and an :func:`repro.system.fleet.ensure_course`
#: cache pre-seeded with that course (one per process, pool workers
#: included).
_MISSION = None


def mission_setting(*, extent: float = 60.0, n_obstacles: int = 24,
                    laps: int = 2, time_step_s: float = 0.05,
                    seed: int = 5):
    """Build a patrol scenario for :class:`MissionObjective`.

    Returns the ``(config, course, cache)`` triple a parametric
    :class:`MissionObjective` flies: the mission config, its planned
    course, and an :func:`repro.system.fleet.ensure_course` cache
    pre-seeded with that course (planning happens here, exactly once).

    The defaults reproduce the shared scenario of the module-level
    :data:`mission_objective`.  Heavier settings — a larger world, more
    laps, a finer integration step — raise the cost of one full-DES
    evaluation without touching the tier-0 pricing proxy (which is
    closed-form and timestep-free), widening the fidelity gap the
    screening funnel exploits; the ``funnel_dse`` benchmark and the S7
    experiment sweep exactly that axis.
    """
    from repro.kernels.planning.occupancy import CircleWorld
    from repro.system.fleet import course_key
    from repro.system.mission import MissionConfig, plan_course

    world = CircleWorld.random(
        dim=2, n_obstacles=n_obstacles, extent=extent,
        radius_range=(1.0, 2.5), seed=seed, keep_corners_free=3.0)
    config = MissionConfig(
        world=world,
        start=np.array([1.0, 1.0]),
        goal=np.array([extent - 2.0, extent - 2.0]),
        laps=laps,
        time_step_s=time_step_s,
    )
    course = plan_course(config)
    cache = {course_key(config): (world, course)}
    return config, course, cache


def _mission_setting():
    """The fixed closed-loop scenario shared-mission candidates fly.

    A compact patrol world (60 m, two laps) keeps a single scalar
    evaluation cheap enough for search budgets while still exercising
    the latency-speed-battery couplings; the course is planned exactly
    once per process.
    """
    global _MISSION
    if _MISSION is None:
        _MISSION = mission_setting()
    return _MISSION


def codesign_payload(config: Config) -> Tuple[float, float]:
    """The physical module a co-design point implies, as
    ``(mass_kg, power_w)``.

    Compute does not fly for free: mass scales with the die/board/
    cooling that peak throughput requires, and flight power adds a
    dynamic term on top of the standing power knob.  The slopes land
    the 4-knob space across the same ~0.1-0.7 kg / ~5-70 W span as the
    catalog's embedded tiers.
    """
    mass_kg = 0.05 + 2.0e-4 * config["peak_gflops"]
    power_w = config["static_power_w"] + 0.015 * config["peak_gflops"]
    return mass_kg, power_w


def _mission_score(result, budget_j: float) -> float:
    """Lower-is-better mission score from one :class:`MissionResult`.

    Failures are disqualifying (a flat +10 dominates every feasible
    score); feasible designs trade mission time (normalized by the
    design's own endurance) against battery draw (normalized by the
    usable budget) — both dimensionless, both in (0, 1] for sane
    designs, exactly the §2.4 "enough compute but not more" shape.
    """
    penalty = 0.0 if result.success else 10.0
    return (penalty + result.mission_time_s / result.endurance_s
            + result.energy_j / budget_j)


class MissionObjective:
    """Closed-loop mission objective with a vectorized batch path.

    The scalar path lowers a candidate to a platform + payload
    (:func:`build_platform`, :func:`codesign_payload`) and flies the
    shared scenario through
    :func:`~repro.system.mission.run_mission`; ``evaluate_batch``
    flies the whole population through
    :func:`~repro.system.fleet.run_fleet` instead.  The fleet engine's
    results are exactly equal to the scalar simulator's, and the score
    is a per-result Python reduction of those fields, so batch values
    are bit-identical to calling the objective per candidate — the
    same contract :class:`SuiteObjective` keeps.

    Args:
        setting: A ``(config, course, cache)`` triple from
            :func:`mission_setting`, giving this instance its own
            scenario.  ``None`` (the default, and the module-level
            :data:`mission_objective` singleton) flies the shared
            scenario.  Only the default instance pickles to the
            singleton; parametric instances use standard pickling, so
            keep them out of process pools whose workers rebuild
            objectives by name.
    """

    def __init__(self, setting=None):
        self._setting_override = setting
        self._frame_soa_cache = None

    def __repr__(self) -> str:
        if self._setting_override is None:
            return "MissionObjective()"
        mission = self._setting_override[0]
        return (f"MissionObjective(extent={float(mission.world.upper[0])!r},"
                f" laps={mission.laps!r},"
                f" time_step_s={mission.time_step_s!r})")

    def __reduce__(self):
        if self._setting_override is None:
            return (_mission_objective_singleton, ())
        return (MissionObjective, (self._setting_override,))

    def _setting(self):
        if self._setting_override is None:
            return _mission_setting()
        return self._setting_override

    def _frame_soa(self) -> ProfileSoA:
        if self._setting_override is None:
            return _frame_profile_soa()
        if self._frame_soa_cache is None:
            self._frame_soa_cache = ProfileSoA.from_profiles(
                [self._setting_override[0].frame_profile])
        return self._frame_soa_cache

    def __call__(self, config: Config) -> float:
        from repro.system.mission import run_mission

        mission, course, _ = self._setting()
        mass_kg, power_w = codesign_payload(config)
        result = run_mission(mission, build_platform(config), mass_kg,
                             power_w, course=course)
        return _mission_score(result, mission.battery.usable_energy_j)

    def evaluate_batch(self, configs: Sequence[Config]) -> List[float]:
        from repro.system.fleet import FleetRollout, run_fleet

        configs = list(configs)
        if not configs:
            return []
        mission, _, cache = self._setting()
        rollouts = []
        for config in configs:
            mass_kg, power_w = codesign_payload(config)
            rollouts.append(FleetRollout(
                name="candidate",
                config=mission,
                platform=build_platform(config),
                compute_mass_kg=mass_kg,
                compute_power_w=power_w,
            ))
        fleet = run_fleet(rollouts, course_cache=cache, arena=_arena())
        budget_j = mission.battery.usable_energy_j
        return [_mission_score(result, budget_j)
                for result in fleet.results]

    # -- fidelity ladder ----------------------------------------------

    def pricing_screen_batch(self, configs: Sequence[Config]
                             ) -> List[float]:
        """Tier-0 screen: continuous-time mission proxy from one
        batch-priced frame profile.

        Prices the per-frame pipeline for the whole population in one
        SoA pass, derives the latency-limited safe speed and hover
        power in closed form, and scores a *continuous* (no-timestep,
        no-course-following) flight of the patrol course: the
        latency → speed → battery couplings survive, the DES loop's
        quantization and mid-course failure accounting do not.
        Elementwise and deterministic (``t*sqrt(t)`` instead of
        ``t**1.5`` keeps every element's rounding identical at any
        batch size), so chunking cannot change a gate decision.
        """
        from repro.system.robot import AIR_DENSITY, GRAVITY

        configs = list(configs)
        if not configs:
            return []
        mission, course, _ = self._setting()
        cost = batch_estimate(encode_codesign(configs),
                              self._frame_soa(), arena=_arena())
        compute = cost.latency_s[:, 0]
        period = 1.0 / mission.sensor_rate_hz
        staleness = np.maximum(compute - period, 0.0)
        latency = (0.5 * period + compute + staleness
                   + mission.actuation_latency_s)
        accel = mission.uav.max_accel_m_s2
        raw_speed = accel * (np.sqrt(
            latency * latency
            + 2.0 * mission.sensing_range_m / accel) - latency)
        safe_speed = np.minimum(raw_speed, mission.uav.max_speed_m_s)
        # codesign_payload, elementwise (same op order per element).
        gflops = np.array([c["peak_gflops"] for c in configs])
        payload_mass = 0.05 + 2.0e-4 * gflops
        payload_power = np.array(
            [c["static_power_w"] for c in configs]) + 0.015 * gflops
        total_mass = (mission.uav.frame_mass_kg
                      + mission.battery.mass_kg + payload_mass)
        thrust = total_mass * GRAVITY
        hover = thrust * np.sqrt(thrust) / np.sqrt(
            2.0 * AIR_DENSITY * mission.uav.rotor_disk_area_m2
        ) / mission.uav.figure_of_merit + mission.uav.avionics_power_w
        power = hover + payload_power
        flight_time = course.total_length_m / safe_speed
        energy = flight_time * power
        budget_j = mission.battery.usable_energy_j
        endurance = budget_j / power
        penalty = np.where(energy > budget_j, 10.0, 0.0)
        score = penalty + flight_time / endurance + energy / budget_j
        return [float(value) for value in score]

    def pricing_screen(self, config: Config) -> float:
        """Scalar tier-0 screen (a batch of one, so the scalar and
        batch screens agree bit-for-bit)."""
        return self.pricing_screen_batch([config])[0]

    def fidelity_tiers(self) -> Tuple[FidelityTier, ...]:
        """Three rungs: batch pricing proxy → closed-form fleet rollout
        → full DES mission.

        The "fleet" tier computes values bit-identical to the top tier
        (the fleet engine's exact-equality contract) but caches under
        its own namespace; only the "mission" top tier — ``self``, the
        tier-equivalence contract — writes full-fidelity cache entries,
        and it is deliberately scalar-only so funnel benchmarks compare
        against the honest per-candidate DES cost.
        """
        return (
            FidelityTier(name="pricing",
                         evaluate=self.pricing_screen,
                         evaluate_batch=self.pricing_screen_batch,
                         cost_hint=1.0),
            FidelityTier(name="fleet",
                         evaluate=self,
                         evaluate_batch=self.evaluate_batch,
                         cost_hint=1.5),
            FidelityTier(name="mission",
                         evaluate=self,
                         evaluate_batch=None,
                         cost_hint=80.0),
        )


#: One-column ProfileSoA of the shared mission's frame profile (built
#: once per process; feeds the tier-0 pricing screen).
_FRAME_SOA = None


def _frame_profile_soa() -> ProfileSoA:
    global _FRAME_SOA
    if _FRAME_SOA is None:
        mission, _, _ = _mission_setting()
        _FRAME_SOA = ProfileSoA.from_profiles([mission.frame_profile])
    return _FRAME_SOA


def _mission_objective_singleton() -> "MissionObjective":
    """Pickle hook for :class:`MissionObjective` (see ``__reduce__``)."""
    return mission_objective


mission_objective = MissionObjective()
mission_objective.__doc__ = (
    "Closed-loop mission score (lower is better): +10 per failure,"
    " plus mission time over the design's endurance, plus energy over"
    " the usable battery budget — computed by flying the shared patrol"
    " scenario with the candidate platform installed.")
OBJECTIVES.register("mission_objective")(mission_objective)


suite_latency = SuiteObjective("slack")
suite_latency.__doc__ = (
    "Sum over the suite of critical-path latency / deadline (values"
    " above ``len(suite)`` mean deadlines are being missed on"
    " average).")
OBJECTIVES.register("suite_latency")(suite_latency)

suite_energy = SuiteObjective("energy")
suite_energy.__doc__ = (
    "Total dynamic + static energy (J) for one activation of every"
    " suite workload.")
OBJECTIVES.register("suite_energy")(suite_energy)

suite_objective = SuiteObjective("objective")
suite_objective.__doc__ = (
    "Single-objective co-design score (lower is better): real-time"
    " shortfall plus energy normalized against a 10 W budget over each"
    " workload's deadline — both terms dimensionless, so the trade-off"
    " is explicit rather than unit-accidental.")
OBJECTIVES.register("suite_objective")(suite_objective)

_SINGLETONS = {"slack": suite_latency, "energy": suite_energy,
               "objective": suite_objective}
