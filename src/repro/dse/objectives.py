"""Ready-made, picklable DSE objectives over the benchmark suite.

The CLI's ``repro dse`` verb (and the engine benchmarks) need a
self-contained co-design problem: a discrete space of platform knobs
and an oracle that prices a candidate platform against the standard
autonomy suite.  Everything here is defined at module level so that
:class:`~repro.engine.evaluator.Evaluator` can ship the objective to a
process pool (closures and lambdas cannot cross the pickle boundary).

The knobs mirror the §2.4 sizing question — how much compute, how much
on-chip memory, how much off-chip bandwidth, at what standing power —
and the oracle scores real-time slack and energy across the whole
suite, so single-kernel widgets cannot win (§2.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.workload import Workload
from repro.dse.space import Config, DesignSpace, Parameter
from repro.hw.platform import AnalyticalPlatform, PlatformConfig
from repro.spec.registry import OBJECTIVES, SPACES

_SUITE: "List[Workload] | None" = None


def _suite() -> List[Workload]:
    """The standard suite, built once per process (pool workers
    included)."""
    global _SUITE
    if _SUITE is None:
        from repro.benchmarksuite.workloads import standard_suite
        _SUITE = standard_suite()
    return _SUITE


@SPACES.register("codesign")
def codesign_space() -> DesignSpace:
    """The demo co-design space: 4 platform knobs, 256 designs."""
    return DesignSpace([
        Parameter("peak_gflops", (50.0, 200.0, 800.0, 3200.0)),
        Parameter("onchip_kb", (128.0, 512.0, 2048.0, 8192.0)),
        Parameter("offchip_gbs", (10.0, 25.0, 60.0, 150.0)),
        Parameter("static_power_w", (1.0, 3.0, 8.0, 20.0)),
    ])


def build_platform(config: Config) -> AnalyticalPlatform:
    """Lower a co-design point to a roofline platform.

    The name encodes the knob values, so two platforms built from the
    same config fingerprint identically across processes.
    """
    return AnalyticalPlatform(PlatformConfig(
        name=("codesign-{peak_gflops:g}g-{onchip_kb:g}kb"
              "-{offchip_gbs:g}gbs-{static_power_w:g}w"
              ).format(**config),
        peak_flops=config["peak_gflops"] * 1e9,
        scalar_flops=2e9,
        onchip_bytes=config["onchip_kb"] * 1024.0,
        onchip_bw=10.0 * config["offchip_gbs"] * 1e9,
        offchip_bw=config["offchip_gbs"] * 1e9,
        static_power_w=config["static_power_w"],
        device_class="asic",
    ))


def _price(config: Config) -> Dict[str, float]:
    """Suite-wide latency-slack and energy totals for one design."""
    platform = build_platform(config)
    slack = 0.0
    energy = 0.0
    for workload in _suite():
        stages = workload.graph.stages
        estimates = {s.name: platform.estimate(s.profile)
                     for s in stages}
        latency, _ = workload.graph.critical_path(
            {name: est.latency_s for name, est in estimates.items()})
        slack += latency / workload.deadline_s()
        energy += sum(est.energy_j for est in estimates.values())
    return {"slack": slack, "energy_j": energy}


@OBJECTIVES.register("suite_latency")
def suite_latency(config: Config) -> float:
    """Sum over the suite of critical-path latency / deadline (values
    above ``len(suite)`` mean deadlines are being missed on average)."""
    return _price(config)["slack"]


@OBJECTIVES.register("suite_energy")
def suite_energy(config: Config) -> float:
    """Total dynamic + static energy (J) for one activation of every
    suite workload."""
    return _price(config)["energy_j"]


@OBJECTIVES.register("suite_objective")
def suite_objective(config: Config) -> float:
    """Single-objective co-design score (lower is better).

    Real-time shortfall plus energy normalized against a 10 W budget
    over each workload's deadline — both terms dimensionless, so the
    trade-off is explicit rather than unit-accidental.
    """
    platform = build_platform(config)
    total = 0.0
    for workload in _suite():
        stages = workload.graph.stages
        estimates = {s.name: platform.estimate(s.profile)
                     for s in stages}
        latency, _ = workload.graph.critical_path(
            {name: est.latency_s for name, est in estimates.items()})
        energy = sum(est.energy_j for est in estimates.values())
        deadline = workload.deadline_s()
        total += latency / deadline + energy / (10.0 * deadline)
    return total
