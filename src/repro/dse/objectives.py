"""Ready-made, picklable DSE objectives over the benchmark suite.

The CLI's ``repro dse`` verb (and the engine benchmarks) need a
self-contained co-design problem: a discrete space of platform knobs
and an oracle that prices a candidate platform against the standard
autonomy suite.  Everything here is defined at module level so that
:class:`~repro.engine.evaluator.Evaluator` can ship the objective to a
process pool (closures and lambdas cannot cross the pickle boundary).

The knobs mirror the §2.4 sizing question — how much compute, how much
on-chip memory, how much off-chip bandwidth, at what standing power —
and the oracle scores real-time slack and energy across the whole
suite, so single-kernel widgets cannot win (§2.3).

The objectives are **batch-capable** (:class:`SuiteObjective` exposes
``evaluate_batch``): an Evaluator prices an entire ask() population in
one structure-of-arrays roofline pass (:mod:`repro.hw.batch`) instead
of candidate-by-candidate Python, with values bit-identical to the
scalar ``__call__`` path.  :func:`encode_codesign` is the
``DesignSpace``-population → :class:`~repro.hw.batch.PlatformSoA`
encoder that makes this possible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.workload import Workload
from repro.dse.space import Config, DesignSpace, Parameter
from repro.engine.arena import BatchArena
from repro.errors import SearchError
from repro.hw.batch import PlatformSoA, ProfileSoA, batch_estimate
from repro.hw.platform import AnalyticalPlatform, PlatformConfig
from repro.spec.registry import OBJECTIVES, SPACES

_SUITE: "List[Workload] | None" = None

#: Per-process scratch arena shared by the batch objectives: every
#: ``evaluate_batch`` call (every chunk of a chunked evaluation, every
#: DSE generation) reuses the same buffers, so steady-state pricing
#: allocates nothing on the hot path.  Results are bit-identical to the
#: allocating path — the arena only changes where outputs live.
_ARENA: "BatchArena | None" = None


def _arena() -> BatchArena:
    global _ARENA
    if _ARENA is None:
        _ARENA = BatchArena()
    return _ARENA


def _suite() -> List[Workload]:
    """The standard suite, built once per process (pool workers
    included)."""
    global _SUITE
    if _SUITE is None:
        from repro.benchmarksuite.workloads import standard_suite
        _SUITE = standard_suite()
    return _SUITE


#: Per-workload batch-pricing structure: (workload, stage names in
#: topological order, column slice into the suite-wide ProfileSoA).
_SuitePlan = List[Tuple[Workload, Tuple[str, ...], slice]]
_BATCH_SUITE: "Tuple[ProfileSoA, _SuitePlan] | None" = None


def _batch_suite() -> Tuple[ProfileSoA, _SuitePlan]:
    """The whole suite's stage profiles as one SoA block, plus the
    per-workload plan to slice it back apart (built once per
    process)."""
    global _BATCH_SUITE
    if _BATCH_SUITE is None:
        profiles = []
        plan: _SuitePlan = []
        for workload in _suite():
            stages = workload.graph.stages
            start = len(profiles)
            profiles.extend(stage.profile for stage in stages)
            plan.append((workload,
                         tuple(stage.name for stage in stages),
                         slice(start, len(profiles))))
        _BATCH_SUITE = (ProfileSoA.from_profiles(profiles), plan)
    return _BATCH_SUITE


@SPACES.register("codesign")
def codesign_space() -> DesignSpace:
    """The demo co-design space: 4 platform knobs, 256 designs."""
    return DesignSpace([
        Parameter("peak_gflops", (50.0, 200.0, 800.0, 3200.0)),
        Parameter("onchip_kb", (128.0, 512.0, 2048.0, 8192.0)),
        Parameter("offchip_gbs", (10.0, 25.0, 60.0, 150.0)),
        Parameter("static_power_w", (1.0, 3.0, 8.0, 20.0)),
    ])


def build_platform(config: Config) -> AnalyticalPlatform:
    """Lower a co-design point to a roofline platform.

    The name encodes the knob values, so two platforms built from the
    same config fingerprint identically across processes.
    """
    return AnalyticalPlatform(PlatformConfig(
        name=("codesign-{peak_gflops:g}g-{onchip_kb:g}kb"
              "-{offchip_gbs:g}gbs-{static_power_w:g}w"
              ).format(**config),
        peak_flops=config["peak_gflops"] * 1e9,
        scalar_flops=2e9,
        onchip_bytes=config["onchip_kb"] * 1024.0,
        onchip_bw=10.0 * config["offchip_gbs"] * 1e9,
        offchip_bw=config["offchip_gbs"] * 1e9,
        static_power_w=config["static_power_w"],
        device_class="asic",
    ))


def encode_codesign(configs: Sequence[Config]) -> PlatformSoA:
    """SoA-encode a co-design population: the :func:`build_platform`
    lowering, transposed into columns for :func:`batch_estimate`.

    Going through ``build_platform`` (rather than re-deriving the knob
    formulas) keeps the encoder incapable of drifting from the scalar
    lowering — same validation, same derived fields.
    """
    return PlatformSoA.from_configs(
        [build_platform(config).config for config in configs])


def _price(config: Config) -> Dict[str, float]:
    """Suite-wide latency-slack and energy totals for one design."""
    platform = build_platform(config)
    slack = 0.0
    energy = 0.0
    for workload in _suite():
        stages = workload.graph.stages
        estimates = {s.name: platform.estimate(s.profile)
                     for s in stages}
        latency, _ = workload.graph.critical_path(
            {name: est.latency_s for name, est in estimates.items()})
        slack += latency / workload.deadline_s()
        energy += sum(est.energy_j for est in estimates.values())
    return {"slack": slack, "energy_j": energy}


class SuiteObjective:
    """A suite-priced co-design objective with a vectorized batch path.

    Instances are plain callables (``config -> float``, so every
    existing entry point keeps working and process pools can pickle
    them) that additionally implement the
    :class:`~repro.engine.protocol.BatchObjective` protocol:
    ``evaluate_batch(configs)`` SoA-encodes the whole population
    (:func:`encode_codesign`), prices every (candidate, suite-stage)
    pair in one fused roofline pass, and reduces per workload with the
    same accumulation order as the scalar path — so batch values are
    bit-identical to calling the objective per candidate.

    Args:
        kind: ``"slack"`` (suite latency/deadline total), ``"energy"``
            (suite energy total), or ``"objective"`` (the combined
            co-design score).
    """

    KINDS = ("slack", "energy", "objective")

    def __init__(self, kind: str):
        if kind not in self.KINDS:
            raise SearchError(
                f"unknown suite objective kind {kind!r};"
                f" expected one of {self.KINDS}")
        self.kind = kind

    def __repr__(self) -> str:
        return f"SuiteObjective({self.kind!r})"

    def __reduce__(self):
        # Pickle by reference, like a module-level function would: pool
        # workers (and registry round-trips) resolve to this module's
        # singleton for the kind rather than rebuilding state.
        return (_suite_objective_singleton, (self.kind,))

    # -- scalar path --------------------------------------------------

    def __call__(self, config: Config) -> float:
        if self.kind == "slack":
            return _price(config)["slack"]
        if self.kind == "energy":
            return _price(config)["energy_j"]
        platform = build_platform(config)
        total = 0.0
        for workload in _suite():
            stages = workload.graph.stages
            estimates = {s.name: platform.estimate(s.profile)
                         for s in stages}
            latency, _ = workload.graph.critical_path(
                {name: est.latency_s
                 for name, est in estimates.items()})
            energy = sum(est.energy_j for est in estimates.values())
            deadline = workload.deadline_s()
            total += latency / deadline + energy / (10.0 * deadline)
        return total

    # -- vectorized batch path ----------------------------------------

    def evaluate_batch(self, configs: Sequence[Config]) -> List[float]:
        """Price a whole population in one SoA roofline pass.

        Reduction discipline for bit-identity with the scalar path:
        per-workload stage energies are accumulated column-by-column in
        topological order (numpy's pairwise ``sum`` would round
        differently), and workload totals accumulate in suite order —
        exactly the scalar loops, elementwise over the candidate axis.
        """
        configs = list(configs)
        if not configs:
            return []
        soa = encode_codesign(configs)
        profiles, plan = _batch_suite()
        cost = batch_estimate(soa, profiles, arena=_arena())
        totals = np.zeros(len(configs))
        for workload, stage_names, columns in plan:
            block_latency = cost.latency_s[:, columns]
            block_energy = cost.energy_j[:, columns]
            latency = workload.graph.critical_path_batch(
                {name: block_latency[:, j]
                 for j, name in enumerate(stage_names)})
            energy = np.zeros(len(configs))
            for j in range(len(stage_names)):
                energy = energy + block_energy[:, j]
            deadline = workload.deadline_s()
            if self.kind == "slack":
                totals = totals + latency / deadline
            elif self.kind == "energy":
                totals = totals + energy
            else:
                totals = totals + (latency / deadline
                                   + energy / (10.0 * deadline))
        return [float(value) for value in totals]


def _suite_objective_singleton(kind: str) -> "SuiteObjective":
    """Pickle hook for :class:`SuiteObjective` (see ``__reduce__``)."""
    return _SINGLETONS[kind]


# --------------------------------------------------------------------------
# Mission-in-the-loop objective (§2.4: score the *mission*, not the chip).
# --------------------------------------------------------------------------

#: Lazily-built mission setting shared by every candidate: the config,
#: its planned course, and an :func:`repro.system.fleet.ensure_course`
#: cache pre-seeded with that course (one per process, pool workers
#: included).
_MISSION = None


def _mission_setting():
    """The fixed closed-loop scenario mission candidates fly.

    A compact patrol world (60 m, two laps) keeps a single scalar
    evaluation cheap enough for search budgets while still exercising
    the latency-speed-battery couplings; the course is planned exactly
    once per process.
    """
    global _MISSION
    if _MISSION is None:
        from repro.kernels.planning.occupancy import CircleWorld
        from repro.system.fleet import course_key
        from repro.system.mission import MissionConfig, plan_course

        world = CircleWorld.random(
            dim=2, n_obstacles=24, extent=60.0,
            radius_range=(1.0, 2.5), seed=5, keep_corners_free=3.0)
        config = MissionConfig(
            world=world,
            start=np.array([1.0, 1.0]),
            goal=np.array([58.0, 58.0]),
            laps=2,
        )
        course = plan_course(config)
        cache = {course_key(config): (world, course)}
        _MISSION = (config, course, cache)
    return _MISSION


def codesign_payload(config: Config) -> Tuple[float, float]:
    """The physical module a co-design point implies, as
    ``(mass_kg, power_w)``.

    Compute does not fly for free: mass scales with the die/board/
    cooling that peak throughput requires, and flight power adds a
    dynamic term on top of the standing power knob.  The slopes land
    the 4-knob space across the same ~0.1-0.7 kg / ~5-70 W span as the
    catalog's embedded tiers.
    """
    mass_kg = 0.05 + 2.0e-4 * config["peak_gflops"]
    power_w = config["static_power_w"] + 0.015 * config["peak_gflops"]
    return mass_kg, power_w


def _mission_score(result, budget_j: float) -> float:
    """Lower-is-better mission score from one :class:`MissionResult`.

    Failures are disqualifying (a flat +10 dominates every feasible
    score); feasible designs trade mission time (normalized by the
    design's own endurance) against battery draw (normalized by the
    usable budget) — both dimensionless, both in (0, 1] for sane
    designs, exactly the §2.4 "enough compute but not more" shape.
    """
    penalty = 0.0 if result.success else 10.0
    return (penalty + result.mission_time_s / result.endurance_s
            + result.energy_j / budget_j)


class MissionObjective:
    """Closed-loop mission objective with a vectorized batch path.

    The scalar path lowers a candidate to a platform + payload
    (:func:`build_platform`, :func:`codesign_payload`) and flies the
    shared scenario through
    :func:`~repro.system.mission.run_mission`; ``evaluate_batch``
    flies the whole population through
    :func:`~repro.system.fleet.run_fleet` instead.  The fleet engine's
    results are exactly equal to the scalar simulator's, and the score
    is a per-result Python reduction of those fields, so batch values
    are bit-identical to calling the objective per candidate — the
    same contract :class:`SuiteObjective` keeps.
    """

    def __repr__(self) -> str:
        return "MissionObjective()"

    def __reduce__(self):
        return (_mission_objective_singleton, ())

    def __call__(self, config: Config) -> float:
        from repro.system.mission import run_mission

        mission, course, _ = _mission_setting()
        mass_kg, power_w = codesign_payload(config)
        result = run_mission(mission, build_platform(config), mass_kg,
                             power_w, course=course)
        return _mission_score(result, mission.battery.usable_energy_j)

    def evaluate_batch(self, configs: Sequence[Config]) -> List[float]:
        from repro.system.fleet import FleetRollout, run_fleet

        configs = list(configs)
        if not configs:
            return []
        mission, _, cache = _mission_setting()
        rollouts = []
        for config in configs:
            mass_kg, power_w = codesign_payload(config)
            rollouts.append(FleetRollout(
                name="candidate",
                config=mission,
                platform=build_platform(config),
                compute_mass_kg=mass_kg,
                compute_power_w=power_w,
            ))
        fleet = run_fleet(rollouts, course_cache=cache, arena=_arena())
        budget_j = mission.battery.usable_energy_j
        return [_mission_score(result, budget_j)
                for result in fleet.results]


def _mission_objective_singleton() -> "MissionObjective":
    """Pickle hook for :class:`MissionObjective` (see ``__reduce__``)."""
    return mission_objective


mission_objective = MissionObjective()
mission_objective.__doc__ = (
    "Closed-loop mission score (lower is better): +10 per failure,"
    " plus mission time over the design's endurance, plus energy over"
    " the usable battery budget — computed by flying the shared patrol"
    " scenario with the candidate platform installed.")
OBJECTIVES.register("mission_objective")(mission_objective)


suite_latency = SuiteObjective("slack")
suite_latency.__doc__ = (
    "Sum over the suite of critical-path latency / deadline (values"
    " above ``len(suite)`` mean deadlines are being missed on"
    " average).")
OBJECTIVES.register("suite_latency")(suite_latency)

suite_energy = SuiteObjective("energy")
suite_energy.__doc__ = (
    "Total dynamic + static energy (J) for one activation of every"
    " suite workload.")
OBJECTIVES.register("suite_energy")(suite_energy)

suite_objective = SuiteObjective("objective")
suite_objective.__doc__ = (
    "Single-objective co-design score (lower is better): real-time"
    " shortfall plus energy normalized against a 10 W budget over each"
    " workload's deadline — both terms dimensionless, so the trade-off"
    " is explicit rather than unit-accidental.")
OBJECTIVES.register("suite_objective")(suite_objective)

_SINGLETONS = {"slack": suite_latency, "energy": suite_energy,
               "objective": suite_objective}
