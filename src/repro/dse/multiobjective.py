"""Multi-objective DSE: trade fronts instead of single winners.

Full-system accelerator design is inherently multi-objective (latency
vs. energy vs. area vs. mission merit — §2.2's point that no single
metric decides).  This module runs scalarized searches across a weight
sweep and assembles the non-dominated front from *every* evaluated
point, so the output is the trade curve a design review actually needs.

Engine integration: the *vector* of objective values per config is what
gets priced through the :class:`~repro.engine.evaluator.Evaluator`
(content-addressed, cacheable, batch-parallel — objective vectors are
order-independent), while scalarization (weighting + running min-max
normalization) happens strategy-side in proposal order, so results are
identical regardless of parallelism or cache warmth.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.dse.bayesian import SurrogateSearch
from repro.dse.pareto import hypervolume_2d, pareto_front
from repro.dse.search import RandomStrategy
from repro.dse.space import Config, DesignSpace
from repro.engine.cache import ResultCache
from repro.engine.evaluator import EvalResult, Evaluator
from repro.engine.protocol import run_search
from repro.errors import BatchFallback, SearchError

ObjectiveFn = Callable[[Config], float]


@dataclass
class FrontPoint:
    """One non-dominated design.

    Attributes:
        config: The design.
        objectives: Objective name -> value (all minimized).
    """

    config: Config
    objectives: Dict[str, float]


@dataclass
class MultiObjectiveResult:
    """Outcome of a multi-objective search.

    Attributes:
        front: Non-dominated designs (arbitrary order).
        evaluations: Unique configs priced across all scalarizations
            (repeats are memoized and free).
        objective_names: The minimized objectives, in declaration order.
    """

    front: List[FrontPoint] = field(default_factory=list)
    evaluations: int = 0
    objective_names: Tuple[str, ...] = ()

    def hypervolume(self, reference: Sequence[float]) -> float:
        """2-D dominated hypervolume of the front (first two
        objectives)."""
        if len(self.objective_names) < 2:
            raise SearchError("hypervolume needs >= 2 objectives")
        points = [
            [p.objectives[self.objective_names[0]],
             p.objectives[self.objective_names[1]]]
            for p in self.front
        ]
        if not points:
            return 0.0
        return hypervolume_2d(points, reference)


class VectorObjective:
    """Named objectives bundled into one ``config -> {name: value}``
    callable (module-level, hence picklable for process pools when its
    component functions are).

    Batch-capable when its components are: ``evaluate_batch`` prices
    each column through the component's own ``evaluate_batch`` where it
    has one (falling back to a scalar loop per column otherwise), so a
    population of vector candidates still hits the SoA roofline kernel
    once per batch-capable objective.  If *no* component is
    batch-capable the whole batch is declined via
    :class:`~repro.errors.BatchFallback` — the Evaluator's scalar path
    is strictly better then (it can use the process pool).
    """

    def __init__(self, objectives: Dict[str, ObjectiveFn]):
        self.names = tuple(objectives)
        self.fns = tuple(objectives.values())

    def __call__(self, config: Config) -> Dict[str, float]:
        return {name: fn(config)
                for name, fn in zip(self.names, self.fns)}

    def evaluate_batch(self, configs: Sequence[Config]
                       ) -> List[Dict[str, float]]:
        if not any(callable(getattr(fn, "evaluate_batch", None))
                   for fn in self.fns):
            raise BatchFallback(
                "no component objective is batch-capable")
        configs = list(configs)
        columns: List[Sequence[float]] = []
        for fn in self.fns:
            evaluate_batch = getattr(fn, "evaluate_batch", None)
            if callable(evaluate_batch):
                columns.append(list(evaluate_batch(configs)))
            else:
                columns.append([fn(config) for config in configs])
        return [{name: column[i]
                 for name, column in zip(self.names, columns)}
                for i in range(len(configs))]


class _ScalarizingEvaluator:
    """Adapter giving a single-objective strategy a scalar view of the
    shared vector evaluator.

    Vector values for a batch are priced at once (parallel, cached);
    scalars are then derived sequentially in proposal order, each using
    min-max bounds over every config seen *so far* — byte-for-byte the
    semantics of the historical one-at-a-time loop.
    """

    def __init__(self, inner: Evaluator, space: DesignSpace,
                 store: Dict[int, Dict[str, float]],
                 names: Tuple[str, ...], weights: np.ndarray):
        self.inner = inner
        self.space = space
        self.store = store
        self.names = names
        self.weights = weights

    def _scalarize(self, values: Dict[str, float]) -> float:
        lo = {name: min(v[name] for v in self.store.values())
              for name in self.names}
        hi = {name: max(v[name] for v in self.store.values())
              for name in self.names}
        total = 0.0
        for weight, name in zip(self.weights, self.names):
            span = hi[name] - lo[name]
            normalized = 0.0 if span == 0 \
                else (values[name] - lo[name]) / span
            total += weight * normalized
        return total

    def map_batch(self, configs: Sequence[Config]) -> List[EvalResult]:
        results = self.inner.map_batch(configs)
        out: List[EvalResult] = []
        for result in results:
            key = self.space.index_of(result.candidate)
            self.store.setdefault(key, result.value)
            scalar = self._scalarize(self.store[key])
            out.append(dataclasses.replace(result, value=scalar))
        return out


def _normalizing_weights(n_objectives: int,
                         n_sweeps: int) -> List[np.ndarray]:
    """Evenly spread simplex weights (2-D: a linspace; higher: random
    Dirichlet with a fixed seed for determinism)."""
    if n_objectives == 2:
        alphas = np.linspace(0.05, 0.95, n_sweeps)
        return [np.array([a, 1.0 - a]) for a in alphas]
    rng = np.random.default_rng(0)
    return [rng.dirichlet(np.ones(n_objectives))
            for _ in range(n_sweeps)]


def multi_objective_search(
    space: DesignSpace,
    objectives: Dict[str, ObjectiveFn],
    budget_per_weight: int = 12,
    n_weights: int = 5,
    method: str = "surrogate",
    seed: int = 0,
    *,
    evaluator: "Evaluator | None" = None,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    chunk_size: "int | None" = None,
) -> MultiObjectiveResult:
    """Assemble a Pareto front via scalarized searches.

    Each weight vector runs one single-objective search on the
    weighted sum of *normalized* objectives (running min-max
    normalization over everything seen so far keeps scales
    comparable).  All evaluated points — not just each run's winner —
    enter the final non-dominated filter.

    Args:
        space: The design space.
        objectives: Name -> minimized objective function.
        budget_per_weight: Oracle budget per scalarization (unique
            configs; repeats are memoized and free).
        n_weights: Number of scalarizations.
        method: ``"surrogate"`` or ``"random"``.
        seed: Base seed.
        evaluator: A pre-built vector evaluator (must price configs to
            ``{name: value}`` dicts); overrides ``jobs``/``cache``.
        jobs: Process-pool width for objective-vector pricing.
        cache: Result cache for the vector evaluator (pass one with a
            directory — and a distinguishing evaluator ``context`` — to
            share across runs).
        chunk_size: Evaluate at most this many pending candidates per
            oracle pass (bounds the peak working set; values and order
            are unchanged).
    """
    if len(objectives) < 2:
        raise SearchError("need >= 2 objectives")
    if method not in ("surrogate", "random"):
        raise SearchError(f"unknown method {method!r}")
    names = tuple(objectives)
    if evaluator is None:
        evaluator = Evaluator(VectorObjective(objectives), jobs=jobs,
                              cache=cache, seed=seed,
                              chunk_size=chunk_size)
    store: Dict[int, Dict[str, float]] = {}

    for sweep, weights in enumerate(
            _normalizing_weights(len(names), n_weights)):
        scalarized = _ScalarizingEvaluator(evaluator, space, store,
                                           names, weights)
        if method == "surrogate":
            n_initial = max(2, min(6, budget_per_weight - 1))
            strategy = SurrogateSearch(
                space, n_initial=n_initial, seed=seed + sweep,
            ).strategy(budget_per_weight)
        else:
            strategy = RandomStrategy(space, budget=budget_per_weight,
                                      seed=seed + sweep)
        run_search(strategy, scalarized)

    points = list(store.items())
    vectors = [[values[name] for name in names]
               for _, values in points]
    keep = pareto_front(vectors)
    front = [
        FrontPoint(config=space.config_at(points[i][0]),
                   objectives=dict(points[i][1]))
        for i in keep
    ]
    return MultiObjectiveResult(front=front, evaluations=len(store),
                                objective_names=names)
