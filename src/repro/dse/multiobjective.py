"""Multi-objective DSE: trade fronts instead of single winners.

Full-system accelerator design is inherently multi-objective (latency
vs. energy vs. area vs. mission merit — §2.2's point that no single
metric decides).  This module runs scalarized searches across a weight
sweep and assembles the non-dominated front from *every* evaluated
point, so the output is the trade curve a design review actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.pareto import hypervolume_2d, pareto_front
from repro.dse.search import random_search
from repro.dse.bayesian import SurrogateSearch
from repro.dse.space import Config, DesignSpace
from repro.errors import SearchError

ObjectiveFn = Callable[[Config], float]


@dataclass
class FrontPoint:
    """One non-dominated design.

    Attributes:
        config: The design.
        objectives: Objective name -> value (all minimized).
    """

    config: Config
    objectives: Dict[str, float]


@dataclass
class MultiObjectiveResult:
    """Outcome of a multi-objective search.

    Attributes:
        front: Non-dominated designs (arbitrary order).
        evaluations: Oracle calls consumed across all scalarizations
            (memoized: each unique config is evaluated once).
        objective_names: The minimized objectives, in declaration order.
    """

    front: List[FrontPoint] = field(default_factory=list)
    evaluations: int = 0
    objective_names: Tuple[str, ...] = ()

    def hypervolume(self, reference: Sequence[float]) -> float:
        """2-D dominated hypervolume of the front (first two
        objectives)."""
        if len(self.objective_names) < 2:
            raise SearchError("hypervolume needs >= 2 objectives")
        points = [
            [p.objectives[self.objective_names[0]],
             p.objectives[self.objective_names[1]]]
            for p in self.front
        ]
        if not points:
            return 0.0
        return hypervolume_2d(points, reference)


def _normalizing_weights(n_objectives: int,
                         n_sweeps: int) -> List[np.ndarray]:
    """Evenly spread simplex weights (2-D: a linspace; higher: random
    Dirichlet with a fixed seed for determinism)."""
    if n_objectives == 2:
        alphas = np.linspace(0.05, 0.95, n_sweeps)
        return [np.array([a, 1.0 - a]) for a in alphas]
    rng = np.random.default_rng(0)
    return [rng.dirichlet(np.ones(n_objectives))
            for _ in range(n_sweeps)]


def multi_objective_search(
    space: DesignSpace,
    objectives: Dict[str, ObjectiveFn],
    budget_per_weight: int = 12,
    n_weights: int = 5,
    method: str = "surrogate",
    seed: int = 0,
) -> MultiObjectiveResult:
    """Assemble a Pareto front via scalarized searches.

    Each weight vector runs one single-objective search on the
    weighted sum of *normalized* objectives (running min-max
    normalization over everything seen so far keeps scales
    comparable).  All evaluated points — not just each run's winner —
    enter the final non-dominated filter.

    Args:
        space: The design space.
        objectives: Name -> minimized objective function.
        budget_per_weight: Oracle budget per scalarization (unique
            configs; repeats are memoized and free).
        n_weights: Number of scalarizations.
        method: ``"surrogate"`` or ``"random"``.
        seed: Base seed.
    """
    if len(objectives) < 2:
        raise SearchError("need >= 2 objectives")
    if method not in ("surrogate", "random"):
        raise SearchError(f"unknown method {method!r}")
    names = tuple(objectives)
    cache: Dict[int, Dict[str, float]] = {}

    def evaluate(config: Config) -> Dict[str, float]:
        key = space.index_of(config)
        if key not in cache:
            cache[key] = {name: fn(config)
                          for name, fn in objectives.items()}
        return cache[key]

    def scalarize(weights: np.ndarray) -> ObjectiveFn:
        def scalar(config: Config) -> float:
            values = evaluate(config)
            lo = {name: min(v[name] for v in cache.values())
                  for name in names}
            hi = {name: max(v[name] for v in cache.values())
                  for name in names}
            total = 0.0
            for weight, name in zip(weights, names):
                span = hi[name] - lo[name]
                normalized = 0.0 if span == 0 \
                    else (values[name] - lo[name]) / span
                total += weight * normalized
            return total
        return scalar

    for sweep, weights in enumerate(
            _normalizing_weights(len(names), n_weights)):
        scalar = scalarize(weights)
        if method == "surrogate":
            n_initial = max(2, min(6, budget_per_weight - 1))
            SurrogateSearch(space, n_initial=n_initial,
                            seed=seed + sweep).run(
                scalar, budget=budget_per_weight)
        else:
            random_search(space, scalar, budget=budget_per_weight,
                          seed=seed + sweep)

    points = list(cache.items())
    vectors = [[values[name] for name in names]
               for _, values in points]
    keep = pareto_front(vectors)
    front = [
        FrontPoint(config=space.config_at(points[i][0]),
                   objectives=dict(points[i][1]))
        for i in keep
    ]
    return MultiObjectiveResult(front=front, evaluations=len(cache),
                                objective_names=names)
