"""Constraint handling for DSE: feasibility checks and penalty wrapping.

Full-system design spaces are mostly *infeasible* (mass budgets, deadline
requirements, §2.4's battery limits); searches need constraints to be
first-class rather than baked into ad-hoc objective hacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.dse.search import Objective
from repro.dse.space import Config
from repro.errors import SearchError

Metric = Callable[[Config], float]


@dataclass(frozen=True)
class Constraint:
    """An upper-bound constraint ``metric(config) <= bound``.

    Attributes:
        name: Constraint name (e.g. ``"mass_kg"``).
        metric: Function computing the constrained quantity.
        bound: Upper bound.
    """

    name: str
    metric: Metric
    bound: float

    def violation(self, config: Config) -> float:
        """Amount by which the bound is exceeded (0 when satisfied)."""
        return max(0.0, self.metric(config) - self.bound)

    def satisfied(self, config: Config) -> bool:
        return self.violation(config) == 0.0


class ConstraintSet:
    """A collection of constraints with penalty-objective wrapping."""

    def __init__(self, constraints: Sequence[Constraint]):
        names = [c.name for c in constraints]
        if len(set(names)) != len(names):
            raise SearchError(f"duplicate constraint names: {names}")
        self.constraints = list(constraints)

    def feasible(self, config: Config) -> bool:
        return all(c.satisfied(config) for c in self.constraints)

    def violations(self, config: Config) -> Dict[str, float]:
        return {c.name: c.violation(config) for c in self.constraints}

    def total_violation(self, config: Config) -> float:
        return sum(c.violation(config) for c in self.constraints)

    def penalized(self, objective: Objective,
                  penalty_weight: float = 1e6) -> Objective:
        """Wrap an objective with a linear penalty on violations.

        A large default weight makes any infeasible point worse than any
        feasible one — adequate for discrete spaces where we only need
        ranking, not gradients.
        """
        if penalty_weight <= 0:
            raise SearchError("penalty_weight must be > 0")

        def wrapped(config: Config) -> float:
            penalty = self.total_violation(config)
            return objective(config) + penalty_weight * penalty

        return wrapped
