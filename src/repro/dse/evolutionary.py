"""A genetic algorithm over discrete design spaces.

The classic black-box alternative to surrogate search: tournament
selection, uniform crossover, single-parameter mutation.  Included both
as an E8 baseline and because GA-style search is what several published
accelerator-DSE systems actually ship.

Under the ask/tell protocol the GA proposes its warm-up population as
one batch (parallelizable) and then one child per ask — steady-state
reproduction is inherently sequential, since each child's parents come
from the population the previous child just updated.  Within-run
repeats are handled strategy-side (the budget counts *unique* designs,
matching how expensive simulators are used); cross-run repeats are the
Evaluator cache's job.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.search import (
    ConfigStrategy,
    Objective,
    SearchResult,
    _make_evaluator,
)
from repro.dse.space import Config, DesignSpace
from repro.engine.cache import ResultCache
from repro.engine.evaluator import EvalResult, Evaluator
from repro.engine.protocol import run_search
from repro.errors import SearchError
from repro.telemetry.tracer import get_tracer


class EvolutionaryStrategy(ConfigStrategy):
    """Steady-state GA as an ask/tell strategy.

    Args:
        space: The design space.
        budget: Unique-design evaluation budget.
        population_size: Individuals per generation.
        tournament_size: Selection pressure.
        crossover_rate: Probability of uniform crossover (else clone).
        mutation_rate: Per-parameter mutation probability.
        rng: The generator driving sampling/selection/mutation (owning
            it lets :class:`EvolutionarySearch` keep its historical
            stateful-across-runs behavior).
    """

    def __init__(self, space: DesignSpace, budget: int,
                 population_size: int = 16, tournament_size: int = 3,
                 crossover_rate: float = 0.9, mutation_rate: float = 0.2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(space)
        if budget < 2:
            raise SearchError("budget must be >= 2")
        self.budget = budget
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._seen: Dict[int, float] = {}
        self._population: List[Tuple[Config, float]] = []
        self._initialized = False

    # -- GA operators -------------------------------------------------

    def _tournament(self) -> Config:
        picks = self.rng.choice(len(self._population),
                                size=min(self.tournament_size,
                                         len(self._population)),
                                replace=False)
        best = min((self._population[int(i)] for i in picks),
                   key=lambda pair: pair[1])
        return dict(best[0])

    def _crossover(self, a: Config, b: Config) -> Config:
        child: Config = {}
        for p in self.space.parameters:
            source = a if self.rng.random() < 0.5 else b
            child[p.name] = source[p.name]
        return child

    def _mutate(self, config: Config) -> Config:
        mutated = dict(config)
        for p in self.space.parameters:
            if self.rng.random() < self.mutation_rate:
                choices = [v for v in p.values if v != mutated[p.name]]
                if choices:
                    mutated[p.name] = choices[
                        int(self.rng.integers(len(choices)))
                    ]
        return mutated

    def _breed(self) -> Config:
        parent_a = self._tournament()
        parent_b = self._tournament()
        if self.rng.random() < self.crossover_rate:
            child = self._crossover(parent_a, parent_b)
        else:
            child = parent_a
        return self._mutate(child)

    def _step_population(self, child: Config, value: float) -> None:
        """Steady-state replacement: drop the worst individual."""
        self._population.append((child, value))
        self._population.sort(key=lambda pair: pair[1])
        self._population = self._population[:self.population_size]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "dse.generation", ts=float(len(self.trace)),
                track="dse",
                args={"population_best": self._population[0][1],
                      "population_worst": self._population[-1][1],
                      "unique_evals": len(self._seen)},
            )

    # -- ask/tell -----------------------------------------------------

    def ask(self) -> List[Config]:
        if not self._initialized:
            n_init = min(self.population_size, self.budget,
                         self.space.size)
            return self.space.sample(
                self.rng, n=n_init,
                replace=self.space.size < n_init)
        tracer = get_tracer()
        while not self.finished():
            child = self._breed()
            key = self.space.index_of(child)
            if key not in self._seen:
                return [child]
            # Within-run repeat: free (memoized), but it still steps
            # the population, exactly as the pre-ask/tell GA did.
            if tracer.enabled:
                tracer.instant("dse.cache_hit",
                               ts=float(len(self.trace)), track="dse",
                               args={"config": dict(child)})
            self._step_population(child, self._seen[key])
        return []

    def tell(self, results: Sequence[EvalResult]) -> None:
        if not self._initialized:
            for result in results:
                key = self.space.index_of(result.candidate)
                if key not in self._seen:
                    self._seen[key] = result.value
                    self.ingest(result.candidate, result.value)
                self._population.append((result.candidate,
                                         self._seen[key]))
            self._initialized = True
            return
        for result in results:
            key = self.space.index_of(result.candidate)
            self._seen[key] = result.value
            self.ingest(result.candidate, result.value)
            self._step_population(result.candidate, result.value)

    def finished(self) -> bool:
        if not self._initialized:
            return False
        return (len(self.history) >= self.budget
                or len(self._seen) >= self.space.size)


class EvolutionarySearch:
    """Steady-state GA with memoized evaluations.

    Args:
        space: The design space.
        population_size: Individuals per generation.
        tournament_size: Selection pressure.
        crossover_rate: Probability of uniform crossover (else clone).
        mutation_rate: Per-parameter mutation probability.
        seed: RNG seed.
    """

    def __init__(self, space: DesignSpace, population_size: int = 16,
                 tournament_size: int = 3, crossover_rate: float = 0.9,
                 mutation_rate: float = 0.2, seed: int = 0):
        if population_size < 2:
            raise SearchError("population_size must be >= 2")
        if tournament_size < 1:
            raise SearchError("tournament_size must be >= 1")
        if not 0.0 <= crossover_rate <= 1.0:
            raise SearchError("crossover_rate must be in [0, 1]")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SearchError("mutation_rate must be in [0, 1]")
        self.space = space
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.rng = np.random.default_rng(seed)

    def strategy(self, budget: int) -> EvolutionaryStrategy:
        """An ask/tell strategy bound to this search's parameters and
        (stateful) RNG."""
        return EvolutionaryStrategy(
            self.space, budget=budget,
            population_size=self.population_size,
            tournament_size=self.tournament_size,
            crossover_rate=self.crossover_rate,
            mutation_rate=self.mutation_rate,
            rng=self.rng,
        )

    def run(self, objective: Optional[Objective] = None,
            budget: int = 2, *, evaluator: Optional[Evaluator] = None,
            jobs: int = 1, cache: Optional[ResultCache] = None,
            chunk_size: Optional[int] = None) -> SearchResult:
        """Minimize ``objective`` within ``budget`` oracle calls.

        Memoizes repeated configurations so the budget counts *unique*
        oracle calls, matching how expensive simulators are used.
        """
        return run_search(
            self.strategy(budget),
            _make_evaluator(objective, evaluator, jobs, cache,
                            chunk_size=chunk_size),
        )
