"""A genetic algorithm over discrete design spaces.

The classic black-box alternative to surrogate search: tournament
selection, uniform crossover, single-parameter mutation.  Included both
as an E8 baseline and because GA-style search is what several published
accelerator-DSE systems actually ship.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dse.search import Objective, SearchResult, _record
from repro.dse.space import Config, DesignSpace
from repro.errors import SearchError
from repro.telemetry.tracer import get_tracer


class EvolutionarySearch:
    """Steady-state GA with memoized evaluations.

    Args:
        space: The design space.
        population_size: Individuals per generation.
        tournament_size: Selection pressure.
        crossover_rate: Probability of uniform crossover (else clone).
        mutation_rate: Per-parameter mutation probability.
        seed: RNG seed.
    """

    def __init__(self, space: DesignSpace, population_size: int = 16,
                 tournament_size: int = 3, crossover_rate: float = 0.9,
                 mutation_rate: float = 0.2, seed: int = 0):
        if population_size < 2:
            raise SearchError("population_size must be >= 2")
        if tournament_size < 1:
            raise SearchError("tournament_size must be >= 1")
        if not 0.0 <= crossover_rate <= 1.0:
            raise SearchError("crossover_rate must be in [0, 1]")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SearchError("mutation_rate must be in [0, 1]")
        self.space = space
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.rng = np.random.default_rng(seed)

    def _tournament(self, population: List[Tuple[Config, float]]
                    ) -> Config:
        picks = self.rng.choice(len(population),
                                size=min(self.tournament_size,
                                         len(population)),
                                replace=False)
        best = min((population[int(i)] for i in picks),
                   key=lambda pair: pair[1])
        return dict(best[0])

    def _crossover(self, a: Config, b: Config) -> Config:
        child: Config = {}
        for p in self.space.parameters:
            source = a if self.rng.random() < 0.5 else b
            child[p.name] = source[p.name]
        return child

    def _mutate(self, config: Config) -> Config:
        mutated = dict(config)
        for p in self.space.parameters:
            if self.rng.random() < self.mutation_rate:
                choices = [v for v in p.values if v != mutated[p.name]]
                if choices:
                    mutated[p.name] = choices[
                        int(self.rng.integers(len(choices)))
                    ]
        return mutated

    def run(self, objective: Objective, budget: int) -> SearchResult:
        """Minimize ``objective`` within ``budget`` oracle calls.

        Memoizes repeated configurations so the budget counts *unique*
        oracle calls, matching how expensive simulators are used.
        """
        if budget < 2:
            raise SearchError("budget must be >= 2")
        tracer = get_tracer()
        history: List[Tuple[Config, float]] = []
        trace: List[float] = []
        cache: Dict[int, float] = {}
        best_config: Optional[Config] = None
        best_value = float("inf")

        def evaluate(config: Config) -> float:
            nonlocal best_config, best_value
            key = self.space.index_of(config)
            if key in cache:
                if tracer.enabled:
                    tracer.instant("dse.cache_hit",
                                   ts=float(len(trace)), track="dse",
                                   args={"config": dict(config)})
                return cache[key]
            value = objective(config)
            cache[key] = value
            _record(history, trace, config, value)
            if value < best_value:
                best_value = value
                best_config = config
            return value

        n_init = min(self.population_size, budget, self.space.size)
        population = [
            (config, evaluate(config))
            for config in self.space.sample(
                self.rng, n=n_init, replace=self.space.size < n_init)
        ]

        while len(history) < budget:
            parent_a = self._tournament(population)
            parent_b = self._tournament(population)
            if self.rng.random() < self.crossover_rate:
                child = self._crossover(parent_a, parent_b)
            else:
                child = parent_a
            child = self._mutate(child)
            value = evaluate(child)
            # Steady-state replacement: drop the worst individual.
            population.append((child, value))
            population.sort(key=lambda pair: pair[1])
            population = population[:self.population_size]
            if tracer.enabled:
                tracer.instant(
                    "dse.generation", ts=float(len(trace)),
                    track="dse",
                    args={"population_best": population[0][1],
                          "population_worst": population[-1][1],
                          "unique_evals": len(cache)},
                )
            if len(cache) >= self.space.size:
                break

        assert best_config is not None
        return SearchResult(best_config=best_config,
                            best_value=best_value,
                            evaluations=len(history),
                            history=history, trace=trace)
