"""Surrogate-guided (Bayesian) design-space exploration.

The paper's §3.1 proposal, implemented: random warm-up, then a loop of
fit-GP → maximize expected improvement over a candidate pool → evaluate
the oracle.  Experiment E8 compares its sample-efficiency trace against
random/grid baselines on the UAV co-design space.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.dse.search import Objective, SearchResult, _record
from repro.dse.space import Config, DesignSpace
from repro.dse.surrogate import GaussianProcess, expected_improvement
from repro.errors import SearchError


class SurrogateSearch:
    """GP + expected-improvement search over a discrete design space.

    Args:
        space: The design space.
        n_initial: Random warm-up evaluations before the GP takes over.
        candidate_pool: Candidates scored by EI per iteration (the whole
            space when it is small enough).
        length_scale: GP kernel length scale in encoded space.
        seed: RNG seed.
    """

    def __init__(self, space: DesignSpace, n_initial: int = 8,
                 candidate_pool: int = 256,
                 length_scale: float = 0.4, seed: int = 0):
        if n_initial < 2:
            raise SearchError("n_initial must be >= 2 (GP needs spread)")
        if candidate_pool < 1:
            raise SearchError("candidate_pool must be >= 1")
        self.space = space
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        self.length_scale = length_scale
        self.rng = np.random.default_rng(seed)

    def _candidates(self, visited: Set[int]) -> List[Config]:
        if self.space.size <= self.candidate_pool:
            return [self.space.config_at(i)
                    for i in range(self.space.size)
                    if i not in visited]
        pool: List[Config] = []
        tries = 0
        while len(pool) < self.candidate_pool \
                and tries < 20 * self.candidate_pool:
            index = int(self.rng.integers(self.space.size))
            tries += 1
            if index not in visited:
                pool.append(self.space.config_at(index))
        return pool

    def run(self, objective: Objective, budget: int) -> SearchResult:
        """Minimize ``objective`` within ``budget`` oracle calls."""
        if budget < self.n_initial:
            raise SearchError(
                f"budget {budget} smaller than warm-up {self.n_initial}"
            )
        history: List[Tuple[Config, float]] = []
        trace: List[float] = []
        visited: Set[int] = set()
        xs: List[np.ndarray] = []
        ys: List[float] = []
        best_config: Optional[Config] = None
        best_value = float("inf")

        def evaluate(config: Config) -> None:
            nonlocal best_config, best_value
            value = objective(config)
            _record(history, trace, config, value)
            visited.add(self.space.index_of(config))
            xs.append(self.space.encode(config))
            ys.append(value)
            if value < best_value:
                best_value = value
                best_config = config

        n_warm = min(self.n_initial, budget, self.space.size)
        for config in self.space.sample(
                self.rng, n=n_warm, replace=self.space.size < n_warm):
            evaluate(config)

        while len(history) < budget and len(visited) < self.space.size:
            gp = GaussianProcess(length_scale=self.length_scale)
            gp.fit(np.stack(xs), np.array(ys))
            candidates = self._candidates(visited)
            if not candidates:
                break
            encoded = np.stack([self.space.encode(c)
                                for c in candidates])
            mean, std = gp.predict(encoded)
            ei = expected_improvement(mean, std, best_value)
            pick = candidates[int(np.argmax(ei))]
            evaluate(pick)

        assert best_config is not None
        return SearchResult(best_config=best_config,
                            best_value=best_value,
                            evaluations=len(history),
                            history=history, trace=trace)
