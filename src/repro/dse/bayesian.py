"""Surrogate-guided (Bayesian) design-space exploration.

The paper's §3.1 proposal, implemented: random warm-up, then a loop of
fit-GP → maximize expected improvement over a candidate pool → evaluate
the oracle.  Experiment E8 compares its sample-efficiency trace against
random/grid baselines on the UAV co-design space.

Ask/tell shape: the warm-up sample is proposed as one batch (so a
parallel evaluator prices it concurrently); after that the strategy is
sequential by design — each GP refit needs the previous observation —
so :meth:`ask` proposes exactly one config per iteration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from repro.dse.search import (
    ConfigStrategy,
    Objective,
    SearchResult,
    _make_evaluator,
)
from repro.dse.space import Config, DesignSpace
from repro.dse.surrogate import GaussianProcess, expected_improvement
from repro.engine.cache import ResultCache
from repro.engine.evaluator import EvalResult, Evaluator
from repro.engine.protocol import run_search
from repro.errors import SearchError


class SurrogateStrategy(ConfigStrategy):
    """GP + expected-improvement proposer.

    Args:
        space: The design space.
        budget: Oracle-call budget (includes the warm-up).
        n_initial: Random warm-up evaluations before the GP takes over.
        candidate_pool: Candidates scored by EI per iteration.
        length_scale: GP kernel length scale in encoded space.
        rng: The generator driving warm-up sampling and pool draws.
    """

    def __init__(self, space: DesignSpace, budget: int,
                 n_initial: int = 8, candidate_pool: int = 256,
                 length_scale: float = 0.4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(space)
        if budget < n_initial:
            raise SearchError(
                f"budget {budget} smaller than warm-up {n_initial}"
            )
        self.budget = budget
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        self.length_scale = length_scale
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._visited: Set[int] = set()
        self._xs: List[np.ndarray] = []
        self._ys: List[float] = []
        self._warmed = False
        self._exhausted = False

    def _candidates(self) -> List[Config]:
        if self.space.size <= self.candidate_pool:
            return [self.space.config_at(i)
                    for i in range(self.space.size)
                    if i not in self._visited]
        pool: List[Config] = []
        tries = 0
        while len(pool) < self.candidate_pool \
                and tries < 20 * self.candidate_pool:
            index = int(self.rng.integers(self.space.size))
            tries += 1
            if index not in self._visited:
                pool.append(self.space.config_at(index))
        return pool

    def ask(self) -> List[Config]:
        if not self._warmed:
            n_warm = min(self.n_initial, self.budget, self.space.size)
            return self.space.sample(
                self.rng, n=n_warm,
                replace=self.space.size < n_warm)
        gp = GaussianProcess(length_scale=self.length_scale)
        gp.fit(np.stack(self._xs), np.array(self._ys))
        candidates = self._candidates()
        if not candidates:
            self._exhausted = True
            return []
        encoded = np.stack([self.space.encode(c) for c in candidates])
        mean, std = gp.predict(encoded)
        ei = expected_improvement(mean, std, self.best_value)
        return [candidates[int(np.argmax(ei))]]

    def tell(self, results: Sequence[EvalResult]) -> None:
        self._warmed = True
        for result in results:
            self.ingest(result.candidate, result.value)
            self._visited.add(self.space.index_of(result.candidate))
            self._xs.append(self.space.encode(result.candidate))
            self._ys.append(result.value)

    def finished(self) -> bool:
        if not self._warmed:
            return False
        return (self._exhausted
                or len(self.history) >= self.budget
                or len(self._visited) >= self.space.size)


class SurrogateSearch:
    """GP + expected-improvement search over a discrete design space.

    Args:
        space: The design space.
        n_initial: Random warm-up evaluations before the GP takes over.
        candidate_pool: Candidates scored by EI per iteration (the whole
            space when it is small enough).
        length_scale: GP kernel length scale in encoded space.
        seed: RNG seed.
    """

    def __init__(self, space: DesignSpace, n_initial: int = 8,
                 candidate_pool: int = 256,
                 length_scale: float = 0.4, seed: int = 0):
        if n_initial < 2:
            raise SearchError("n_initial must be >= 2 (GP needs spread)")
        if candidate_pool < 1:
            raise SearchError("candidate_pool must be >= 1")
        self.space = space
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        self.length_scale = length_scale
        self.rng = np.random.default_rng(seed)

    def strategy(self, budget: int) -> SurrogateStrategy:
        """An ask/tell strategy bound to this search's parameters and
        (stateful) RNG."""
        return SurrogateStrategy(
            self.space, budget=budget, n_initial=self.n_initial,
            candidate_pool=self.candidate_pool,
            length_scale=self.length_scale, rng=self.rng,
        )

    def run(self, objective: Optional[Objective] = None,
            budget: int = 8, *, evaluator: Optional[Evaluator] = None,
            jobs: int = 1, cache: Optional[ResultCache] = None,
            chunk_size: Optional[int] = None) -> SearchResult:
        """Minimize ``objective`` within ``budget`` oracle calls."""
        return run_search(
            self.strategy(budget),
            _make_evaluator(objective, evaluator, jobs, cache,
                            chunk_size=chunk_size),
        )
