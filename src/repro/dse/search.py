"""Baseline search strategies: exhaustive grid and uniform random.

These are the honest baselines the surrogate-guided search is judged
against in experiment E8 — §2.2 applies to DSE methods too.

All strategies in :mod:`repro.dse` speak the **ask/tell protocol** of
:mod:`repro.engine`: they propose batches of configurations, a
:class:`~repro.engine.evaluator.Evaluator` prices them (with caching
and optional process-pool parallelism), and the strategy ingests the
priced batch.  The classic entry points (:func:`grid_search`,
:func:`random_search`) remain as thin wrappers that build a strategy
and an evaluator and drive them with
:func:`~repro.engine.protocol.run_search`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.space import Config, DesignSpace
from repro.engine.cache import ResultCache
from repro.engine.evaluator import EvalResult, Evaluator
from repro.engine.protocol import SearchStrategy, run_search
from repro.errors import SearchError
from repro.telemetry.tracer import get_tracer

Objective = Callable[[Config], float]


@dataclass
class SearchResult:
    """Outcome of a search run (minimization).

    Attributes:
        best_config: Best configuration found.
        best_value: Its objective value.
        evaluations: Unique candidate evaluations the search consumed.
            (Counted at the search level: a warm result cache reduces
            *oracle calls* — see ``Evaluator.oracle_calls`` — but not
            this number, so results stay identical across cache states.)
        history: ``(config, value)`` in evaluation order.
        trace: Best-so-far value after each evaluation (for sample-
            efficiency curves).
    """

    best_config: Config
    best_value: float
    evaluations: int
    history: List[Tuple[Config, float]] = field(default_factory=list)
    trace: List[float] = field(default_factory=list)

    def best_after(self, n_evaluations: int) -> float:
        """Best value found within the first ``n_evaluations`` calls."""
        if n_evaluations < 1:
            raise SearchError("n_evaluations must be >= 1")
        index = min(n_evaluations, len(self.trace)) - 1
        return self.trace[index]


def record(history: List[Tuple[Config, float]], trace: List[float],
           config: Config, value: float) -> None:
    """Append one evaluation to a search's ``history``/``trace`` pair.

    This is the single funnel every DSE strategy routes evaluations
    through: ``history`` gets ``(config, value)``, ``trace`` gets the
    running best, and — because there is exactly one funnel — all
    strategies share one per-iteration telemetry emit site (``dse.eval``
    instants and the ``dse.best`` counter on the ``dse`` track, with the
    evaluation index as the timeline, since DSE has no simulated clock).

    Public API: strategies outside :mod:`repro.dse` implementing the
    ask/tell protocol should call this (or subclass
    :class:`ConfigStrategy`, which calls it for them) so their runs plot
    on the same sample-efficiency axes.
    """
    history.append((config, value))
    best = value if not trace else min(trace[-1], value)
    trace.append(best)
    tracer = get_tracer()
    if tracer.enabled:
        iteration = len(trace)
        tracer.instant("dse.eval", ts=float(iteration), track="dse",
                       args={"iteration": iteration,
                             "config": dict(config),
                             "value": value, "best": best})
        tracer.counter("dse.best", ts=float(iteration), value=best,
                       track="dse")


#: Deprecated alias kept for backward compatibility; use :func:`record`.
_record = record


class ConfigStrategy(SearchStrategy):
    """Shared ask/tell bookkeeping for single-objective config searches.

    Owns the ``history``/``trace``/best tracking that every strategy
    needs; subclasses implement :meth:`ask` (and usually extend
    :meth:`tell`) and inherit a :meth:`result` that assembles the
    :class:`SearchResult`.
    """

    def __init__(self, space: DesignSpace):
        self.space = space
        self.history: List[Tuple[Config, float]] = []
        self.trace: List[float] = []
        self.best_config: Optional[Config] = None
        self.best_value = math.inf

    def ingest(self, config: Config, value: float) -> None:
        """Record one priced configuration (history, trace, best)."""
        record(self.history, self.trace, config, value)
        if value < self.best_value:
            self.best_value = value
            self.best_config = config

    def tell(self, results: Sequence[EvalResult]) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            for result in results:
                self.ingest(result.candidate, result.value)
            return
        # Tracer off: inline record()'s bookkeeping (identical history,
        # trace, and best-so-far — the skipped branch is exactly the
        # telemetry emit), so funnel screens ingesting tens of
        # thousands of cheap results don't pay three calls per result.
        history, trace = self.history, self.trace
        running = trace[-1] if trace else None
        best_value, best_config = self.best_value, self.best_config
        for result in results:
            value = result.value
            history.append((result.candidate, value))
            # min(running, value), with record()'s first-entry rule
            # (the first value seeds the trace unconditionally).
            if running is None or value < running:
                running = value
            trace.append(running)
            if value < best_value:
                best_value = value
                best_config = result.candidate
        self.best_value = best_value
        self.best_config = best_config

    def result(self) -> SearchResult:
        if self.best_config is None:
            raise SearchError("search finished without any evaluation")
        return SearchResult(best_config=self.best_config,
                            best_value=self.best_value,
                            evaluations=len(self.history),
                            history=self.history, trace=self.trace)


class GridStrategy(ConfigStrategy):
    """Enumerate the space in index order (optionally budget-capped).

    Args:
        space: The design space.
        budget: Evaluation cap (full enumeration when ``None``).
        batch_size: Candidates proposed per :meth:`ask` (the whole
            remaining budget when ``None`` — grid points are
            independent, so the largest batches parallelize best).
    """

    def __init__(self, space: DesignSpace, budget: Optional[int] = None,
                 batch_size: Optional[int] = None):
        super().__init__(space)
        self.limit = space.size if budget is None \
            else min(budget, space.size)
        if self.limit < 1:
            raise SearchError("budget must allow >= 1 evaluation")
        if batch_size is not None and batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        self.batch_size = batch_size if batch_size is not None \
            else self.limit
        self._next_index = 0

    def ask(self) -> List[Config]:
        end = min(self._next_index + self.batch_size, self.limit)
        batch = [self.space.config_at(i)
                 for i in range(self._next_index, end)]
        self._next_index = end
        return batch

    def finished(self) -> bool:
        return len(self.history) >= self.limit


class RandomStrategy(ConfigStrategy):
    """Uniform random sampling without replacement (when feasible).

    The full sample is drawn up front from the seeded RNG, so the
    proposed sequence — and therefore the result — is independent of
    batching, caching, and parallelism.
    """

    def __init__(self, space: DesignSpace, budget: int, seed: int = 0,
                 batch_size: Optional[int] = None):
        super().__init__(space)
        if budget < 1:
            raise SearchError("budget must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        rng = np.random.default_rng(seed)
        self._configs = space.sample(rng, n=budget,
                                     replace=budget > space.size)
        self.batch_size = batch_size if batch_size is not None \
            else len(self._configs)
        self._next_index = 0

    def ask(self) -> List[Config]:
        end = min(self._next_index + self.batch_size,
                  len(self._configs))
        batch = self._configs[self._next_index:end]
        self._next_index = end
        return batch

    def finished(self) -> bool:
        return len(self.history) >= len(self._configs)


def _make_evaluator(objective: Optional[Objective],
                    evaluator: Optional[Evaluator], jobs: int,
                    cache: Optional[ResultCache], seed: int = 0,
                    chunk_size: Optional[int] = None) -> Evaluator:
    """Resolve the wrapper-call convention: an explicit evaluator wins;
    otherwise one is built around the given objective."""
    if evaluator is not None:
        return evaluator
    if objective is None:
        raise SearchError("pass an objective or an evaluator")
    return Evaluator(objective, jobs=jobs, cache=cache, seed=seed,
                     chunk_size=chunk_size)


def grid_search(space: DesignSpace, objective: Optional[Objective] = None,
                budget: Optional[int] = None, *,
                evaluator: Optional[Evaluator] = None, jobs: int = 1,
                cache: Optional[ResultCache] = None,
                chunk_size: Optional[int] = None) -> SearchResult:
    """Enumerate the space in index order (optionally budget-capped)."""
    strategy = GridStrategy(space, budget=budget)
    return run_search(strategy,
                      _make_evaluator(objective, evaluator, jobs, cache,
                                      chunk_size=chunk_size))


def random_search(space: DesignSpace,
                  objective: Optional[Objective] = None,
                  budget: int = 1, seed: int = 0, *,
                  evaluator: Optional[Evaluator] = None, jobs: int = 1,
                  cache: Optional[ResultCache] = None,
                  chunk_size: Optional[int] = None) -> SearchResult:
    """Uniform random sampling without replacement (when feasible)."""
    strategy = RandomStrategy(space, budget=budget, seed=seed)
    return run_search(strategy,
                      _make_evaluator(objective, evaluator, jobs, cache,
                                      seed=seed, chunk_size=chunk_size))
