"""Baseline search strategies: exhaustive grid and uniform random.

These are the honest baselines the surrogate-guided search is judged
against in experiment E8 — §2.2 applies to DSE methods too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dse.space import Config, DesignSpace
from repro.errors import SearchError
from repro.telemetry.tracer import get_tracer

Objective = Callable[[Config], float]


@dataclass
class SearchResult:
    """Outcome of a search run (minimization).

    Attributes:
        best_config: Best configuration found.
        best_value: Its objective value.
        evaluations: Oracle calls consumed.
        history: ``(config, value)`` in evaluation order.
        trace: Best-so-far value after each evaluation (for sample-
            efficiency curves).
    """

    best_config: Config
    best_value: float
    evaluations: int
    history: List[Tuple[Config, float]] = field(default_factory=list)
    trace: List[float] = field(default_factory=list)

    def best_after(self, n_evaluations: int) -> float:
        """Best value found within the first ``n_evaluations`` calls."""
        if n_evaluations < 1:
            raise SearchError("n_evaluations must be >= 1")
        index = min(n_evaluations, len(self.trace)) - 1
        return self.trace[index]


def _record(history: List[Tuple[Config, float]], trace: List[float],
            config: Config, value: float) -> None:
    history.append((config, value))
    best = value if not trace else min(trace[-1], value)
    trace.append(best)
    # Every search strategy funnels oracle calls through here, so this
    # one emit site gives all of them per-iteration telemetry.  The
    # timeline is the evaluation index (DSE has no simulated clock).
    tracer = get_tracer()
    if tracer.enabled:
        iteration = len(trace)
        tracer.instant("dse.eval", ts=float(iteration), track="dse",
                       args={"iteration": iteration,
                             "config": dict(config),
                             "value": value, "best": best})
        tracer.counter("dse.best", ts=float(iteration), value=best,
                       track="dse")


def grid_search(space: DesignSpace, objective: Objective,
                budget: Optional[int] = None) -> SearchResult:
    """Enumerate the space in index order (optionally budget-capped)."""
    limit = space.size if budget is None else min(budget, space.size)
    if limit < 1:
        raise SearchError("budget must allow >= 1 evaluation")
    history: List[Tuple[Config, float]] = []
    trace: List[float] = []
    best_config: Optional[Config] = None
    best_value = float("inf")
    for index in range(limit):
        config = space.config_at(index)
        value = objective(config)
        _record(history, trace, config, value)
        if value < best_value:
            best_value = value
            best_config = config
    assert best_config is not None
    return SearchResult(best_config=best_config, best_value=best_value,
                        evaluations=limit, history=history, trace=trace)


def random_search(space: DesignSpace, objective: Objective,
                  budget: int, seed: int = 0) -> SearchResult:
    """Uniform random sampling without replacement (when feasible)."""
    if budget < 1:
        raise SearchError("budget must be >= 1")
    rng = np.random.default_rng(seed)
    replace = budget > space.size
    configs = space.sample(rng, n=budget, replace=replace)
    history: List[Tuple[Config, float]] = []
    trace: List[float] = []
    best_config: Optional[Config] = None
    best_value = float("inf")
    for config in configs:
        value = objective(config)
        _record(history, trace, config, value)
        if value < best_value:
            best_value = value
            best_config = config
    assert best_config is not None
    return SearchResult(best_config=best_config, best_value=best_value,
                        evaluations=len(configs), history=history,
                        trace=trace)
