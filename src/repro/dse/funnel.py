"""Multi-fidelity screening funnel: cheap tiers kill, the top tier pays.

The repo has three evaluators of wildly different cost for the same
candidates — closed-form SoA batch pricing (~80k cands/s), closed-form
fleet rollouts (~100k/s), and the full closed-loop DES mission (~4.5k/s
serial) — but classic strategies pay full price for every candidate.
:class:`FunnelStrategy` threads an inner search through the objective's
declared fidelity ladder (:func:`~repro.engine.protocol.fidelity_tiers`)
instead:

1. **Screen** — the inner strategy proposes candidates as usual, but
   they are priced at the *cheapest* tier; the inner strategy steers on
   that cheap signal.  A ``budget`` caps how many candidates the screen
   consumes.
2. **Gate** — between consecutive tiers a :class:`PromotionGate` keeps
   the top-k% (or everything under a score threshold), optionally
   capped by a per-tier ``budget``.  Everyone else is killed without
   ever touching the costlier tier.
3. **Promote** — survivors are re-priced at the next tier, and so on up
   the ladder.  Only top-tier evaluations enter the search history /
   best-so-far trace, so the funnel's :class:`SearchResult` has honest
   full-fidelity semantics.

Determinism: gates see the *complete* result set of a tier (the
Evaluator chunks internally, so ``chunk_size`` cannot change who
survives), candidates are deduplicated by content address, and top-k
selection uses a stable sort keyed ``(value, arrival order)`` — tier
values are bit-identical across ``jobs``/chunking by the engine
contract, so survivor sets are too.

An empty survivor set never stalls the funnel: a gate that kills
everyone is forced to promote the single best candidate (flagged in
:meth:`FunnelStrategy.tier_report`), so at least one candidate always
reaches full fidelity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dse.search import ConfigStrategy, RandomStrategy, record
from repro.dse.space import Config, DesignSpace
from repro.engine.cache import ResultCache
from repro.engine.evaluator import EvalResult, Evaluator
from repro.engine.protocol import (FidelityTier, SearchStrategy,
                                   fidelity_tiers, run_search)
from repro.errors import SearchError

__all__ = ["FunnelConfig", "FunnelStrategy", "PromotionGate",
           "build_inner", "default_gates", "funnel_search",
           "INNER_STRATEGIES"]

#: Inner strategies the spec/CLI layer may name (grown as needed;
#: any ask/tell strategy works programmatically).
INNER_STRATEGIES = ("random", "grid", "evolutionary")


@dataclass(frozen=True)
class PromotionGate:
    """Who survives the boundary between two adjacent tiers.

    Exactly one of ``top_fraction`` / ``threshold`` selects the rule:

    - ``top_fraction``: keep the best ``ceil(fraction * n)`` candidates
      (minimization; ties broken by arrival order, so the decision is
      deterministic across jobs/chunking).
    - ``threshold``: keep candidates whose tier score is ``<=`` the
      threshold.

    ``budget`` additionally caps how many survivors are promoted into
    the next tier (best-first), bounding that tier's cost outright.
    """

    top_fraction: Optional[float] = None
    threshold: Optional[float] = None
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        chosen = [rule for rule in (self.top_fraction, self.threshold)
                  if rule is not None]
        if len(chosen) != 1:
            raise SearchError(
                "PromotionGate needs exactly one of top_fraction /"
                f" threshold (got top_fraction={self.top_fraction!r},"
                f" threshold={self.threshold!r})")
        if self.top_fraction is not None \
                and not 0.0 < self.top_fraction <= 1.0:
            raise SearchError(
                f"top_fraction must be in (0, 1] (got"
                f" {self.top_fraction!r})")
        if self.budget is not None and self.budget < 1:
            raise SearchError(
                f"gate budget must be >= 1 (got {self.budget!r})")


def default_gates(boundaries: int) -> Tuple[PromotionGate, ...]:
    """Default promotion gates for a ladder with ``boundaries`` + 1
    tiers, sized so roughly 1% of screened candidates reach the top:
    one boundary keeps 1%; two keep 5% then 20%; deeper ladders split
    1% geometrically across the boundaries.
    """
    if boundaries < 0:
        raise SearchError("boundaries must be >= 0")
    if boundaries == 0:
        return ()
    if boundaries == 1:
        return (PromotionGate(top_fraction=0.01),)
    if boundaries == 2:
        return (PromotionGate(top_fraction=0.05),
                PromotionGate(top_fraction=0.2))
    fraction = 0.01 ** (1.0 / boundaries)
    return tuple(PromotionGate(top_fraction=fraction)
                 for _ in range(boundaries))


@dataclass(frozen=True)
class FunnelConfig:
    """Spec-facing funnel knobs (the strategy itself takes objects).

    Attributes:
        inner: Name of the inner screening strategy (one of
            :data:`INNER_STRATEGIES`).
        gates: Promotion gates, one per tier boundary; ``None`` means
            :func:`default_gates` for the objective's ladder depth.
    """

    inner: str = "random"
    gates: Optional[Tuple[PromotionGate, ...]] = None

    def __post_init__(self) -> None:
        if self.inner not in INNER_STRATEGIES:
            raise SearchError(
                f"unknown inner strategy {self.inner!r};"
                f" choose from {INNER_STRATEGIES}")
        if self.gates is not None:
            object.__setattr__(self, "gates", tuple(self.gates))


def build_inner(name: str, space: DesignSpace, budget: int,
                seed: int = 0) -> ConfigStrategy:
    """Construct a named inner strategy sized for the screen budget."""
    if name == "random":
        return RandomStrategy(space, budget=budget, seed=seed)
    if name == "grid":
        from repro.dse.search import GridStrategy
        return GridStrategy(space, budget=budget)
    if name == "evolutionary":
        import numpy as np
        from repro.dse.evolutionary import EvolutionaryStrategy
        return EvolutionaryStrategy(
            space, budget=max(budget, 2),
            rng=np.random.default_rng(seed))
    raise SearchError(f"unknown inner strategy {name!r};"
                      f" choose from {INNER_STRATEGIES}")


class FunnelStrategy(SearchStrategy):
    """Tiered screening on the ask/tell protocol.

    Args:
        tiers: The fidelity ladder, cheapest first (typically
            ``fidelity_tiers(objective)``); tier names must match what
            the driving Evaluator's objective declares.
        inner: Any ask/tell strategy; it proposes screen candidates and
            is told the *tier-0* results (the cheap signal it steers
            on).
        gates: One :class:`PromotionGate` per tier boundary
            (``len(tiers) - 1``); defaults to :func:`default_gates`.
        budget: Cap on candidates consumed by the tier-0 screen
            (``None`` = until the inner strategy finishes).

    Drive it with :func:`~repro.engine.protocol.run_search`, which
    consults :meth:`ask_tier` to price each batch at the right tier.
    The :meth:`result` is built from **top-tier evaluations only**.
    """

    def __init__(self, tiers: Sequence[Union[FidelityTier, str]],
                 inner: SearchStrategy, *,
                 gates: Optional[Sequence[PromotionGate]] = None,
                 budget: Optional[int] = None):
        names: List[str] = []
        for tier in tiers:
            names.append(tier.name if isinstance(tier, FidelityTier)
                         else str(tier))
        if not names:
            raise SearchError("funnel needs at least one tier")
        if len(set(names)) != len(names):
            raise SearchError(f"duplicate tier names: {names}")
        resolved_gates = tuple(gates) if gates is not None \
            else default_gates(len(names) - 1)
        if len(resolved_gates) != len(names) - 1:
            raise SearchError(
                f"need {len(names) - 1} gate(s) for {len(names)}"
                f" tier(s), got {len(resolved_gates)}")
        if budget is not None and budget < 1:
            raise SearchError(f"budget must be >= 1 (got {budget})")
        self.tier_names = tuple(names)
        self.inner = inner
        self.gates = resolved_gates
        self.screen_budget = budget
        # Stage s means "currently pricing tier s"; stage == len(tiers)
        # means done.  Stage 0 proxies the inner strategy.
        self._stage = 0
        self._screened = 0
        # Deduped (candidate, value) pool for the stage in flight,
        # in arrival order; keys seen at the current stage.
        self._pool: List[Tuple[Config, float]] = []
        self._seen: set = set()
        # Candidates promoted into the current stage, awaiting ask().
        self._incoming: Optional[List[Config]] = None
        self._asked_tier = self.tier_names[0]
        # Telemetry: per tier name -> evaluated / survivors / forced.
        self._evaluated: Dict[str, int] = {n: 0 for n in self.tier_names}
        self._survivors: Dict[str, int] = {n: 0 for n in self.tier_names}
        self._forced: Dict[str, bool] = {n: False for n in self.tier_names}
        # Top-tier (full-fidelity) bookkeeping.
        self.history: List[Tuple[Config, float]] = []
        self.trace: List[float] = []
        self.best_config: Optional[Config] = None
        self.best_value = math.inf

    # -- protocol ------------------------------------------------------

    def ask_tier(self) -> str:
        """The fidelity tier the most recent :meth:`ask` batch should
        be priced at (consulted by ``run_search`` after each ask)."""
        return self._asked_tier

    def ask(self) -> List[Config]:
        if self.finished():
            return []
        if self._stage == 0:
            batch = self._ask_screen()
            if batch:
                return batch
            if len(self.tier_names) == 1:
                # Degenerate funnel: the screen is the top tier and the
                # inner has nothing further; result() drains the pool.
                return []
            # Screen over (inner done or budget spent): gate tier 0.
            self._advance()
            if self.finished():
                return []
        assert self._incoming is not None
        batch, self._incoming = self._incoming, []
        self._asked_tier = self.tier_names[self._stage]
        return batch

    def _ask_screen(self) -> List[Config]:
        self._asked_tier = self.tier_names[0]
        if self.screen_budget is not None \
                and self._screened >= self.screen_budget:
            return []
        if self.inner.finished():
            return []
        batch = list(self.inner.ask())
        if self.screen_budget is not None:
            room = self.screen_budget - self._screened
            batch = batch[:room]
        self._screened += len(batch)
        return batch

    def tell(self, results: Sequence[EvalResult]) -> None:
        stage_name = self.tier_names[self._stage]
        self._evaluated[stage_name] += len(results)
        if self._stage == 0:
            # The inner strategy steers on the cheap tier-0 signal.
            self.inner.tell(results)
        for result in results:
            if result.key in self._seen:
                continue
            self._seen.add(result.key)
            self._pool.append((result.candidate, result.value))
        if self._stage == 0:
            return
        if self._stage == len(self.tier_names) - 1:
            for candidate, value in self._pool:
                self._ingest_top(candidate, value)
            self._pool = []
            self._stage = len(self.tier_names)
        elif not self._incoming:
            # Mid-tier results are complete (one ask per mid tier):
            # gate them into the next stage.
            self._advance()

    def _ingest_top(self, config: Config, value: float) -> None:
        record(self.history, self.trace, config, value)
        self._survivors[self.tier_names[-1]] += 1
        if value < self.best_value:
            self.best_value = value
            self.best_config = config

    def _advance(self) -> None:
        """Apply the gate below the next tier and stage its survivors."""
        stage_name = self.tier_names[self._stage]
        pool, self._pool, self._seen = self._pool, [], set()
        if not pool:
            if self._stage == 0:
                raise SearchError(
                    "funnel screen produced no candidates (inner"
                    " strategy asked nothing)")
            self._stage = len(self.tier_names)
            return
        gate = self.gates[self._stage]
        survivors, forced = _apply_gate(gate, pool)
        self._survivors[stage_name] = len(survivors)
        self._forced[stage_name] = forced
        self._incoming = survivors
        self._stage += 1
        self._asked_tier = self.tier_names[self._stage]

    def finished(self) -> bool:
        if self._stage >= len(self.tier_names):
            return True
        if len(self.tier_names) == 1:
            # Degenerate single-tier funnel: the screen *is* the top
            # tier, so finishing the screen finishes the search.
            return (self.inner.finished()
                    or (self.screen_budget is not None
                        and self._screened >= self.screen_budget))
        return False

    def result(self) -> Any:
        from repro.dse.search import SearchResult
        if len(self.tier_names) == 1:
            # Single-tier: history lives in the pool (screen == top).
            for candidate, value in self._pool:
                self._ingest_top(candidate, value)
            self._pool = []
            self._stage = len(self.tier_names)
        if self.best_config is None:
            raise SearchError(
                "funnel finished without any top-tier evaluation")
        return SearchResult(best_config=self.best_config,
                            best_value=self.best_value,
                            evaluations=len(self.history),
                            history=self.history, trace=self.trace)

    # -- telemetry -----------------------------------------------------

    def tier_report(self) -> List[Dict[str, Any]]:
        """Per-tier survivor counts and kill rates, cheapest first.

        Each row: ``tier``, ``evaluated`` (unique + repeat tells),
        ``survivors`` (promoted past this tier's gate; for the top tier,
        candidates that completed full fidelity), ``killed``,
        ``kill_rate``, and ``forced`` (True when an empty survivor set
        forced promotion of the single best candidate).
        """
        rows = []
        for name in self.tier_names:
            evaluated = self._evaluated[name]
            survivors = self._survivors[name]
            killed = max(evaluated - survivors, 0)
            rows.append({
                "tier": name,
                "evaluated": evaluated,
                "survivors": survivors,
                "killed": killed,
                "kill_rate": killed / evaluated if evaluated else 0.0,
                "forced": self._forced[name],
            })
        return rows


def _apply_gate(gate: PromotionGate,
                pool: Sequence[Tuple[Config, float]]
                ) -> Tuple[List[Config], bool]:
    """Survivors of ``gate`` over ``pool``, best-first; the bool flags
    a forced promotion (everyone died, best candidate promoted anyway).
    """
    # Stable argsort == sorted(range(n), key=(value, index)): NumPy's
    # stable kind preserves arrival order among ties, and (unlike
    # Python sorted) costs O(n) Python work on a 100k-candidate pool.
    values = np.fromiter((value for _, value in pool),
                         dtype=np.float64, count=len(pool))
    order = np.argsort(values, kind="stable").tolist()
    if gate.threshold is not None:
        keep = [i for i in order if pool[i][1] <= gate.threshold]
    else:
        assert gate.top_fraction is not None
        keep = order[:max(math.ceil(gate.top_fraction * len(pool)), 0)]
    if gate.budget is not None:
        keep = keep[:gate.budget]
    forced = not keep
    if forced:
        keep = order[:1]
    return [pool[i][0] for i in keep], forced


def funnel_search(space: DesignSpace, objective: Any = None,
                  budget: int = 1, seed: int = 0, *,
                  config: Optional[FunnelConfig] = None,
                  evaluator: Optional[Evaluator] = None, jobs: int = 1,
                  cache: Optional[ResultCache] = None,
                  chunk_size: Optional[int] = None
                  ) -> Tuple[Any, FunnelStrategy]:
    """Run a funnel over ``space`` and return ``(result, strategy)``.

    The strategy is returned alongside the
    :class:`~repro.dse.search.SearchResult` so callers can read
    :meth:`FunnelStrategy.tier_report` (the CLI prints it).
    """
    from repro.dse.search import _make_evaluator
    evaluator = _make_evaluator(objective, evaluator, jobs, cache,
                                seed=seed, chunk_size=chunk_size)
    cfg = config if config is not None else FunnelConfig()
    tiers = fidelity_tiers(evaluator.objective)
    gates = cfg.gates if cfg.gates is not None \
        else default_gates(len(tiers) - 1)
    inner = build_inner(cfg.inner, space, budget, seed)
    strategy = FunnelStrategy(tiers, inner, gates=gates, budget=budget)
    result = run_search(strategy, evaluator)
    return result, strategy
