"""Built-in benchmark registry entries.

Each entry wraps the measurement core of one ``benchmarks/`` script as
a registered, size-parameterized runner.  The scripts keep their pytest
smoke tests (CI contract checks) and their ``__main__`` sweeps, but the
measurement itself lives here so ``repro bench``, the scripts, and the
ledger all run the *same* code.

Runners embed the correctness assertions of their source scripts
(batch == scalar identity, exact fleet-result equality), so every
benchmark run doubles as a contract check — a speedup measured over
wrong results never reaches the ledger.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List

from repro.bench.registry import Benchmark, Metric, register_benchmark

# -- batch pricing -----------------------------------------------------


def _pricing_population(n: int) -> List[dict]:
    from repro.dse.objectives import codesign_space

    space = codesign_space()
    return [space.config_at(i % space.size) for i in range(n)]


def run_batch_pricing(size: int) -> Dict[str, float]:
    """Scalar-vs-SoA population pricing (see S3 / PR 4)."""
    from repro.dse.objectives import suite_objective

    warm = _pricing_population(4)
    assert suite_objective.evaluate_batch(warm) == \
        [suite_objective(config) for config in warm]
    configs = _pricing_population(size)
    started = time.perf_counter()
    scalar_values = [suite_objective(config) for config in configs]
    scalar_per_s = size / (time.perf_counter() - started)
    started = time.perf_counter()
    batch_values = suite_objective.evaluate_batch(configs)
    batch_per_s = size / (time.perf_counter() - started)
    assert batch_values == scalar_values, (
        f"batch values diverged from scalar at n={size}")
    return {
        "scalar_per_s": round(scalar_per_s, 1),
        "batch_per_s": round(batch_per_s, 1),
        "speedup": round(batch_per_s / scalar_per_s, 2),
    }


# -- fleet missions ----------------------------------------------------

_FLEET_CONFIG = None
_FLEET_COURSES: Dict = {}
_FLEET_ARENA = None


def _fleet_arena():
    """The bench arena (module-cached): sweep sizes share buffers, so
    large populations measure the steady-state reuse path, not cold
    allocation."""
    global _FLEET_ARENA
    if _FLEET_ARENA is None:
        from repro.engine.arena import BatchArena

        _FLEET_ARENA = BatchArena()
    return _FLEET_ARENA


def _fleet_config():
    """The bench scenario: compact two-lap patrol, shared world + plan
    (module-cached so every size reuses one course)."""
    global _FLEET_CONFIG
    if _FLEET_CONFIG is None:
        import numpy as np

        from repro.kernels.planning.occupancy import CircleWorld
        from repro.system.mission import MissionConfig

        world = CircleWorld.random(
            dim=2, n_obstacles=24, extent=60.0,
            radius_range=(1.0, 2.5), seed=5, keep_corners_free=3.0)
        _FLEET_CONFIG = MissionConfig(
            world=world,
            start=np.array([1.0, 1.0]),
            goal=np.array([58.0, 58.0]),
            laps=2,
        )
    return _FLEET_CONFIG


def _fleet_population(n: int):
    from repro.hw.catalog import uav_compute_tiers
    from repro.system.fleet import FleetStudy

    tiers = uav_compute_tiers()
    trials = (n + len(tiers) - 1) // len(tiers)
    study = FleetStudy(config=_fleet_config(), tiers=tiers,
                       trials=trials, seed=0)
    return study.rollouts()[:n]


#: Scalar rollouts in the baseline measurement sample.  The scalar
#: loop's rate is size-independent by construction (one Python loop
#: per rollout, no shared state), so it is measured ONCE per process —
#: warmed, best-of-``_BATCH_REPS``, GC paused — and shared by every
#: sweep size.  Re-measuring per size would (a) price small sizes on a
#: cold interpreter, overstating their speedup, and (b) inject an
#: uncorrelated noise term into a ratio whose *shape across sizes* is
#: the monotonicity instrument.  Result equality against the scalar
#: path is still asserted per size over this sample.
_SCALAR_SAMPLE = 2_000
_BATCH_REPS = 5
_SCALAR_RATE: "float | None" = None


def _scalar_results(sample):
    from repro.system.fleet import ensure_course
    from repro.system.mission import run_mission

    return [run_mission(r.config, r.platform, r.compute_mass_kg,
                        r.compute_power_w,
                        course=ensure_course(r.config, _FLEET_COURSES))
            for r in sample]


def _scalar_rate() -> float:
    """Best-of-reps scalar rollouts/s over a warmed fixed-size sample
    (module-cached: one baseline per process, shared by all sizes)."""
    global _SCALAR_RATE
    if _SCALAR_RATE is None:
        sample = _fleet_population(_SCALAR_SAMPLE)
        _scalar_results(sample)                      # warm interpreter
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            best = 0.0
            for _ in range(_BATCH_REPS):
                started = time.perf_counter()
                _scalar_results(sample)
                best = max(best, len(sample)
                           / (time.perf_counter() - started))
        finally:
            if gc_was_enabled:
                gc.enable()
        _SCALAR_RATE = best
    return _SCALAR_RATE


def run_fleet_missions(size: int) -> Dict[str, float]:
    """Scalar-vs-vectorized mission rollouts (see S4 / PR 5), plus the
    engine's exact bytes-allocated-per-rollout — the allocation-tax
    instrument (ROADMAP / EXPERIMENTS S5).

    The batch path runs through a warmed :class:`BatchArena` (S6): the
    measured rate is the steady-state, zero-allocation reuse path a
    Monte Carlo sweep or ask/tell loop actually sits on, which is what
    keeps the speedup monotone instead of collapsing past ~10k
    rollouts.  Timed regions run with the cyclic GC paused
    (``timeit``-style hygiene; collector scheduling scales with live
    object count, which would bill the 100k point for heap size, not
    work), and the scalar denominator comes from :func:`_scalar_rate`
    so every size divides by the same baseline."""
    from repro.system.fleet import run_fleet

    cache = _FLEET_COURSES
    scalar_per_s = _scalar_rate()
    rollouts = _fleet_population(size)
    sample = rollouts[:min(size, _SCALAR_SAMPLE)]
    arena = _fleet_arena()
    run_fleet(rollouts, course_cache=cache, arena=arena)  # warm arena
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        batch_per_s = 0.0
        for _ in range(_BATCH_REPS):
            started = time.perf_counter()
            fleet = run_fleet(rollouts, course_cache=cache,
                              arena=arena)
            batch_per_s = max(
                batch_per_s, size / (time.perf_counter() - started))
    finally:
        if gc_was_enabled:
            gc.enable()
    assert list(fleet.results[:len(sample)]) == \
        _scalar_results(sample), (
        f"batch results diverged from scalar at n={size}")
    return {
        "scalar_per_s": round(scalar_per_s, 1),
        "batch_per_s": round(batch_per_s, 1),
        "speedup": round(batch_per_s / scalar_per_s, 2),
        "alloc_bytes_per_rollout": round(
            fleet.alloc_bytes_per_rollout, 1),
    }


# -- arena reuse -------------------------------------------------------

_ARENA_GENERATIONS = 5


def run_arena_reuse(size: int) -> Dict[str, float]:
    """Steady-state arena behaviour over consecutive generations.

    Runs ``_ARENA_GENERATIONS`` fleet generations of ``size`` rollouts
    through one :class:`BatchArena` and certifies the S6 acceptance
    shape: after the first (warm-up) generation the arena performs zero
    buffer growth (``steady_grow_bytes``), the reuse fraction
    approaches 1, and ``alloc_bytes_per_rollout`` stays exactly flat
    across generations (``alloc_flat_ratio`` = max/min; the ±10%
    criterion is gated at the declared threshold)."""
    from repro.engine.arena import BatchArena
    from repro.system.fleet import run_fleet

    cache = _FLEET_COURSES
    rollouts = _fleet_population(size)
    arena = BatchArena()
    per_rollout = []
    grow_after_warmup = 0
    for generation in range(_ARENA_GENERATIONS):
        grows_before = arena.grow_bytes
        fleet = run_fleet(rollouts, course_cache=cache, arena=arena)
        if generation > 0:
            grow_after_warmup += arena.grow_bytes - grows_before
        per_rollout.append(fleet.alloc_bytes_per_rollout)
    flat_ratio = max(per_rollout) / min(per_rollout)
    assert flat_ratio <= 1.1, (
        f"alloc_bytes_per_rollout drifted {flat_ratio:.3f}x across"
        f" {_ARENA_GENERATIONS} reused-arena generations at n={size}")
    stats = arena.stats()
    reuse_frac = stats["reuses"] / (stats["reuses"] + stats["grows"])
    return {
        "alloc_bytes_per_rollout": round(per_rollout[-1], 1),
        "alloc_flat_ratio": round(flat_ratio, 4),
        "steady_grow_bytes": float(grow_after_warmup),
        "reuse_frac": round(reuse_frac, 4),
        "arena_occupancy": round(stats["occupancy"], 4),
    }


# -- engine parallel ---------------------------------------------------

_ENGINE_REPS = 120   # oracle weight: ~30 ms per candidate
_ENGINE_JOBS = 4


def _engine_heavy_objective(candidate):
    """An artificially expensive oracle (module-level: picklable)."""
    from repro.dse.objectives import suite_objective

    value = 0.0
    for _ in range(_ENGINE_REPS):
        value = suite_objective(candidate)
    return value


def run_engine_parallel(size: int) -> Dict[str, float]:
    """Serial-vs-process-pool evaluation of ``size`` heavy candidates
    (see S2 / PR 2); values must be identical."""
    from repro.dse.objectives import codesign_space
    from repro.engine import Evaluator

    space = codesign_space()
    step = max(1, space.size // size)
    candidates = [space.config_at(i * step) for i in range(size)]

    started = time.perf_counter()
    serial = Evaluator(_engine_heavy_objective).map_batch(candidates)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = Evaluator(_engine_heavy_objective,
                         jobs=_ENGINE_JOBS).map_batch(candidates)
    parallel_s = time.perf_counter() - started
    assert [r.value for r in serial] == [r.value for r in parallel]
    return {
        "serial_per_s": round(size / serial_s, 2),
        "parallel_per_s": round(size / parallel_s, 2),
        "speedup": round(serial_s / parallel_s, 2),
    }


# -- observability overhead --------------------------------------------

_OBS_REPS = 3


def _obs_graph():
    from repro.core.profile import WorkloadProfile
    from repro.core.workload import Stage, TaskGraph

    def profile(name):
        return WorkloadProfile(name=name, flops=1e6, bytes_read=1e4,
                               bytes_written=1e4,
                               working_set_bytes=1e4)

    return TaskGraph("obs-bench", [
        Stage("sense", profile("sense"), rate_hz=200.0,
              output_bytes=1e3),
        Stage("track", profile("track"), deps=("sense",),
              output_bytes=1e3),
        Stage("plan", profile("plan"), deps=("track",),
              output_bytes=1e3),
        Stage("act", profile("act"), deps=("plan",)),
    ])


def _obs_run_once(duration_s: float, tracer, profiled: bool = False):
    from repro.system.pipeline import PipelineSimulation

    graph = _obs_graph()
    service = {"sense": 1e-3, "track": 2e-3, "plan": 3e-3, "act": 1e-3}
    simulation = PipelineSimulation(graph, service, tracer=tracer)
    started = time.perf_counter()
    if profiled:
        with tracer.profile_span("pipeline.run", track="bench"):
            result = simulation.run(duration_s)
    else:
        result = simulation.run(duration_s)
    return time.perf_counter() - started, result


def run_obs_overhead(size: int) -> Dict[str, float]:
    """Pipeline-sim throughput: tracing off vs. on vs. on-with-profiling
    (``size`` = simulated seconds).  Certifies the telemetry budgets:
    the disabled path must be ~free, and the profiled path's cost must
    stay bounded (see bench_obs_overhead.py for the documented budgets).
    """
    from repro.telemetry.profiling import SpanProfiler
    from repro.telemetry.tracer import Tracer

    duration = float(size)
    _obs_run_once(duration, None)  # warmup
    off, on, profiled = [], [], []
    completed = 0
    for _ in range(_OBS_REPS):
        elapsed, result = _obs_run_once(duration, None)
        off.append(elapsed)
        completed = result.samples_completed
        elapsed, on_result = _obs_run_once(duration, Tracer())
        on.append(elapsed)
        assert on_result.samples_completed == completed
        tracer = Tracer()
        tracer.profiler = SpanProfiler(cpu=True, top_n=5)
        elapsed, prof_result = _obs_run_once(duration, tracer,
                                             profiled=True)
        profiled.append(elapsed)
        assert prof_result.samples_completed == completed
    off_s, on_s, profiled_s = min(off), min(on), min(profiled)
    return {
        "samples_per_s": round(completed / off_s, 1),
        "on_off_ratio": round(on_s / off_s, 3),
        "profiled_off_ratio": round(profiled_s / off_s, 3),
    }


# -- multi-fidelity funnel DSE ----------------------------------------


def run_funnel_dse(size: int) -> Dict[str, float]:
    """Funnel search vs. single-fidelity full-DES search (S7).

    Both sides consume the *same* seeded proposal stream over the
    million-point ``codesign_xl`` space against a mission objective
    flying a high-resolution patrol (four laps at a 10 ms integration
    step — the fidelity regime the funnel is for; the screen proxy is
    closed-form, so its cost does not grow with DES resolution).  The
    baseline prices every candidate at the top tier (the scalar
    closed-loop DES — what a single-fidelity search must pay); the
    funnel screens at batch-pricing fidelity, promotes through the
    fleet tier, and pays DES only for top-tier survivors.  The run
    also certifies the tier-equivalence contract: a fresh evaluator
    sharing the funnel's cache must answer the best config from cache
    with zero oracle calls.
    """
    from repro.dse.funnel import funnel_search
    from repro.dse.objectives import (MissionObjective,
                                      codesign_space_xl,
                                      mission_setting)
    from repro.dse.search import RandomStrategy
    from repro.engine.cache import ResultCache
    from repro.engine.evaluator import Evaluator

    seed = 7
    space = codesign_space_xl()
    objective = MissionObjective(
        mission_setting(laps=4, time_step_s=0.01))
    # Warm the mission setting (course planning, frame SoA) so neither
    # timed side pays one-off setup.
    probe = space.config_at(0)
    objective(probe)
    objective.pricing_screen(probe)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Baseline: the identical proposal stream, every candidate at
        # full fidelity (tier="mission" forces the scalar DES path).
        strategy = RandomStrategy(space, budget=size, seed=seed)
        base_eval = Evaluator(objective)
        started = time.perf_counter()
        while not strategy.finished():
            batch = strategy.ask()
            if not batch:
                break
            strategy.tell(base_eval.map_batch(batch, tier="mission"))
        baseline = strategy.result()
        baseline_s = time.perf_counter() - started

        cache = ResultCache()
        started = time.perf_counter()
        result, funnel = funnel_search(
            space, objective, budget=size, seed=seed,
            cache=cache)
        funnel_s = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()

    # Tier-equivalence replay: top-tier funnel entries are legacy-keyed.
    replay = Evaluator(objective, cache=cache)
    (hit,) = replay.map_batch([result.best_config])
    assert hit.cached and replay.oracle_calls == 0, \
        "funnel-primed cache did not replay under direct evaluation"
    assert hit.value == result.best_value

    report = funnel.tier_report()
    screened = report[0]["evaluated"]
    reached = report[-1]["evaluated"]
    # >= 0 by construction: the funnel's top-tier evaluations are a
    # subset of the baseline's, priced identically.
    regret = result.best_value - baseline.best_value
    return {
        "full_fidelity_per_s": round(size / baseline_s, 1),
        "funnel_per_s": round(size / funnel_s, 1),
        "speedup": round(baseline_s / funnel_s, 2),
        "top_tier_frac": round(reached / screened, 4),
        "screen_regret": round(regret, 4),
    }


# -- serve coalescing --------------------------------------------------

_SERVE_CLIENTS = 8
_SERVE_REPS = 3


def _serve_population(n: int) -> List[dict]:
    from repro.dse.objectives import codesign_space_xl

    space = codesign_space_xl()
    return [space.config_at(i * 997 % space.size) for i in range(n)]


def _serve_daemon(config):
    """An EvalServer on its own event-loop thread (the bench drives it
    with blocking clients, exactly like production traffic)."""
    import asyncio
    import threading

    from repro.serve import EvalServer

    server = EvalServer(config)
    ready = threading.Event()
    box = {}

    def main() -> None:
        async def body() -> None:
            await server.start()
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.run()

        asyncio.run(body())

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    assert ready.wait(30), "bench daemon failed to start"

    def stop() -> None:
        box["loop"].call_soon_threadsafe(server.request_stop)
        thread.join(60)

    return server, stop


def _serve_traffic(candidates, clients: int, no_coalesce: bool,
                   max_batch: int):
    """One traffic wave: ``clients`` threads each pipeline their share
    as single-candidate requests (the sub-critical shape coalescing
    exists for).  Returns (aggregate rate, values, serve stats)."""
    import threading
    import time as _time

    from repro.serve import ServeClient, ServeConfig

    server, stop = _serve_daemon(ServeConfig(
        max_batch=max_batch, max_wait_ms=2000.0,
        max_queue=len(candidates) + 1,
        max_inflight=len(candidates) + 1))
    per_client = len(candidates) // clients
    barrier = threading.Barrier(clients + 1)
    values: Dict[int, List[float]] = {}

    def worker(rank: int) -> None:
        share = candidates[rank * per_client:(rank + 1) * per_client]
        with ServeClient(port=server.port, timeout=600.0) as client:
            messages = [client.submit_message(
                [candidate], tenant=f"bench{rank}",
                no_coalesce=no_coalesce) for candidate in share]
            barrier.wait()
            envelopes = client.pipeline(messages)
        assert all(envelope["ok"] for envelope in envelopes)
        values[rank] = [envelope["results"][0]["value"]
                        for envelope in envelopes]

    threads = [threading.Thread(target=worker, args=(rank,))
               for rank in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = _time.perf_counter()
    for thread in threads:
        thread.join()
    wall = _time.perf_counter() - started
    stats = server.stats()["serve"]
    stop()
    flat = [value for rank in sorted(values)
            for value in values[rank]]
    return len(candidates) / wall, flat, stats


def run_serve_coalesce(size: int) -> Dict[str, float]:
    """Cross-client batch coalescing vs. per-request pricing.

    ``size`` candidates split over 8 concurrent clients (4 below 1k),
    every candidate its own pipelined request — the sub-critical
    traffic the daemon exists for.  Baseline: the same requests with
    coalescing disabled, so batch size is forced to per-request (1).
    Coalesced: ``max_batch = size`` merges all tenants' misses into
    one full-population flush, triggered by the last candidate parking
    (occupancy, not deadline — the 2 s deadline is a safety net, so a
    scheduling-starved client can never split the batch).  Values must
    be identical in both modes and identical to pricing the population
    directly — the coalescer changes when and with whom candidates are
    priced, never what.
    """
    from repro.dse.objectives import suite_objective

    clients = _SERVE_CLIENTS if size >= 1024 else 4
    candidates = _serve_population(size)
    direct = suite_objective.evaluate_batch(candidates)  # also warms

    baseline_per_s, coalesced_per_s = 0.0, 0.0
    occupancy, coalesced_batches = 0.0, 0.0
    for _ in range(_SERVE_REPS):
        rate, values, _ = _serve_traffic(
            candidates, clients, no_coalesce=True, max_batch=1)
        assert values == direct, (
            f"per-request served values diverged at n={size}")
        baseline_per_s = max(baseline_per_s, rate)
        rate, values, stats = _serve_traffic(
            candidates, clients, no_coalesce=False,
            max_batch=size)
        assert values == direct, (
            f"coalesced served values diverged at n={size}")
        if rate > coalesced_per_s:
            coalesced_per_s = rate
            occupancy = stats["batch_occupancy"]["mean"]
            coalesced_batches = stats["coalesced_batches"]
    assert coalesced_batches >= 1, "no cross-client batch was merged"
    return {
        "baseline_per_s": round(baseline_per_s, 1),
        "coalesced_per_s": round(coalesced_per_s, 1),
        "speedup": round(coalesced_per_s / baseline_per_s, 2),
        "mean_flush_occupancy": round(occupancy, 1),
        # Gated form of occupancy: fraction of the population merged
        # per flush (machine-independent; 1.0 = one full-population
        # flush, the acceptance target 512/1024 = 0.5).
        "occupancy_frac": round(occupancy / size, 3),
        "coalesced_batches": float(coalesced_batches),
    }


# -- registration ------------------------------------------------------

register_benchmark(Benchmark(
    name="batch_pricing",
    description="SoA batch pricing vs. the scalar roofline loop"
                " (bit-identical values; S3)",
    sizes=(10, 100, 1_000, 10_000),
    smoke_sizes=(64,),
    metrics=(
        Metric("scalar_per_s", unit="1/s"),
        Metric("batch_per_s", unit="1/s"),
        Metric("speedup", unit="x", higher_is_better=True, gate=True),
    ),
    runner=run_batch_pricing,
    tags=("smoke", "dse", "hw"),
))

register_benchmark(Benchmark(
    name="fleet_missions",
    description="Vectorized fleet rollouts vs. per-rollout run_mission"
                " (exactly equal results; S4), arena-backed batch path"
                " with bytes/rollout (S6)",
    sizes=(10, 100, 1_000, 10_000, 100_000),
    smoke_sizes=(64,),
    metrics=(
        Metric("scalar_per_s", unit="1/s"),
        Metric("batch_per_s", unit="1/s"),
        Metric("speedup", unit="x", higher_is_better=True, gate=True,
               monotone=True),
        Metric("alloc_bytes_per_rollout", unit="B",
               higher_is_better=False),
    ),
    runner=run_fleet_missions,
    tags=("smoke", "mission", "system"),
))

register_benchmark(Benchmark(
    name="arena_reuse",
    description="BatchArena steady state: zero growth and flat"
                " bytes/rollout across 5 reused generations (S6)",
    sizes=(1_000, 10_000),
    smoke_sizes=(256,),
    metrics=(
        Metric("alloc_bytes_per_rollout", unit="B",
               higher_is_better=False),
        Metric("alloc_flat_ratio", unit="ratio",
               higher_is_better=False, gate=True),
        Metric("steady_grow_bytes", unit="B", higher_is_better=False),
        Metric("reuse_frac", unit="ratio", higher_is_better=True,
               gate=True),
        Metric("arena_occupancy", unit="ratio"),
    ),
    runner=run_arena_reuse,
    tags=("smoke", "mission", "system", "memory"),
))

register_benchmark(Benchmark(
    name="engine_parallel",
    description="Process-pool candidate evaluation vs. serial"
                " (identical values; S2)",
    sizes=(24,),
    smoke_sizes=(8,),
    metrics=(
        Metric("serial_per_s", unit="1/s"),
        Metric("parallel_per_s", unit="1/s"),
        Metric("speedup", unit="x", higher_is_better=True, gate=True),
    ),
    runner=run_engine_parallel,
    tags=("engine",),
))

register_benchmark(Benchmark(
    name="funnel_dse",
    description="Multi-fidelity funnel vs. single-fidelity full-DES"
                " search over codesign_xl (same proposal stream; S7)",
    sizes=(4_000, 20_000),
    smoke_sizes=(256,),
    metrics=(
        Metric("full_fidelity_per_s", unit="1/s"),
        Metric("funnel_per_s", unit="1/s"),
        Metric("speedup", unit="x", higher_is_better=True, gate=True),
        Metric("top_tier_frac", unit="ratio", higher_is_better=False),
        Metric("screen_regret", unit="score", higher_is_better=False),
    ),
    runner=run_funnel_dse,
    tags=("smoke", "dse", "engine", "mission"),
))

register_benchmark(Benchmark(
    name="serve_coalesce",
    description="Evaluation daemon: cross-client coalesced batches vs."
                " per-request pricing (identical values; 8 pipelining"
                " clients)",
    sizes=(1_024,),
    smoke_sizes=(128,),
    metrics=(
        Metric("baseline_per_s", unit="1/s"),
        Metric("coalesced_per_s", unit="1/s"),
        Metric("speedup", unit="x", higher_is_better=True, gate=True),
        Metric("mean_flush_occupancy", unit="cand",
               higher_is_better=True),
        Metric("occupancy_frac", unit="ratio", higher_is_better=True,
               gate=True),
        Metric("coalesced_batches", unit="n", higher_is_better=True),
    ),
    runner=run_serve_coalesce,
    tags=("serve", "engine"),
))

register_benchmark(Benchmark(
    name="obs_overhead",
    description="Telemetry overhead: tracing off vs. on vs."
                " on-with-profiling (size = simulated seconds)",
    sizes=(60,),
    smoke_sizes=(5,),
    metrics=(
        Metric("samples_per_s", unit="1/s"),
        Metric("on_off_ratio", unit="ratio", higher_is_better=False,
               gate=True),
        Metric("profiled_off_ratio", unit="ratio",
               higher_is_better=False, gate=True),
    ),
    runner=run_obs_overhead,
    tags=("smoke", "telemetry"),
))
