"""The perf ledger: append-only provenance-stamped benchmark records.

Before this module the repo's performance history was two ad-hoc
``BENCH_*.json`` files — a snapshot each, no trajectory, no gate.  The
ledger fixes all three:

- **Records** — every ``repro bench`` run appends one JSON line per
  (benchmark, size) to ``BENCH_LEDGER.jsonl``: the measured metrics plus
  full provenance (git SHA, seed, python/numpy versions, machine
  fingerprint, wall time, peak RSS).  JSONL so appends are atomic-ish
  and history diffs line-by-line.
- **Baselines** — ``BENCH_BASELINES.json`` holds the committed
  reference values per (benchmark, size).  Baselines carry the machine
  fingerprint they were measured on; gating compares only dimensionless
  metrics (speedups, ratios — see
  :class:`~repro.bench.registry.Metric.gate`), which transfer across
  machines far better than absolute rates.
- **The gate** — :func:`check_records` compares a run against the
  baselines and reports per-metric regressions beyond a relative
  threshold; ``repro bench --check`` turns that into a nonzero exit.

:func:`migrate_legacy_bench` converts the PR 4/PR 5 seed files
(``BENCH_batch_pricing.json`` / ``BENCH_fleet_missions.json``) into
ledger records so the history starts at the seed, not at this PR.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.registry import Benchmark
from repro.errors import BenchmarkError
from repro.telemetry.export import run_provenance
from repro.telemetry.profiling import peak_rss_kb

__all__ = [
    "DEFAULT_BASELINES_PATH",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "BaselineCheck",
    "MonotoneCheck",
    "append_records",
    "baselines_from_records",
    "check_monotone",
    "check_records",
    "ledger_record",
    "load_baselines",
    "merge_baselines",
    "migrate_legacy_bench",
    "read_ledger",
    "write_baselines",
]

LEDGER_SCHEMA = "repro-bench-ledger/1"
BASELINES_SCHEMA = "repro-bench-baselines/1"
DEFAULT_LEDGER_PATH = "BENCH_LEDGER.jsonl"
DEFAULT_BASELINES_PATH = "BENCH_BASELINES.json"


def ledger_record(benchmark: str, size: int,
                  metrics: Mapping[str, float],
                  wall_time_s: float,
                  seed: Optional[int] = None,
                  config: Optional[Mapping[str, Any]] = None
                  ) -> Dict[str, Any]:
    """Build one provenance-stamped ledger record."""
    return {
        "schema": LEDGER_SCHEMA,
        "benchmark": benchmark,
        "size": int(size),
        "metrics": {name: value for name, value in metrics.items()},
        "wall_time_s": round(float(wall_time_s), 6),
        "peak_rss_kb": peak_rss_kb(),
        "provenance": run_provenance(seed=seed, config=config),
    }


def append_records(path: str,
                   records: Sequence[Mapping[str, Any]]) -> int:
    """Append records as JSON lines; returns the count written."""
    if not records:
        return 0
    with open(path, "a") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")
    return len(records)


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Load every record from a ledger file (empty if absent)."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise BenchmarkError(
                    f"{path}:{line_no}: not a JSON record"
                    f" ({error})") from None
    return records


# -- baselines ---------------------------------------------------------

def baselines_from_records(records: Sequence[Mapping[str, Any]],
                           source: str = "measured"
                           ) -> Dict[str, Any]:
    """Build a baselines document from ledger records (last record per
    (benchmark, size) wins)."""
    entries: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for record in records:
        key = (record["benchmark"], int(record["size"]))
        entries[key] = {
            "benchmark": record["benchmark"],
            "size": int(record["size"]),
            "metrics": dict(record["metrics"]),
            "source": source,
            "git_sha": (record.get("provenance") or {}).get("git_sha"),
            "machine": (record.get("provenance") or {}).get("machine"),
        }
    return {
        "schema": BASELINES_SCHEMA,
        "entries": [entries[key] for key in sorted(entries)],
    }


def load_baselines(path: str
                   ) -> Dict[Tuple[str, int], Dict[str, Any]]:
    """``(benchmark, size) -> entry`` from a baselines document."""
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") != BASELINES_SCHEMA:
        raise BenchmarkError(
            f"{path}: expected schema {BASELINES_SCHEMA!r},"
            f" got {document.get('schema')!r}")
    return {(entry["benchmark"], int(entry["size"])): entry
            for entry in document.get("entries", ())}


def merge_baselines(path: str,
                    document: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge ``document`` entries over the file's (new keys win)."""
    existing = load_baselines(path)
    for entry in document.get("entries", ()):
        existing[(entry["benchmark"], int(entry["size"]))] = entry
    return {
        "schema": BASELINES_SCHEMA,
        "entries": [existing[key] for key in sorted(existing)],
    }


def write_baselines(path: str, document: Mapping[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


# -- the regression gate ----------------------------------------------

@dataclass(frozen=True)
class BaselineCheck:
    """One gated metric compared against its baseline.

    ``change`` is the signed relative move in the *good* direction:
    +0.10 means 10% better than baseline, -0.10 means 10% worse.
    ``regressed`` is True when ``change < -threshold``.
    """

    benchmark: str
    size: int
    metric: str
    baseline: float
    measured: float
    change: float
    threshold: float
    regressed: bool


def check_records(records: Sequence[Mapping[str, Any]],
                  baselines: Mapping[Tuple[str, int], Mapping[str, Any]],
                  benchmarks: Mapping[str, Benchmark],
                  threshold: float) -> List[BaselineCheck]:
    """Gate a run's records against the committed baselines.

    Records without a matching (benchmark, size) baseline entry, and
    metrics absent from the baseline, are skipped — the gate only
    compares what both sides measured.  Returns every comparison made
    (callers filter on ``regressed``).
    """
    if threshold < 0:
        raise BenchmarkError(
            f"threshold must be >= 0, got {threshold}")
    checks: List[BaselineCheck] = []
    for record in records:
        name = record["benchmark"]
        size = int(record["size"])
        entry = baselines.get((name, size))
        benchmark = benchmarks.get(name)
        if entry is None or benchmark is None:
            continue
        for metric in benchmark.gated_metrics():
            base = entry.get("metrics", {}).get(metric.name)
            measured = record.get("metrics", {}).get(metric.name)
            if base is None or measured is None:
                continue
            base = float(base)
            measured = float(measured)
            if base == 0.0:
                continue
            raw = (measured - base) / abs(base)
            change = raw if metric.higher_is_better else -raw
            checks.append(BaselineCheck(
                benchmark=name, size=size, metric=metric.name,
                baseline=base, measured=measured,
                change=change, threshold=threshold,
                regressed=change < -threshold,
            ))
    return checks


# -- the monotonicity gate ---------------------------------------------

@dataclass(frozen=True)
class MonotoneCheck:
    """One size-to-size step of a monotone-declared metric.

    The metric at ``size`` must be at least ``tolerance`` times its
    value at the previous (smaller) ``prev_size`` within the same run;
    ``violated`` is True when it falls below that.  Being a same-run,
    same-machine comparison, a violation is machine-independent
    evidence the metric's scaling collapsed (e.g. a batch speedup
    flattened by allocation churn at large populations).
    """

    benchmark: str
    metric: str
    prev_size: int
    size: int
    prev_value: float
    value: float
    tolerance: float
    violated: bool


def check_monotone(records: Sequence[Mapping[str, Any]],
                   benchmarks: Mapping[str, Benchmark],
                   tolerance: float = 0.9) -> List[MonotoneCheck]:
    """Check monotone-declared metrics across a run's size sweep.

    For each benchmark with :class:`~repro.bench.registry.Metric`
    entries declaring ``monotone=True``, the run's records are ordered
    by size (last record per size wins) and every adjacent pair is
    compared: ``value(size_{i+1}) >= tolerance * value(size_i)``.
    Returns every comparison made (callers filter on ``violated``);
    benchmarks measured at fewer than two sizes contribute none.
    """
    if not 0.0 < tolerance:
        raise BenchmarkError(
            f"tolerance must be > 0, got {tolerance}")
    by_bench: Dict[str, Dict[int, Mapping[str, Any]]] = {}
    for record in records:
        name = record["benchmark"]
        by_bench.setdefault(name, {})[int(record["size"])] = \
            record.get("metrics", {})
    checks: List[MonotoneCheck] = []
    for name, by_size in by_bench.items():
        benchmark = benchmarks.get(name)
        if benchmark is None or len(by_size) < 2:
            continue
        monotone = [m for m in benchmark.metrics if m.monotone]
        sizes = sorted(by_size)
        for metric in monotone:
            for prev_size, size in zip(sizes, sizes[1:]):
                prev_value = by_size[prev_size].get(metric.name)
                value = by_size[size].get(metric.name)
                if prev_value is None or value is None:
                    continue
                prev_value = float(prev_value)
                value = float(value)
                checks.append(MonotoneCheck(
                    benchmark=name, metric=metric.name,
                    prev_size=prev_size, size=size,
                    prev_value=prev_value, value=value,
                    tolerance=tolerance,
                    violated=value < tolerance * prev_value,
                ))
    return checks


# -- legacy migration --------------------------------------------------

#: Legacy BENCH_*.json row keys that encode the workload size.
_LEGACY_SIZE_KEYS = ("candidates", "rollouts", "size")


def migrate_legacy_bench(path: str) -> List[Dict[str, Any]]:
    """Convert a PR 4/PR 5 ``BENCH_*.json`` snapshot to ledger records.

    The legacy shape is ``{"benchmark": ..., "rows": [{<size key>: n,
    metric: value, ...}, ...]}`` with the size keyed ``candidates``
    (batch pricing) or ``rollouts`` (fleet missions).  Wall time and
    per-row provenance were not recorded at the seed; the migrated
    records carry ``migrated_from`` instead and a current-checkout
    provenance stamp so the ledger's first entries are honest about
    their origin.
    """
    with open(path) as handle:
        document = json.load(handle)
    name = document.get("benchmark")
    rows = document.get("rows")
    if not isinstance(name, str) or not isinstance(rows, list):
        raise BenchmarkError(
            f"{path}: not a legacy BENCH file (need 'benchmark' and"
            f" 'rows')")
    records = []
    for row in rows:
        size = None
        for key in _LEGACY_SIZE_KEYS:
            if key in row:
                size = int(row[key])
                break
        if size is None:
            raise BenchmarkError(
                f"{path}: row {row!r} has no size key"
                f" (one of {_LEGACY_SIZE_KEYS})")
        metrics = {key: value for key, value in row.items()
                   if key not in _LEGACY_SIZE_KEYS}
        record = {
            "schema": LEDGER_SCHEMA,
            "benchmark": name,
            "size": size,
            "metrics": metrics,
            "wall_time_s": None,
            "peak_rss_kb": None,
            "migrated_from": os.path.basename(path),
            "migrated_unix_time": time.time(),
            "provenance": run_provenance(
                config={"migrated_from": os.path.basename(path)}),
        }
        records.append(record)
    return records
