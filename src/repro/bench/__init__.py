"""Benchmark registry + regression-gated perf ledger.

``repro.bench`` turns the scripts under ``benchmarks/`` into named,
discoverable, schema-checked entries (:mod:`repro.bench.registry`),
and gives every run a durable, provenance-stamped history with a
regression gate (:mod:`repro.bench.ledger`).  The ``repro bench`` CLI
verb is the front door; see also the "Performance observatory"
section of the README.
"""

from repro.bench.ledger import (
    BASELINES_SCHEMA,
    DEFAULT_BASELINES_PATH,
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    BaselineCheck,
    MonotoneCheck,
    append_records,
    baselines_from_records,
    check_monotone,
    check_records,
    ledger_record,
    load_baselines,
    merge_baselines,
    migrate_legacy_bench,
    read_ledger,
    write_baselines,
)
from repro.bench.registry import (
    REGISTRY,
    Benchmark,
    BenchmarkRegistry,
    Metric,
    get_benchmark,
    load_builtins,
    register_benchmark,
)

__all__ = [
    "BASELINES_SCHEMA",
    "DEFAULT_BASELINES_PATH",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "REGISTRY",
    "BaselineCheck",
    "Benchmark",
    "BenchmarkRegistry",
    "Metric",
    "MonotoneCheck",
    "append_records",
    "baselines_from_records",
    "check_monotone",
    "check_records",
    "get_benchmark",
    "ledger_record",
    "load_baselines",
    "load_builtins",
    "merge_baselines",
    "migrate_legacy_bench",
    "read_ledger",
    "register_benchmark",
    "write_baselines",
]
