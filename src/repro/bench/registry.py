"""The benchmark registry: named, discoverable, schema-checked entries.

The paper's O2 ("chips & salsa") argues that accelerator claims are
only comparable when benchmarks are *standardized*: named workloads,
declared sizes, declared metrics.  The scripts under ``benchmarks/``
each certify one claim, but until this registry they were only
discoverable by reading the directory.  A registered
:class:`Benchmark` declares:

- a **name** (`repro bench --filter` matches it and its tags),
- **workload sizes** (the full sweep) and **smoke sizes** (tiny
  configurations safe for CI runners),
- a **metric schema** — every metric the runner must return, with its
  unit, direction, and whether it participates in regression gating
  (``gate=True`` metrics are compared against the committed baseline by
  ``repro bench --check``; absolute-throughput metrics are recorded but
  not gated, because they are machine-relative).

:meth:`Benchmark.run` validates the runner's output against the schema,
so a registered benchmark cannot silently drop a metric the ledger
(and its baselines) depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.errors import BenchmarkError

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "Metric",
    "REGISTRY",
    "get_benchmark",
    "load_builtins",
    "register_benchmark",
]


@dataclass(frozen=True)
class Metric:
    """One declared output of a benchmark runner.

    Attributes:
        name: Key in the runner's returned mapping.
        unit: Human-readable unit (``"1/s"``, ``"x"``, ``"ratio"``).
        higher_is_better: Direction for regression comparison.
        gate: Whether ``repro bench --check`` gates on this metric.
            Gate only dimensionless, machine-relative quantities
            (speedups, overhead ratios); absolute rates vary with the
            host and are informational.
        monotone: Whether the metric must be (approximately)
            non-decreasing across a run's size sweep.  Unlike baseline
            gating this compares a run against *itself*, so it is fully
            machine-independent: a vectorized path whose advantage
            collapses at large sizes (the allocation-tax signature) is
            a structural regression wherever it is measured.  Checked
            by :func:`repro.bench.ledger.check_monotone` whenever a
            ``repro bench --check`` run covers two or more sizes.
    """

    name: str
    unit: str = ""
    higher_is_better: bool = True
    gate: bool = False
    monotone: bool = False


@dataclass(frozen=True)
class Benchmark:
    """A registered, runnable benchmark entry.

    Attributes:
        name: Registry key.
        description: One-line summary shown by ``repro bench --list``.
        sizes: Full-sweep workload sizes.
        smoke_sizes: Tiny sizes safe for CI smoke runs (the default for
            ``repro bench``).
        metrics: The declared metric schema.
        runner: ``size -> {metric name -> value}``.  Runners embed their
            own correctness assertions (e.g. batch == scalar identity),
            so a benchmark run is also a contract check.
        tags: Extra ``--filter`` match terms (e.g. ``"smoke"``).
    """

    name: str
    description: str
    sizes: Tuple[int, ...]
    smoke_sizes: Tuple[int, ...]
    metrics: Tuple[Metric, ...]
    runner: Callable[[int], Mapping[str, float]]
    tags: Tuple[str, ...] = ()

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise BenchmarkError(
            f"benchmark {self.name!r} declares no metric {name!r}")

    def gated_metrics(self) -> Tuple[Metric, ...]:
        return tuple(m for m in self.metrics if m.gate)

    def run(self, size: int) -> Dict[str, float]:
        """Run at ``size`` and validate the result against the schema."""
        if size < 1:
            raise BenchmarkError(
                f"benchmark {self.name!r}: size must be >= 1,"
                f" got {size}")
        measured = dict(self.runner(size))
        for metric in self.metrics:
            if metric.name not in measured:
                raise BenchmarkError(
                    f"benchmark {self.name!r} returned no"
                    f" {metric.name!r} (schema requires it)")
            value = measured[metric.name]
            if not isinstance(value, (int, float)) or \
                    isinstance(value, bool) or not math.isfinite(value):
                raise BenchmarkError(
                    f"benchmark {self.name!r}: metric {metric.name!r}"
                    f" must be a finite number, got {value!r}")
        unknown = set(measured) - {m.name for m in self.metrics}
        if unknown:
            raise BenchmarkError(
                f"benchmark {self.name!r} returned undeclared"
                f" metric(s) {sorted(unknown)}")
        return measured

    def matches(self, pattern: str) -> bool:
        """Substring match against the name or any tag."""
        pattern = pattern.lower()
        return pattern in self.name.lower() or any(
            pattern in tag.lower() for tag in self.tags)


class BenchmarkRegistry:
    """Name → :class:`Benchmark`, with filtered selection."""

    def __init__(self) -> None:
        self._entries: Dict[str, Benchmark] = {}

    def register(self, benchmark: Benchmark) -> Benchmark:
        if benchmark.name in self._entries:
            raise BenchmarkError(
                f"benchmark {benchmark.name!r} already registered")
        self._entries[benchmark.name] = benchmark
        return benchmark

    def get(self, name: str) -> Benchmark:
        try:
            return self._entries[name]
        except KeyError:
            raise BenchmarkError(
                f"unknown benchmark {name!r}; registered:"
                f" {self.names()}") from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> List[Benchmark]:
        return [self._entries[name] for name in self.names()]

    def select(self, pattern: str = "") -> List[Benchmark]:
        """Entries matching ``pattern`` (all of them when empty)."""
        if not pattern:
            return self.entries()
        return [entry for entry in self.entries()
                if entry.matches(pattern)]


#: The process-global registry ``repro bench`` consults.  Built-in
#: entries register on import of :mod:`repro.bench.builtin`.
REGISTRY = BenchmarkRegistry()


def register_benchmark(benchmark: Benchmark) -> Benchmark:
    """Register on the global registry (returns the entry)."""
    return REGISTRY.register(benchmark)


def get_benchmark(name: str) -> Benchmark:
    """Look up a registered benchmark, loading built-ins first."""
    load_builtins()
    return REGISTRY.get(name)


def load_builtins() -> None:
    """Import the built-in entries (idempotent; registers on import)."""
    import repro.bench.builtin  # noqa: F401
