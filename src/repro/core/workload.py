"""Kernels, task graphs, and workloads: the framework's workload IR.

A :class:`Kernel` names a unit of computation and knows how to produce a
:class:`~repro.core.profile.WorkloadProfile` for a given problem size.  A
:class:`TaskGraph` composes kernels into a DAG of :class:`Stage` nodes with
data-sized edges — the shape the end-to-end simulator consumes.  A
:class:`Workload` bundles a task graph with the rate it must run at and the
task-level quality metric that matters to domain experts (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import WorkloadProfile
from repro.errors import ConfigurationError

ProfileFn = Callable[..., WorkloadProfile]


@dataclass(frozen=True)
class Kernel:
    """A named unit of computation with a profile generator.

    Attributes:
        name: Unique kernel name (e.g. ``"gemm"``, ``"nn-collision"``).
        category: Cross-cutting category used by §2.3 analysis
            (e.g. ``"linalg"``, ``"search"``, ``"stencil"``).
        profile_fn: Callable returning a :class:`WorkloadProfile` for given
            size parameters.  When ``None``, ``static_profile`` must be set.
        static_profile: A fixed profile for kernels with one canonical size.
        tags: Free-form labels ("safety-critical", "frontend", ...).
    """

    name: str
    category: str = "generic"
    profile_fn: Optional[ProfileFn] = None
    static_profile: Optional[WorkloadProfile] = None
    tags: Tuple[str, ...] = ()

    def profile(self, **size_params: object) -> WorkloadProfile:
        """Produce the profile for one invocation at the given size."""
        if self.profile_fn is not None:
            return self.profile_fn(**size_params)
        if self.static_profile is not None:
            return self.static_profile
        raise ConfigurationError(
            f"kernel {self.name!r} has neither profile_fn nor static_profile"
        )


@dataclass(frozen=True)
class Stage:
    """One node of a task graph: a kernel invocation inside a pipeline.

    Attributes:
        name: Stage name, unique within its task graph.
        profile: The work one activation of this stage performs.
        deps: Names of stages whose outputs this stage consumes.
        output_bytes: Size of the data this stage emits downstream (drives
            the I/O/marshalling model of §2.6).
        rate_hz: Activation rate when the stage is a source (sensor-driven);
            non-source stages activate when inputs arrive.
        deadline_s: Optional per-activation deadline (for the scheduler
            experiments); ``None`` means best-effort.
    """

    name: str
    profile: WorkloadProfile
    deps: Tuple[str, ...] = ()
    output_bytes: float = 0.0
    rate_hz: Optional[float] = None
    deadline_s: Optional[float] = None


class TaskGraph:
    """A DAG of stages with topological ordering and critical-path queries.

    The graph is immutable after construction; construction validates that
    dependency names resolve and the graph is acyclic.
    """

    def __init__(self, name: str, stages: Sequence[Stage]):
        self.name = name
        self._stages: Dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise ConfigurationError(
                    f"task graph {name!r}: duplicate stage {stage.name!r}"
                )
            self._stages[stage.name] = stage
        for stage in stages:
            for dep in stage.deps:
                if dep not in self._stages:
                    raise ConfigurationError(
                        f"task graph {name!r}: stage {stage.name!r} depends"
                        f" on unknown stage {dep!r}"
                    )
        self._order = self._topological_order()

    @property
    def stages(self) -> List[Stage]:
        """Stages in topological order."""
        return [self._stages[n] for n in self._order]

    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise ConfigurationError(
                f"task graph {self.name!r} has no stage {name!r}"
            ) from None

    def sources(self) -> List[Stage]:
        """Stages with no dependencies (sensor-driven entry points)."""
        return [s for s in self.stages if not s.deps]

    def sinks(self) -> List[Stage]:
        """Stages no other stage depends on (actuator-facing outputs)."""
        consumed = {d for s in self._stages.values() for d in s.deps}
        return [s for s in self.stages if s.name not in consumed]

    def _topological_order(self) -> List[str]:
        in_degree = {name: len(stage.deps)
                     for name, stage in self._stages.items()}
        dependents: Dict[str, List[str]] = {n: [] for n in self._stages}
        for name, stage in self._stages.items():
            for dep in stage.deps:
                dependents[dep].append(name)
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in sorted(dependents[node]):
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._stages):
            raise ConfigurationError(
                f"task graph {self.name!r} contains a dependency cycle"
            )
        return order

    def fingerprint_spec(self) -> Dict[str, object]:
        """Everything that determines this graph's evaluation semantics,
        for :func:`repro.engine.fingerprint.fingerprint` (stages in
        topological order, so construction order is irrelevant)."""
        return {"kind": type(self).__name__, "name": self.name,
                "stages": self.stages}

    def total_profile(self) -> WorkloadProfile:
        """Merged profile of one activation of every stage."""
        return WorkloadProfile.merge(
            (s.profile for s in self.stages), name=self.name
        )

    def critical_path(
        self, stage_latency: Mapping[str, float]
    ) -> Tuple[float, List[str]]:
        """Longest path through the DAG under the given per-stage latencies.

        Args:
            stage_latency: Latency of one activation of each stage, keyed by
                stage name.  Every stage must be present.

        Returns:
            ``(length_seconds, [stage names on the path])``.
        """
        best: Dict[str, float] = {}
        parent: Dict[str, Optional[str]] = {}
        for name in self._order:
            stage = self._stages[name]
            try:
                own = stage_latency[name]
            except KeyError:
                raise ConfigurationError(
                    f"critical_path: missing latency for stage {name!r}"
                ) from None
            if stage.deps:
                pred = max(stage.deps, key=lambda d: best[d])
                best[name] = best[pred] + own
                parent[name] = pred
            else:
                best[name] = own
                parent[name] = None
        end = max(best, key=lambda n: best[n])
        path = [end]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return best[end], path

    def critical_path_batch(
        self, stage_latency: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Critical-path *lengths* under per-stage latency arrays.

        The batch form of :meth:`critical_path`: each stage maps to a
        ``(k,)`` array of latencies (one entry per candidate in a
        batch-pricing sweep) and the result is the ``(k,)`` array of
        path lengths.  Entry ``i`` is bit-identical to
        ``critical_path({name: lat[name][i]})[0]`` — the longest-path
        DP runs in the same topological order with the same max/add
        structure, just elementwise over the candidate axis.  (The path
        itself is per-candidate and not returned; use the scalar method
        when the witness path matters.)
        """
        best: Dict[str, np.ndarray] = {}
        for name in self._order:
            stage = self._stages[name]
            try:
                own = np.asarray(stage_latency[name], dtype=float)
            except KeyError:
                raise ConfigurationError(
                    f"critical_path_batch: missing latency for stage"
                    f" {name!r}"
                ) from None
            if stage.deps:
                reach = best[stage.deps[0]]
                for dep in stage.deps[1:]:
                    reach = np.maximum(reach, best[dep])
                best[name] = reach + own
            else:
                best[name] = own
        length: Optional[np.ndarray] = None
        for value in best.values():
            length = value if length is None else np.maximum(length, value)
        assert length is not None  # graphs have >= 1 stage
        return length

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, name: object) -> bool:
        return name in self._stages

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return self.name == other.name and self.stages == other.stages

    def __hash__(self) -> int:
        return hash((self.name, tuple(self._order)))

    def __repr__(self) -> str:
        return f"TaskGraph({self.name!r}, {len(self)} stages)"


@dataclass
class Workload:
    """A benchmark-able job: a task graph plus rate and quality context.

    Attributes:
        name: Workload name (e.g. ``"uav-vio-navigation"``).
        graph: The computation as a task graph.
        target_rate_hz: Rate at which the domain needs the pipeline to run
            (e.g. camera frame rate).  Used for deadline checks.
        quality_metric: Name of the task-level quality metric domain experts
            care about (§2.2) — e.g. ``"ate_rmse_m"`` for SLAM.
        kernel_composition: Share of total operations per kernel category,
            for cross-cutting analysis (§2.3).  Filled by
            :func:`repro.core.characterize.characterize` when empty.
        tags: Labels ("uav", "manipulation", "perception", ...).
    """

    name: str
    graph: TaskGraph
    target_rate_hz: float = 10.0
    quality_metric: str = "task_quality"
    kernel_composition: Dict[str, float] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def deadline_s(self) -> float:
        """Per-activation deadline implied by the target rate."""
        if self.target_rate_hz <= 0:
            raise ConfigurationError(
                f"workload {self.name!r}: target_rate_hz must be > 0"
            )
        return 1.0 / self.target_rate_hz

    def composition(self) -> Dict[str, float]:
        """Kernel-category op shares, computed from the graph if not set."""
        if self.kernel_composition:
            return dict(self.kernel_composition)
        total = sum(s.profile.total_ops for s in self.graph.stages)
        if total == 0:
            return {}
        shares: Dict[str, float] = {}
        for stage in self.graph.stages:
            key = stage.profile.op_class
            shares[key] = shares.get(key, 0.0) + stage.profile.total_ops / total
        return shares


def linear_pipeline(name: str, profiles: Iterable[WorkloadProfile],
                    rate_hz: float = 10.0,
                    output_bytes: float = 0.0) -> TaskGraph:
    """Build a straight-line task graph from an ordered list of profiles.

    The first stage becomes the (sensor-driven) source at ``rate_hz``; each
    subsequent stage depends on its predecessor.  A convenience for the
    common perception→planning→control chain.
    """
    stages: List[Stage] = []
    prev: Optional[str] = None
    for index, profile in enumerate(profiles):
        stage = Stage(
            name=profile.name if profile.name not in {s.name for s in stages}
            else f"{profile.name}#{index}",
            profile=profile,
            deps=(prev,) if prev is not None else (),
            output_bytes=output_bytes,
            rate_hz=rate_hz if prev is None else None,
        )
        stages.append(stage)
        prev = stage.name
    return TaskGraph(name, stages)
