"""Workload profiles and cost estimates: the framework's central contract.

Every instrumented kernel in :mod:`repro.kernels` *measures* the work it
performs (floating-point operations, integer operations, bytes moved) and
reports it as a :class:`WorkloadProfile`.  Every platform model in
:mod:`repro.hw` consumes a profile and prices it as a :class:`CostEstimate`.
The system simulator in :mod:`repro.system` then sequences priced work into
end-to-end timelines.  Keeping this contract small is what lets the seven
experiments share one substrate.

Units are SI throughout: operations are dimensionless counts, bytes are
bytes, latency is seconds, energy is joules, power is watts, area is mm^2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional

from repro.errors import ProfileError


class DivergenceClass(enum.Enum):
    """How control-flow-divergent a kernel is.

    Platforms with lockstep execution (GPUs, systolic ASICs) derate their
    effective throughput on divergent kernels; scalar CPUs do not.
    """

    NONE = "none"  # straight-line dataflow (GEMM, convolution)
    LOW = "low"  # mostly uniform with rare branches (filters, stencils)
    HIGH = "high"  # data-dependent branching (tree search, RRT expansion)


#: Multiplicative throughput derating applied by lockstep platforms,
#: indexed by divergence class.  Values are first-order and shared by all
#: platform models so comparisons remain apples-to-apples.
DIVERGENCE_DERATING: Dict[DivergenceClass, float] = {
    DivergenceClass.NONE: 1.0,
    DivergenceClass.LOW: 0.7,
    DivergenceClass.HIGH: 0.25,
}


@dataclass(frozen=True)
class WorkloadProfile:
    """A platform-independent account of the work one invocation performs.

    Attributes:
        name: Human-readable kernel identity (e.g. ``"gemm-256"``).
        flops: Floating-point operations (adds, muls, fused counted as 2).
        int_ops: Integer/logic operations that dominate some kernels
            (collision bit tests, index arithmetic in planners).
        bytes_read: Bytes read from the memory system (beyond registers).
        bytes_written: Bytes written to the memory system.
        working_set_bytes: Peak resident data footprint; platforms compare
            this to their on-chip capacity to decide whether traffic is
            served on-chip or spills off-chip.
        parallel_fraction: Fraction of the work that is parallelizable
            (Amdahl's ``p``), in [0, 1].
        divergence: Control-flow divergence class (see
            :class:`DivergenceClass`).
        op_class: Coarse operation class used by accelerator mapping tables
            (e.g. ``"gemm"``, ``"collision"``, ``"stencil"``, ``"generic"``).
    """

    name: str
    flops: float = 0.0
    int_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set_bytes: float = 0.0
    parallel_fraction: float = 0.9
    divergence: DivergenceClass = DivergenceClass.LOW
    op_class: str = "generic"

    def __post_init__(self) -> None:
        for attr in ("flops", "int_ops", "bytes_read", "bytes_written",
                     "working_set_bytes"):
            value = getattr(self, attr)
            if value < 0 or math.isnan(value):
                raise ProfileError(
                    f"profile {self.name!r}: {attr} must be >= 0, got {value}"
                )
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ProfileError(
                f"profile {self.name!r}: parallel_fraction must be in [0, 1],"
                f" got {self.parallel_fraction}"
            )

    @property
    def total_ops(self) -> float:
        """All arithmetic operations, float and integer."""
        return self.flops + self.int_ops

    @property
    def total_bytes(self) -> float:
        """All memory traffic, reads plus writes."""
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte of memory traffic (the roofline x-axis).

        A compute-only profile (zero traffic) returns ``inf``; an empty
        profile returns 0.
        """
        if self.total_bytes == 0:
            return math.inf if self.total_ops > 0 else 0.0
        return self.total_ops / self.total_bytes

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Return this profile with all counts multiplied by ``factor``.

        Useful for expressing ``n`` invocations or a problem-size scaling.
        Parallel fraction and divergence are size-independent and kept.
        """
        if factor < 0:
            raise ProfileError(f"scale factor must be >= 0, got {factor}")
        return replace(
            self,
            flops=self.flops * factor,
            int_ops=self.int_ops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    def combined(self, other: "WorkloadProfile",
                 name: Optional[str] = None) -> "WorkloadProfile":
        """Merge two profiles executed back-to-back into one.

        Counts add; ``working_set_bytes`` takes the max (sequential phases
        reuse memory); ``parallel_fraction`` is the op-weighted mean;
        divergence takes the worse class; ``op_class`` becomes ``"mixed"``
        unless both agree.
        """
        total = self.total_ops + other.total_ops
        if total > 0:
            par = (self.parallel_fraction * self.total_ops
                   + other.parallel_fraction * other.total_ops) / total
        else:
            par = max(self.parallel_fraction, other.parallel_fraction)
        order = [DivergenceClass.NONE, DivergenceClass.LOW,
                 DivergenceClass.HIGH]
        divergence = max(self.divergence, other.divergence,
                         key=order.index)
        op_class = self.op_class if self.op_class == other.op_class else "mixed"
        return WorkloadProfile(
            name=name or f"{self.name}+{other.name}",
            flops=self.flops + other.flops,
            int_ops=self.int_ops + other.int_ops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            working_set_bytes=max(self.working_set_bytes,
                                  other.working_set_bytes),
            parallel_fraction=min(1.0, par),
            divergence=divergence,
            op_class=op_class,
        )

    @staticmethod
    def merge(profiles: Iterable["WorkloadProfile"],
              name: str = "merged") -> "WorkloadProfile":
        """Merge an iterable of profiles (see :meth:`combined`)."""
        merged: Optional[WorkloadProfile] = None
        for profile in profiles:
            merged = profile if merged is None else merged.combined(profile)
        if merged is None:
            return WorkloadProfile(name=name)
        return replace(merged, name=name)


@dataclass(frozen=True)
class CostEstimate:
    """What one invocation of a profile costs on a concrete platform.

    Attributes:
        latency_s: Wall-clock service time for one invocation.
        energy_j: Energy consumed by the invocation (dynamic + its share
            of static power over ``latency_s``).
        power_w: Mean power over the invocation.
        area_mm2: Silicon area attributable to the executing unit (for
            ASIC/FPGA models; 0 when shared or not modeled).
        platform: Name of the platform that produced the estimate.
        bound: What limited performance: ``"compute"``, ``"memory"``, or
            ``"serial"`` (Amdahl-limited).
    """

    latency_s: float
    energy_j: float
    power_w: float = 0.0
    area_mm2: float = 0.0
    platform: str = ""
    bound: str = "compute"

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.energy_j < 0:
            raise ProfileError(
                f"cost estimate for {self.platform!r} has negative"
                f" latency/energy: {self.latency_s}, {self.energy_j}"
            )

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s), the metric §2.2 warns against
        optimizing in isolation."""
        return self.energy_j * self.latency_s

    def throughput_hz(self) -> float:
        """Invocations per second if run back-to-back."""
        return math.inf if self.latency_s == 0 else 1.0 / self.latency_s


@dataclass
class OpCounter:
    """Mutable accumulator kernels use to *measure* their own work.

    Instrumented kernels accept an optional counter and call the ``add_*``
    methods as they execute; at the end the counter is frozen into a
    :class:`WorkloadProfile`.  Counting happens inside the algorithms (next
    to the numpy calls that do the work), so profiles track actual control
    flow — e.g. an RRT that terminates early reports fewer collision checks.
    """

    name: str = "counted"
    flops: float = 0.0
    int_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set_bytes: float = 0.0
    _events: int = field(default=0, repr=False)

    def add_flops(self, count: float) -> None:
        self.flops += count
        self._events += 1

    def add_int_ops(self, count: float) -> None:
        self.int_ops += count
        self._events += 1

    def add_read(self, nbytes: float) -> None:
        self.bytes_read += nbytes
        self._events += 1

    def add_write(self, nbytes: float) -> None:
        self.bytes_written += nbytes
        self._events += 1

    def note_working_set(self, nbytes: float) -> None:
        """Record a live-data footprint; the peak is kept."""
        self.working_set_bytes = max(self.working_set_bytes, nbytes)

    def add_gemm(self, m: int, n: int, k: int, dtype_bytes: int = 8) -> None:
        """Record one ``m x k @ k x n`` matrix multiply."""
        self.add_flops(2.0 * m * n * k)
        self.add_read(dtype_bytes * (m * k + k * n))
        self.add_write(dtype_bytes * m * n)
        self.note_working_set(dtype_bytes * (m * k + k * n + m * n))

    def add_axpy(self, n: int, dtype_bytes: int = 8) -> None:
        """Record one ``y += a * x`` over vectors of length ``n``."""
        self.add_flops(2.0 * n)
        self.add_read(2.0 * dtype_bytes * n)
        self.add_write(float(dtype_bytes) * n)

    @property
    def events(self) -> int:
        """Number of instrumentation calls recorded (for tests)."""
        return self._events

    def profile(self, parallel_fraction: float = 0.9,
                divergence: DivergenceClass = DivergenceClass.LOW,
                op_class: str = "generic") -> WorkloadProfile:
        """Freeze the accumulated counts into an immutable profile."""
        return WorkloadProfile(
            name=self.name,
            flops=self.flops,
            int_ops=self.int_ops,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            working_set_bytes=self.working_set_bytes,
            parallel_fraction=parallel_fraction,
            divergence=divergence,
            op_class=op_class,
        )
