"""Amdahl's law is a moving target: workload-drift feedback (§4).

The paper closes on Henry Ford's faster horses: "anticipating the
future needs of a domain requires a constant re-examination of the
fundamental benchmarks ... and dynamic analysis to continually identify
new opportunities over time.  Incorporating feedback mechanisms into
the design process ensures that useful contributions continue to be
made."

This module is that feedback mechanism, operationalized: given a
*timeline* of workload versions (the domain's algorithm mix drifting
year over year), it tracks which kernel class is the bottleneck, scores
how much value a fixed accelerator retains, and raises a re-design
signal the year the accelerated classes stop covering the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.characterize import amdahl_speedup
from repro.core.workload import Workload
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSnapshot:
    """The domain's representative workload at one point in time.

    Attributes:
        year: Timestamp (any monotone index works).
        workload: The representative workload.
    """

    year: int
    workload: Workload


class WorkloadTimeline:
    """An ordered sequence of workload snapshots."""

    def __init__(self, snapshots: Sequence[WorkloadSnapshot]):
        if not snapshots:
            raise ConfigurationError("timeline needs >= 1 snapshot")
        years = [s.year for s in snapshots]
        if years != sorted(years) or len(set(years)) != len(years):
            raise ConfigurationError(
                f"snapshot years must be strictly increasing: {years}"
            )
        self.snapshots = list(snapshots)

    def years(self) -> List[int]:
        return [s.year for s in self.snapshots]

    def bottleneck_class(self, year: int) -> str:
        """The op class carrying the largest share of work in ``year``."""
        snapshot = self._at(year)
        composition = snapshot.workload.composition()
        if not composition:
            raise ConfigurationError(
                f"workload at year {year} has no measurable work"
            )
        return max(composition.items(), key=lambda kv: kv[1])[0]

    def _at(self, year: int) -> WorkloadSnapshot:
        for snapshot in self.snapshots:
            if snapshot.year == year:
                return snapshot
        raise ConfigurationError(
            f"no snapshot for year {year}; have {self.years()}"
        )


@dataclass
class AcceleratorValueTrend:
    """How a fixed accelerator's usefulness evolves over a timeline.

    Attributes:
        accelerated_classes: The classes the accelerator covers.
        coverage_by_year: Share of each year's ops the accelerator can
            touch.
        end_to_end_speedup_by_year: Amdahl speedup of each year's
            workload assuming ``kernel_speedup`` on covered classes.
        stale_year: First year coverage falls below the staleness
            threshold (None = never within the timeline).
    """

    accelerated_classes: Set[str]
    coverage_by_year: Dict[int, float] = field(default_factory=dict)
    end_to_end_speedup_by_year: Dict[int, float] = \
        field(default_factory=dict)
    stale_year: Optional[int] = None


def accelerator_value_over_time(
    timeline: WorkloadTimeline,
    accelerated_classes: Sequence[str],
    kernel_speedup: float = 10.0,
    stale_threshold: float = 0.3,
) -> AcceleratorValueTrend:
    """Track a fixed accelerator's value as the workload drifts.

    Args:
        timeline: The workload timeline.
        accelerated_classes: Op classes the accelerator covers.
        kernel_speedup: Speedup on covered classes.
        stale_threshold: Coverage below which the design is stale.

    Returns:
        The value trend, including the first stale year (the feedback
        signal the paper's conclusion calls for).
    """
    if kernel_speedup <= 1.0:
        raise ConfigurationError("kernel_speedup must be > 1")
    if not 0.0 < stale_threshold < 1.0:
        raise ConfigurationError("stale_threshold must be in (0, 1)")
    classes = set(accelerated_classes)
    trend = AcceleratorValueTrend(accelerated_classes=classes)
    for snapshot in timeline.snapshots:
        composition = snapshot.workload.composition()
        coverage = sum(share for cls, share in composition.items()
                       if cls in classes)
        trend.coverage_by_year[snapshot.year] = coverage
        trend.end_to_end_speedup_by_year[snapshot.year] = \
            amdahl_speedup(coverage, kernel_speedup)
        if trend.stale_year is None and coverage < stale_threshold:
            trend.stale_year = snapshot.year
    return trend


def redesign_recommendation(
    timeline: WorkloadTimeline,
    trend: AcceleratorValueTrend,
) -> Optional[str]:
    """What the feedback loop recommends accelerating *now*.

    Returns the current (latest-year) bottleneck class if it is not
    already covered, else ``None`` (the design is still on target).
    """
    latest = timeline.years()[-1]
    bottleneck = timeline.bottleneck_class(latest)
    if bottleneck in trend.accelerated_classes:
        return None
    return bottleneck
