"""The Seven Challenges design advisor: the paper's thesis, operationalized.

The paper's contribution is a checklist of seven pitfalls in domain-specific
accelerator design.  This module turns each pitfall into a machine-checkable
audit over a structured description of a proposed design and its evaluation
plan.  The audit is deliberately conservative: it flags *evidence of the
pitfall in the plan*, not the quality of the results.

The seven checks, with their paper sections:

1.  ``BUILD_BRIDGES``   (§2.1) — no domain-expert engagement; no integration
    into domain workflows (e.g. ROS); accelerating stale algorithms.
2.  ``METRICS_MATTER``  (§2.2) — evaluation uses only raw-throughput /
    energy metrics with no task-quality or system-level metric.
3.  ``WIDGETISM``       (§2.3) — the accelerated kernel matters on too few
    workloads, or the evaluation covers too few tasks.
4.  ``PUMP_THE_BRAKES`` (§2.4) — no whole-system cost accounting (mass,
    power, shared-resource impact) for the added accelerator.
5.  ``CHIPS_AND_SALSA`` (§2.5) — only ASIC considered; no software / GPU /
    FPGA baselines.
6.  ``FOREST_VS_TREES`` (§2.6) — evaluation stops at the kernel; no
    end-to-end pipeline or closed-loop measurement.
7.  ``DESIGN_GLOBAL``   (§2.7) — no lifecycle / deployment-scale analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.crosscut import widgetism_score
from repro.core.workload import Workload

#: Metric names the audit recognizes as task-quality metrics (§2.2).
QUALITY_METRIC_NAMES = frozenset({
    "accuracy", "time_to_accuracy", "ate_rmse_m", "success_rate",
    "mission_success", "solution_quality", "tracking_error",
    "map_quality", "path_length_ratio",
})

#: Metric names recognized as system-level metrics (§2.2, §2.4).
SYSTEM_METRIC_NAMES = frozenset({
    "off_chip_bandwidth", "mission_time_s", "mission_energy_j",
    "flight_time_s", "deadline_miss_rate", "end_to_end_latency_s",
    "total_mass_kg", "total_power_w", "battery_life_s",
})

#: Metric names that are throughput/efficiency-only (fine, but not alone).
THROUGHPUT_METRIC_NAMES = frozenset({
    "throughput", "tops", "tops_per_watt", "gflops", "fps",
    "energy_delay_product", "latency_s", "energy_j",
})


class Challenge(enum.Enum):
    """The Magnificent Seven, in paper order."""

    BUILD_BRIDGES = "build-bridges"
    METRICS_MATTER = "metrics-matter"
    WIDGETISM = "widgetism"
    PUMP_THE_BRAKES = "pump-the-brakes"
    CHIPS_AND_SALSA = "chips-and-salsa"
    FOREST_VS_TREES = "forest-vs-trees"
    DESIGN_GLOBAL = "design-global"


#: One-line description per challenge, from the paper's pitfall statements.
CHALLENGE_PITFALLS: Dict[Challenge, str] = {
    Challenge.BUILD_BRIDGES: (
        "Interact with domains exclusively through benchmarks published in"
        " computer systems, without input from domain experts."
    ),
    Challenge.METRICS_MATTER: (
        "Only focus on improving throughput or energy-delay product."
    ),
    Challenge.WIDGETISM: (
        "A cycle of pick one slow algorithm, lower it to an ASIC, repeat."
    ),
    Challenge.PUMP_THE_BRAKES: (
        "Assume accelerators always improve total system performance."
    ),
    Challenge.CHIPS_AND_SALSA: (
        "Focus on ASICs, leaving software, GPUs, and FPGAs behind."
    ),
    Challenge.FOREST_VS_TREES: (
        "A narrow scope: acceleration begins and ends with compute."
    ),
    Challenge.DESIGN_GLOBAL: (
        "Design compute in isolation from its global and societal impact."
    ),
}


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Finding:
    """One audit finding.

    Attributes:
        challenge: Which of the seven checks fired.
        severity: How strongly the plan exhibits the pitfall.
        message: What was observed.
        recommendation: The paper's corresponding remedy.
    """

    challenge: Challenge
    severity: Severity
    message: str
    recommendation: str


@dataclass
class EvaluationPlan:
    """How a design will be evaluated.

    Attributes:
        metrics: Metric names to be reported (see module-level name sets).
        evaluated_workloads: Workloads the evaluation will run.
        baseline_platforms: Platform kinds compared against, e.g.
            ``("cpu", "gpu")``.
        end_to_end: Whether any measurement covers the full pipeline
            (sensor to actuator), not just the kernel.
        closed_loop: Whether any measurement runs closed-loop with a plant/
            environment model.
    """

    metrics: Tuple[str, ...] = ()
    evaluated_workloads: Tuple[str, ...] = ()
    baseline_platforms: Tuple[str, ...] = ()
    end_to_end: bool = False
    closed_loop: bool = False


@dataclass
class DesignReview:
    """A structured description of a proposed accelerator project.

    Attributes:
        name: Project name.
        accelerated_categories: Kernel op classes the design accelerates.
        target_platform: ``"asic"``, ``"fpga"``, ``"gpu"``, or ``"cpu"``.
        workload_suite: The suite the categories are judged against for
            widgetism (should be the *domain's* suite, not the design's).
        evaluation: The evaluation plan.
        expert_consultations: Count of distinct domain-expert engagements
            (collaborators, industry partners, user studies).
        algorithm_vintage_years: Age in years of each accelerated
            algorithm relative to the domain state of the art (0 = current).
        integrates_with_middleware: Ships wrappers for the domain's
            workflow (e.g. ROS nodes, OMPL plugins).
        system_budget_accounted: Whether added mass/power/area of the
            accelerator is charged to the whole-system budget.
        shared_resource_analysis: Whether contention with co-resident
            workloads (memory BW, scheduler) is analyzed.
        lifecycle_analysis: Whether embodied/operational footprint at
            deployment scale is analyzed.
        deployment_scale_units: Expected deployed-unit count (drives how
            critical the lifecycle finding is).
    """

    name: str
    accelerated_categories: Tuple[str, ...]
    target_platform: str = "asic"
    workload_suite: Sequence[Workload] = ()
    evaluation: EvaluationPlan = field(default_factory=EvaluationPlan)
    expert_consultations: int = 0
    algorithm_vintage_years: Tuple[float, ...] = ()
    integrates_with_middleware: bool = False
    system_budget_accounted: bool = False
    shared_resource_analysis: bool = False
    lifecycle_analysis: bool = False
    deployment_scale_units: int = 1


class SevenChallengesAdvisor:
    """Audits a :class:`DesignReview` against the seven pitfalls.

    Usage::

        advisor = SevenChallengesAdvisor()
        findings = advisor.audit(review)
        for finding in findings:
            print(finding.challenge.value, finding.severity.value,
                  finding.message)

    Thresholds are keyword-configurable so projects can tighten or relax
    the audit; defaults encode the paper's narrative examples.
    """

    def __init__(self,
                 stale_algorithm_years: float = 5.0,
                 min_expert_consultations: int = 1,
                 min_evaluated_workloads: int = 3,
                 widget_threshold: float = 0.6,
                 min_baseline_platforms: int = 2,
                 lifecycle_scale_trigger: int = 1000):
        self.stale_algorithm_years = stale_algorithm_years
        self.min_expert_consultations = min_expert_consultations
        self.min_evaluated_workloads = min_evaluated_workloads
        self.widget_threshold = widget_threshold
        self.min_baseline_platforms = min_baseline_platforms
        self.lifecycle_scale_trigger = lifecycle_scale_trigger

    def audit(self, review: DesignReview) -> List[Finding]:
        """Run all seven checks; returns findings sorted worst-first."""
        findings: List[Finding] = []
        findings.extend(self._check_build_bridges(review))
        findings.extend(self._check_metrics(review))
        findings.extend(self._check_widgetism(review))
        findings.extend(self._check_pump_the_brakes(review))
        findings.extend(self._check_chips_and_salsa(review))
        findings.extend(self._check_forest_vs_trees(review))
        findings.extend(self._check_design_global(review))
        order = {Severity.CRITICAL: 0, Severity.WARNING: 1, Severity.INFO: 2}
        findings.sort(key=lambda f: (order[f.severity], f.challenge.value))
        return findings

    def score(self, review: DesignReview) -> float:
        """A 0-100 design-health score (100 = no findings).

        Critical findings cost 20 points, warnings 10, info 3, floored at 0.
        Intended for dashboards and DSE constraint terms, not as a
        replacement for reading the findings.
        """
        cost = {Severity.CRITICAL: 20, Severity.WARNING: 10, Severity.INFO: 3}
        total = sum(cost[f.severity] for f in self.audit(review))
        return max(0.0, 100.0 - total)

    # -- individual checks -------------------------------------------------

    def _check_build_bridges(self, review: DesignReview) -> List[Finding]:
        findings: List[Finding] = []
        if review.expert_consultations < self.min_expert_consultations:
            findings.append(Finding(
                Challenge.BUILD_BRIDGES, Severity.CRITICAL,
                f"{review.expert_consultations} domain-expert engagements"
                f" recorded (need >= {self.min_expert_consultations}).",
                "Engage domain experts across all design stages; follow the"
                " Navion / motion-planning-accelerator collaboration model"
                " (§2.1).",
            ))
        stale = [y for y in review.algorithm_vintage_years
                 if y > self.stale_algorithm_years]
        if stale:
            findings.append(Finding(
                Challenge.BUILD_BRIDGES, Severity.WARNING,
                f"{len(stale)} accelerated algorithm(s) trail the domain"
                f" state of the art by > {self.stale_algorithm_years:g}"
                f" years (vintages: {sorted(stale)}).",
                "Re-validate algorithm choice with domain experts; SLAM"
                " alone had 24 representative active approaches in 2023"
                " (§2.1).",
            ))
        if not review.integrates_with_middleware:
            findings.append(Finding(
                Challenge.BUILD_BRIDGES, Severity.WARNING,
                "No integration with the domain's workflow (e.g. ROS/OMPL"
                " wrappers) is planned.",
                "Ship interfaces optimized for existing users and"
                " workflows (§2.1).",
            ))
        return findings

    def _check_metrics(self, review: DesignReview) -> List[Finding]:
        metrics = {m.lower() for m in review.evaluation.metrics}
        has_quality = bool(metrics & QUALITY_METRIC_NAMES)
        has_system = bool(metrics & SYSTEM_METRIC_NAMES)
        findings: List[Finding] = []
        if not metrics:
            findings.append(Finding(
                Challenge.METRICS_MATTER, Severity.CRITICAL,
                "No evaluation metrics declared.",
                "Declare task-quality and system-level metrics up front"
                " (§2.2).",
            ))
            return findings
        if not has_quality:
            findings.append(Finding(
                Challenge.METRICS_MATTER, Severity.CRITICAL,
                f"Metrics {sorted(metrics)} contain no task-quality metric"
                " (e.g. time-to-accuracy, success rate).",
                "Throughput gains that degrade accuracy lengthen"
                " time-to-accuracy and help no one (§2.2).",
            ))
        if not has_system:
            findings.append(Finding(
                Challenge.METRICS_MATTER, Severity.WARNING,
                f"Metrics {sorted(metrics)} contain no system-level metric"
                " (e.g. off-chip bandwidth, mission time).",
                "TOPS/W in isolation from system-level metrics is"
                " misleading (§2.2, Sze et al.).",
            ))
        return findings

    def _check_widgetism(self, review: DesignReview) -> List[Finding]:
        findings: List[Finding] = []
        n_eval = len(review.evaluation.evaluated_workloads)
        if n_eval < self.min_evaluated_workloads:
            findings.append(Finding(
                Challenge.WIDGETISM, Severity.WARNING,
                f"Evaluation covers {n_eval} workload(s)"
                f" (need >= {self.min_evaluated_workloads}); narrow"
                " evaluation incentivizes overfit widgets.",
                "Evaluate on a representative multi-task suite (§2.3).",
            ))
        if review.workload_suite:
            for category in review.accelerated_categories:
                score = widgetism_score(category, list(review.workload_suite))
                if score >= self.widget_threshold:
                    findings.append(Finding(
                        Challenge.WIDGETISM, Severity.CRITICAL,
                        f"Accelerated category {category!r} carries"
                        " significant work on too few suite workloads"
                        f" (widgetism score {score:.2f}"
                        f" >= {self.widget_threshold:g}).",
                        "Target cross-cutting kernels that serve many tasks"
                        " (§2.3).",
                    ))
        return findings

    def _check_pump_the_brakes(self, review: DesignReview) -> List[Finding]:
        findings: List[Finding] = []
        if not review.system_budget_accounted:
            findings.append(Finding(
                Challenge.PUMP_THE_BRAKES, Severity.CRITICAL,
                "Accelerator mass/power/area is not charged against the"
                " whole-system budget.",
                "Over-provisioning compute can have disastrous effects on"
                " weight and battery life (§2.4, Krishnan et al.);"
                " sometimes the right answer is not to accelerate.",
            ))
        if not review.shared_resource_analysis:
            findings.append(Finding(
                Challenge.PUMP_THE_BRAKES, Severity.WARNING,
                "No analysis of contention with co-resident workloads"
                " (memory bandwidth, scheduler interactions).",
                "Accelerators are not free: they consume shared resources"
                " and complicate scheduling (§2.4).",
            ))
        return findings

    def _check_chips_and_salsa(self, review: DesignReview) -> List[Finding]:
        findings: List[Finding] = []
        baselines = {p.lower() for p in review.evaluation.baseline_platforms}
        if (review.target_platform.lower() == "asic"
                and len(baselines) < self.min_baseline_platforms):
            findings.append(Finding(
                Challenge.CHIPS_AND_SALSA, Severity.WARNING,
                f"ASIC target with only {sorted(baselines)} as baselines;"
                " optimized software/GPU/FPGA baselines are missing.",
                "Vectorized CPU software alone has delivered up-to-500x"
                " planning speedups (§2.5, Thomason et al.); compare"
                " against strong programmable baselines.",
            ))
        if "cpu" not in baselines and baselines:
            findings.append(Finding(
                Challenge.CHIPS_AND_SALSA, Severity.INFO,
                "No optimized-CPU baseline in the comparison set.",
                "Include tuned software baselines before taping out (§2.5).",
            ))
        return findings

    def _check_forest_vs_trees(self, review: DesignReview) -> List[Finding]:
        findings: List[Finding] = []
        if not review.evaluation.end_to_end:
            findings.append(Finding(
                Challenge.FOREST_VS_TREES, Severity.CRITICAL,
                "No end-to-end (sensor-to-actuator) measurement planned;"
                " kernel-only results ignore I/O, marshalling, and"
                " downstream stages.",
                "Model the full system and its environment (§2.6; MAVBench,"
                " RoSE, ILLIXR).",
            ))
        elif not review.evaluation.closed_loop:
            findings.append(Finding(
                Challenge.FOREST_VS_TREES, Severity.WARNING,
                "End-to-end measurement is open-loop; closed-loop effects"
                " (latency → control quality) are not captured.",
                "Run closed-loop with a plant/environment model (§2.6).",
            ))
        return findings

    def _check_design_global(self, review: DesignReview) -> List[Finding]:
        findings: List[Finding] = []
        if not review.lifecycle_analysis:
            severity = (Severity.CRITICAL
                        if review.deployment_scale_units
                        >= self.lifecycle_scale_trigger
                        else Severity.WARNING)
            findings.append(Finding(
                Challenge.DESIGN_GLOBAL, severity,
                f"No lifecycle analysis, with a planned deployment of"
                f" {review.deployment_scale_units} unit(s).",
                "Assess embodied+operational footprint at deployment scale"
                " (§2.7; 'datacenters on wheels', edge-vs-cloud training"
                " carbon).",
            ))
        return findings
