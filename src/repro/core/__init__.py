"""Core workload representation, characterization, and design advisory.

This subpackage holds the framework's spine:

- :class:`~repro.core.profile.WorkloadProfile` — what a computation *is*
  (operation and byte counts, parallelism, divergence);
- :class:`~repro.core.profile.CostEstimate` — what a computation *costs* on
  a concrete platform (latency, energy, area);
- :mod:`~repro.core.workload` — kernels, task graphs, and workloads;
- :mod:`~repro.core.characterize` — workload characterization and Amdahl
  analysis;
- :mod:`~repro.core.crosscut` — cross-cutting kernel identification
  (paper §2.3, "Widgetism");
- :mod:`~repro.core.advisor` — the Seven Challenges design audit
  (the paper's primary contribution, made machine-checkable);
- :mod:`~repro.core.report` — plain-text table/report rendering.
"""

from repro.core.advisor import (
    Challenge,
    DesignReview,
    EvaluationPlan,
    Finding,
    Severity,
    SevenChallengesAdvisor,
)
from repro.core.characterize import (
    CharacterizationReport,
    amdahl_speedup,
    characterize,
    max_amdahl_speedup,
)
from repro.core.crosscut import CrosscutReport, coverage, find_crosscutting_kernels
from repro.core.moving_target import (
    AcceleratorValueTrend,
    WorkloadSnapshot,
    WorkloadTimeline,
    accelerator_value_over_time,
    redesign_recommendation,
)
from repro.core.profile import (
    CostEstimate,
    DivergenceClass,
    OpCounter,
    WorkloadProfile,
)
from repro.core.report import format_table
from repro.core.workload import Kernel, Stage, TaskGraph, Workload

__all__ = [
    "AcceleratorValueTrend",
    "Challenge",
    "CharacterizationReport",
    "WorkloadSnapshot",
    "WorkloadTimeline",
    "accelerator_value_over_time",
    "redesign_recommendation",
    "CostEstimate",
    "CrosscutReport",
    "DesignReview",
    "DivergenceClass",
    "EvaluationPlan",
    "Finding",
    "Kernel",
    "OpCounter",
    "Severity",
    "SevenChallengesAdvisor",
    "Stage",
    "TaskGraph",
    "Workload",
    "WorkloadProfile",
    "amdahl_speedup",
    "characterize",
    "coverage",
    "find_crosscutting_kernels",
    "format_table",
    "max_amdahl_speedup",
]
