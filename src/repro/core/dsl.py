"""A tiny pipeline DSL with static feasibility verification (§3.1).

The paper's "Agile Design Tools" opportunity asks for (a) high-level,
domain-expert-friendly specification of accelerated pipelines and (b)
formal techniques connecting the specification to the implementation.
This module provides a working miniature of both:

- :func:`parse_pipeline` — a line-oriented DSL a roboticist can write::

      pipeline uav-perception @ 30Hz
      stage detect: harris(image_size=480) -> 200000B
      stage track: lk(n_points=120) after detect -> 4000B
      stage fuse: cholesky(n=60) after track

  Kernels resolve through a registry of the instrumented profile
  generators in :mod:`repro.kernels`.

- :func:`verify_pipeline` — conservative static checks against a
  platform: every kernel mappable, every stage's utilization < 1 at the
  declared rate (queue stability for deterministic arrivals — a real
  invariant, proved by the service-rate inequality, not sampled), and
  the critical path within the period.  A pipeline that passes cannot
  backlog on the modeled platform; each violated check names the stage
  and the failed inequality.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph, Workload
from repro.errors import ConfigurationError
from repro.hw.platform import Platform

ProfileBuilder = Callable[..., WorkloadProfile]


def _default_registry() -> Dict[str, ProfileBuilder]:
    from repro.kernels.control.lqr import lqr_profile
    from repro.kernels.control.mpc import mpc_profile
    from repro.kernels.dynamics import mass_matrix_profile, rnea_profile
    from repro.kernels.linalg import (
        cholesky_profile,
        gemm_profile,
        gemv_profile,
    )
    from repro.kernels.planning.collision import collision_profile
    from repro.kernels.vision.features import harris_profile
    from repro.kernels.vision.optical_flow import lk_profile
    from repro.kernels.vision.stereo import stereo_profile

    return {
        "harris": harris_profile,
        "lk": lk_profile,
        "stereo": stereo_profile,
        "gemm": gemm_profile,
        "gemv": gemv_profile,
        "cholesky": cholesky_profile,
        "collision": collision_profile,
        "rnea": rnea_profile,
        "crba": mass_matrix_profile,
        "lqr": lqr_profile,
        "mpc": mpc_profile,
    }


#: The kernel registry the DSL resolves against.  Extendable at runtime
#: (``KERNEL_REGISTRY["mykernel"] = my_profile_fn``).
KERNEL_REGISTRY: Dict[str, ProfileBuilder] = _default_registry()

_PIPELINE_RE = re.compile(
    r"^pipeline\s+(?P<name>[\w.-]+)\s*@\s*(?P<rate>[\d.]+)\s*Hz$",
    re.IGNORECASE,
)
_STAGE_RE = re.compile(
    r"^stage\s+(?P<name>[\w.-]+)\s*:\s*(?P<kernel>[\w-]+)"
    r"\((?P<args>[^)]*)\)"
    r"(?:\s+after\s+(?P<deps>[\w.,\s-]+?))?"
    r"(?:\s*->\s*(?P<bytes>[\d.e+]+)\s*B)?$",
    re.IGNORECASE,
)


def _parse_value(text: str):
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text.strip("'\"")


def _parse_args(text: str) -> Dict[str, object]:
    args: Dict[str, object] = {}
    text = text.strip()
    if not text:
        return args
    for part in text.split(","):
        if "=" not in part:
            raise ConfigurationError(
                f"DSL: argument {part.strip()!r} must be key=value"
            )
        key, value = part.split("=", 1)
        args[key.strip()] = _parse_value(value)
    return args


def parse_pipeline(source: str,
                   registry: Optional[Dict[str, ProfileBuilder]] = None
                   ) -> Workload:
    """Parse DSL text into a :class:`~repro.core.workload.Workload`.

    Raises:
        ConfigurationError: On syntax errors, unknown kernels, unknown
            dependencies, or a missing ``pipeline`` header.
    """
    registry = registry if registry is not None else KERNEL_REGISTRY
    name: Optional[str] = None
    rate: float = 0.0
    stages: List[Stage] = []
    first_stage = True

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        header = _PIPELINE_RE.match(line)
        if header:
            if name is not None:
                raise ConfigurationError(
                    f"DSL line {line_no}: duplicate pipeline header"
                )
            name = header.group("name")
            rate = float(header.group("rate"))
            continue
        stage_match = _STAGE_RE.match(line)
        if not stage_match:
            raise ConfigurationError(
                f"DSL line {line_no}: cannot parse {line!r}"
            )
        if name is None:
            raise ConfigurationError(
                f"DSL line {line_no}: stage before pipeline header"
            )
        kernel = stage_match.group("kernel").lower()
        if kernel not in registry:
            raise ConfigurationError(
                f"DSL line {line_no}: unknown kernel {kernel!r}"
                f" (registered: {sorted(registry)})"
            )
        args = _parse_args(stage_match.group("args"))
        try:
            profile = registry[kernel](**args)
        except TypeError as error:
            raise ConfigurationError(
                f"DSL line {line_no}: bad arguments for {kernel!r}:"
                f" {error}"
            ) from None
        deps_text = stage_match.group("deps")
        deps = tuple(d.strip() for d in deps_text.split(","))  \
            if deps_text else ()
        output_bytes = float(stage_match.group("bytes") or 0.0)
        stages.append(Stage(
            name=stage_match.group("name"),
            profile=profile,
            deps=deps,
            output_bytes=output_bytes,
            rate_hz=rate if first_stage and not deps else None,
        ))
        if not deps:
            first_stage = False

    if name is None:
        raise ConfigurationError("DSL: missing 'pipeline NAME @ RHz'")
    if not stages:
        raise ConfigurationError(f"DSL: pipeline {name!r} has no stages")
    graph = TaskGraph(name, stages)
    return Workload(name=name, graph=graph, target_rate_hz=rate)


@dataclass(frozen=True)
class Violation:
    """One failed static check.

    Attributes:
        check: ``"mappability" | "stability" | "deadline"``.
        stage: Offending stage ("" for pipeline-level checks).
        detail: The violated inequality, with numbers.
    """

    check: str
    stage: str
    detail: str


@dataclass
class VerificationReport:
    """Result of :func:`verify_pipeline`.

    Attributes:
        workload: Verified workload name.
        platform: Platform name.
        violations: Failed checks (empty = verified).
        stage_utilization: Per-stage ``service_time x rate``.
        critical_path_s: Analytical one-activation latency.
        period_s: The declared period.
    """

    workload: str
    platform: str
    violations: List[Violation] = field(default_factory=list)
    stage_utilization: Dict[str, float] = field(default_factory=dict)
    critical_path_s: float = 0.0
    period_s: float = 0.0

    @property
    def verified(self) -> bool:
        return not self.violations


def verify_pipeline(workload: Workload,
                    platform: Platform) -> VerificationReport:
    """Statically verify a pipeline against a platform model.

    Checks (all conservative — a pass is a guarantee *of the model*,
    a fail is a concrete inequality):

    1. mappability — every stage's op class is supported;
    2. stability — for each stage, ``service_time * rate < 1``
       (deterministic-arrival queue stability: a stage slower than the
       input rate backlogs without bound);
    3. deadline — the critical path of one activation fits within the
       period (single-activation latency bound; pipelining may tolerate
       more, so this check reports at WARNING strength via its detail).
    """
    rate = workload.target_rate_hz
    period = workload.deadline_s()
    report = VerificationReport(
        workload=workload.name,
        platform=platform.name,
        period_s=period,
    )

    latencies: Dict[str, float] = {}
    for stage in workload.graph.stages:
        if not platform.supports(stage.profile):
            report.violations.append(Violation(
                check="mappability", stage=stage.name,
                detail=f"op class {stage.profile.op_class!r} not"
                       f" supported by {platform.name}",
            ))
            latencies[stage.name] = float("inf")
            continue
        service = platform.estimate(stage.profile).latency_s
        latencies[stage.name] = service
        utilization = service * rate
        report.stage_utilization[stage.name] = utilization
        if utilization >= 1.0:
            report.violations.append(Violation(
                check="stability", stage=stage.name,
                detail=f"service {service * 1e3:.3f} ms x rate"
                       f" {rate:g} Hz = utilization"
                       f" {utilization:.2f} >= 1: unbounded backlog",
            ))

    if all(v.check != "mappability" for v in report.violations):
        critical, _ = workload.graph.critical_path(latencies)
        report.critical_path_s = critical
        if critical > period:
            report.violations.append(Violation(
                check="deadline", stage="",
                detail=f"critical path {critical * 1e3:.3f} ms >"
                       f" period {period * 1e3:.3f} ms (one-activation"
                       f" latency exceeds the sample interval)",
            ))
    return report
