"""Workload characterization: op mixes, hotspots, and Amdahl analysis.

This module answers the first question an accelerator designer should ask
(and the one §2.6 says they often skip): *where does the time actually go,
and what is the end-to-end ceiling if I accelerate only one piece?*
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.profile import WorkloadProfile
from repro.core.workload import TaskGraph, Workload
from repro.errors import ConfigurationError


def amdahl_speedup(accelerated_fraction: float, kernel_speedup: float) -> float:
    """End-to-end speedup when ``accelerated_fraction`` of the time is sped
    up by ``kernel_speedup`` (Amdahl's law).

    Args:
        accelerated_fraction: Fraction of baseline execution time covered by
            the accelerated kernel, in [0, 1].
        kernel_speedup: Speedup of that kernel alone, > 0.
    """
    if not 0.0 <= accelerated_fraction <= 1.0:
        raise ConfigurationError(
            f"accelerated_fraction must be in [0, 1], got {accelerated_fraction}"
        )
    if kernel_speedup <= 0:
        raise ConfigurationError(
            f"kernel_speedup must be > 0, got {kernel_speedup}"
        )
    return 1.0 / ((1.0 - accelerated_fraction)
                  + accelerated_fraction / kernel_speedup)


def max_amdahl_speedup(accelerated_fraction: float) -> float:
    """The ceiling of :func:`amdahl_speedup` as kernel speedup → infinity."""
    if not 0.0 <= accelerated_fraction <= 1.0:
        raise ConfigurationError(
            f"accelerated_fraction must be in [0, 1], got {accelerated_fraction}"
        )
    if accelerated_fraction == 1.0:
        return math.inf
    return 1.0 / (1.0 - accelerated_fraction)


@dataclass
class CharacterizationReport:
    """Summary statistics for one workload.

    Attributes:
        workload: Name of the characterized workload.
        total_flops: Total floating-point ops per activation.
        total_int_ops: Total integer ops per activation.
        total_bytes: Total memory traffic per activation.
        arithmetic_intensity: Ops/byte for the merged profile.
        op_class_shares: Share of total ops per op class, descending.
        hotspots: ``(stage name, share of total ops)`` descending.
        amdahl_ceilings: For each stage, the end-to-end speedup ceiling if
            only that stage were infinitely accelerated (op-weighted).
    """

    workload: str
    total_flops: float
    total_int_ops: float
    total_bytes: float
    arithmetic_intensity: float
    op_class_shares: Dict[str, float] = field(default_factory=dict)
    hotspots: List[Tuple[str, float]] = field(default_factory=list)
    amdahl_ceilings: Dict[str, float] = field(default_factory=dict)

    def top_hotspot(self) -> Tuple[str, float]:
        if not self.hotspots:
            raise ConfigurationError(
                f"workload {self.workload!r} has no stages with work"
            )
        return self.hotspots[0]


def characterize(workload: Workload) -> CharacterizationReport:
    """Characterize a workload's op mix, hotspots, and Amdahl ceilings.

    Shares are op-count weighted.  Time weighting requires a platform; op
    weighting is the platform-neutral first cut and is what §2.3's
    cross-cutting analysis consumes.
    """
    graph: TaskGraph = workload.graph
    merged: WorkloadProfile = graph.total_profile()
    total_ops = merged.total_ops

    hotspots: List[Tuple[str, float]] = []
    ceilings: Dict[str, float] = {}
    shares: Dict[str, float] = {}
    for stage in graph.stages:
        ops = stage.profile.total_ops
        share = ops / total_ops if total_ops > 0 else 0.0
        hotspots.append((stage.name, share))
        ceilings[stage.name] = max_amdahl_speedup(share)
        key = stage.profile.op_class
        shares[key] = shares.get(key, 0.0) + share
    hotspots.sort(key=lambda pair: pair[1], reverse=True)
    shares = dict(sorted(shares.items(), key=lambda kv: kv[1], reverse=True))

    return CharacterizationReport(
        workload=workload.name,
        total_flops=merged.flops,
        total_int_ops=merged.int_ops,
        total_bytes=merged.total_bytes,
        arithmetic_intensity=merged.arithmetic_intensity,
        op_class_shares=shares,
        hotspots=hotspots,
        amdahl_ceilings=ceilings,
    )


def time_weighted_shares(
    graph: TaskGraph, stage_latency: Mapping[str, float]
) -> Dict[str, float]:
    """Per-stage shares of total *time* under measured/modeled latencies.

    This is the honest input to Amdahl reasoning once a platform is chosen
    (op shares can mislead when stages have different intensities).
    """
    total = 0.0
    for stage in graph.stages:
        if stage.name not in stage_latency:
            raise ConfigurationError(
                f"time_weighted_shares: missing latency for {stage.name!r}"
            )
        total += stage_latency[stage.name]
    if total <= 0:
        return {stage.name: 0.0 for stage in graph.stages}
    return {stage.name: stage_latency[stage.name] / total
            for stage in graph.stages}


def end_to_end_speedup(
    graph: TaskGraph,
    baseline_latency: Mapping[str, float],
    accelerated_latency: Mapping[str, float],
) -> float:
    """Measured end-to-end speedup for a serial pass over the graph.

    Both mappings must cover every stage; stages absent from
    ``accelerated_latency`` fall back to their baseline latency (i.e. were
    not accelerated).
    """
    base = 0.0
    accel = 0.0
    for stage in graph.stages:
        if stage.name not in baseline_latency:
            raise ConfigurationError(
                f"end_to_end_speedup: missing baseline latency for"
                f" {stage.name!r}"
            )
        b = baseline_latency[stage.name]
        base += b
        accel += accelerated_latency.get(stage.name, b)
    if accel <= 0:
        return math.inf if base > 0 else 1.0
    return base / accel


def intensity_histogram(
    profiles: Sequence[WorkloadProfile],
    edges: Sequence[float] = (0.1, 1.0, 10.0, 100.0),
) -> Dict[str, int]:
    """Bucket profiles by arithmetic intensity for roofline placement.

    Returns a dict from human-readable bucket label to count; buckets are
    ``(-inf, e0], (e0, e1], ..., (eN, inf)``.
    """
    labels: List[str] = []
    previous = None
    for edge in edges:
        if previous is not None and edge <= previous:
            raise ConfigurationError("intensity_histogram: edges must ascend")
        labels.append(f"<= {edge:g}")
        previous = edge
    labels.append(f"> {edges[-1]:g}")
    counts = {label: 0 for label in labels}
    for profile in profiles:
        intensity = profile.arithmetic_intensity
        for edge, label in zip(edges, labels):
            if intensity <= edge:
                counts[label] += 1
                break
        else:
            counts[labels[-1]] += 1
    return counts
