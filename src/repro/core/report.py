"""Plain-text report rendering shared by examples and benchmark harnesses.

The benchmark harnesses print paper-style tables/series; this module keeps
that formatting in one place so every experiment reports uniformly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _render_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an aligned, pipe-delimited text table.

    Args:
        headers: Column names.
        rows: Row cells; each row must have ``len(headers)`` entries.
        title: Optional title line printed above the table.
        precision: Significant digits for float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [_render_cell(c, precision) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}:"
                f" {cells!r}"
            )
        rendered.append(cells)

    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for cells in rendered[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an (x, y) series as a two-column table — the shape in which
    the paper's Fig. 1 data would be reported."""
    return format_table([x_label, y_label], points, title=title,
                        precision=precision)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Render a horizontal ASCII bar chart (for trend figures in terminals).

    Bars are scaled so the maximum value spans ``width`` characters; zero
    and negative values render as empty bars.
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    peak = max((v for v in values if v > 0), default=0.0)
    label_width = max((len(lab) for lab in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = ""
        if peak > 0 and value > 0:
            bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)
