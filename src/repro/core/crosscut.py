"""Cross-cutting kernel identification (paper §2.3, "Widgetism").

The paper's prescription for avoiding over-specialized "widget" accelerators
is to find *cross-cutting kernels*: operation classes that carry a large
share of the work across *many* tasks, not just one.  This module computes
that analysis over a set of characterized workloads:

- :func:`coverage` — how much of a workload suite's total work a given set
  of kernel categories covers;
- :func:`find_crosscutting_kernels` — greedy selection of the categories
  that maximize suite-wide coverage under a budget;
- :func:`breadth` — on how many workloads a category matters at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.core.workload import Workload
from repro.errors import ConfigurationError


def _suite_shares(workloads: Sequence[Workload]) -> List[Dict[str, float]]:
    if not workloads:
        raise ConfigurationError("cross-cutting analysis needs >= 1 workload")
    return [w.composition() for w in workloads]


def coverage(categories: Iterable[str],
             workloads: Sequence[Workload]) -> float:
    """Mean (over workloads) share of ops covered by ``categories``.

    A value of 1.0 means the categories account for all operations in every
    workload; a widget accelerator covering one niche category on one task
    scores near ``share_of_that_task / n_workloads``.
    """
    selected: Set[str] = set(categories)
    shares = _suite_shares(workloads)
    per_workload = [
        sum(share for cat, share in comp.items() if cat in selected)
        for comp in shares
    ]
    return sum(per_workload) / len(per_workload)


def breadth(category: str, workloads: Sequence[Workload],
            threshold: float = 0.05) -> int:
    """Number of workloads where ``category`` carries at least ``threshold``
    of the operations."""
    return sum(
        1 for comp in _suite_shares(workloads)
        if comp.get(category, 0.0) >= threshold
    )


@dataclass
class CrosscutReport:
    """Result of cross-cutting kernel selection.

    Attributes:
        selected: Chosen categories in selection order.
        coverage_curve: Suite coverage after each greedy pick.
        per_category_breadth: Workload count where each known category
            clears the breadth threshold.
        per_category_mean_share: Mean op share of each category across the
            suite (0 where absent).
    """

    selected: List[str] = field(default_factory=list)
    coverage_curve: List[float] = field(default_factory=list)
    per_category_breadth: Dict[str, int] = field(default_factory=dict)
    per_category_mean_share: Dict[str, float] = field(default_factory=dict)

    @property
    def final_coverage(self) -> float:
        return self.coverage_curve[-1] if self.coverage_curve else 0.0


def find_crosscutting_kernels(
    workloads: Sequence[Workload],
    budget: int = 3,
    breadth_threshold: float = 0.05,
) -> CrosscutReport:
    """Greedy max-coverage selection of kernel categories across a suite.

    At each step, pick the category that most increases mean suite
    coverage.  Greedy is within ``1 - 1/e`` of optimal for this submodular
    objective, and — more importantly for the §2.3 argument — its *order*
    surfaces the cross-cutting kernels first and the widgets last.

    Args:
        workloads: Characterized workloads (``composition()`` must be
            non-empty for at least one of them).
        budget: How many categories to select.
        breadth_threshold: Minimum per-workload op share for a category to
            count toward breadth.
    """
    if budget < 1:
        raise ConfigurationError(f"budget must be >= 1, got {budget}")
    shares = _suite_shares(workloads)
    categories: Set[str] = set()
    for comp in shares:
        categories.update(comp)
    if not categories:
        raise ConfigurationError(
            "no kernel categories found; do the workloads have stages with"
            " non-zero work?"
        )

    mean_share = {
        cat: sum(comp.get(cat, 0.0) for comp in shares) / len(shares)
        for cat in categories
    }
    cat_breadth = {
        cat: breadth(cat, workloads, threshold=breadth_threshold)
        for cat in categories
    }

    selected: List[str] = []
    curve: List[float] = []
    remaining = set(categories)
    while remaining and len(selected) < budget:
        best = max(
            sorted(remaining),
            key=lambda cat: coverage(selected + [cat], workloads),
        )
        gained = coverage(selected + [best], workloads)
        if curve and gained <= curve[-1] + 1e-12:
            break  # no category adds coverage; stop early
        selected.append(best)
        curve.append(gained)
        remaining.discard(best)

    return CrosscutReport(
        selected=selected,
        coverage_curve=curve,
        per_category_breadth=dict(
            sorted(cat_breadth.items(), key=lambda kv: kv[1], reverse=True)
        ),
        per_category_mean_share=dict(
            sorted(mean_share.items(), key=lambda kv: kv[1], reverse=True)
        ),
    )


def widgetism_score(category: str, workloads: Sequence[Workload],
                    breadth_threshold: float = 0.05) -> float:
    """How "widgety" accelerating only ``category`` would be, in [0, 1].

    1.0 means the category matters on at most one workload (a pure widget);
    0.0 means it clears the breadth threshold on every workload.  Used by
    the Seven Challenges advisor.
    """
    n = len(workloads)
    if n == 0:
        raise ConfigurationError("widgetism_score needs >= 1 workload")
    b = breadth(category, workloads, threshold=breadth_threshold)
    if n == 1:
        return 0.0 if b == 1 else 1.0
    return 1.0 - max(0, b - 1) / (n - 1)
